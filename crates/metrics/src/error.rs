//! Point-estimate error metrics for truth discovery accuracy.

use std::error::Error;
use std::fmt;

/// Error returned when two paired slices have different lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthMismatch {
    /// Length of the estimate slice.
    pub estimates: usize,
    /// Length of the ground-truth slice.
    pub truths: usize,
}

impl fmt::Display for LengthMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "estimate and truth slices differ in length ({} vs {})",
            self.estimates, self.truths
        )
    }
}

impl Error for LengthMismatch {}

fn check_lengths(estimates: &[f64], truths: &[f64]) -> Result<(), LengthMismatch> {
    if estimates.len() != truths.len() {
        return Err(LengthMismatch {
            estimates: estimates.len(),
            truths: truths.len(),
        });
    }
    Ok(())
}

/// Mean absolute error `(1/m) Σ_j |d_j − d_j*|` — the paper's accuracy
/// metric (§V).
///
/// Returns `0.0` for empty inputs, mirroring the convention that an empty
/// task set incurs no error.
///
/// # Errors
///
/// Returns [`LengthMismatch`] if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let err = srtd_metrics::mae(&[-84.0, -75.0], &[-85.0, -73.0])?;
/// assert!((err - 1.5).abs() < 1e-12);
/// # Ok::<(), srtd_metrics::LengthMismatch>(())
/// ```
pub fn mae(estimates: &[f64], truths: &[f64]) -> Result<f64, LengthMismatch> {
    check_lengths(estimates, truths)?;
    if estimates.is_empty() {
        return Ok(0.0);
    }
    let sum: f64 = estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t).abs())
        .sum();
    Ok(sum / estimates.len() as f64)
}

/// Root mean squared error between estimates and ground truth.
///
/// Returns `0.0` for empty inputs.
///
/// # Errors
///
/// Returns [`LengthMismatch`] if the slices have different lengths.
pub fn rmse(estimates: &[f64], truths: &[f64]) -> Result<f64, LengthMismatch> {
    check_lengths(estimates, truths)?;
    if estimates.is_empty() {
        return Ok(0.0);
    }
    let sum: f64 = estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t) * (e - t))
        .sum();
    Ok((sum / estimates.len() as f64).sqrt())
}

/// Largest absolute per-task error; `0.0` for empty inputs.
///
/// # Errors
///
/// Returns [`LengthMismatch`] if the slices have different lengths.
pub fn max_absolute_error(estimates: &[f64], truths: &[f64]) -> Result<f64, LengthMismatch> {
    check_lengths(estimates, truths)?;
    Ok(estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t).abs())
        .fold(0.0, f64::max))
}

/// Sum of squared distances of points to a reference value.
///
/// This is the per-cluster term of the k-means objective; the elbow method
/// in `srtd-cluster` sums it across clusters.
///
/// # Examples
///
/// ```
/// let sse = srtd_metrics::sum_squared_error(&[1.0, 3.0], 2.0);
/// assert!((sse - 2.0).abs() < 1e-12);
/// ```
pub fn sum_squared_error(points: &[f64], reference: f64) -> f64 {
    points
        .iter()
        .map(|p| (p - reference) * (p - reference))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn mae_of_identical_slices_is_zero() {
        assert_eq!(mae(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn mae_empty_is_zero() {
        assert_eq!(mae(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn mae_length_mismatch_is_error() {
        let err = mae(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            LengthMismatch {
                estimates: 1,
                truths: 2
            }
        );
        assert!(err.to_string().contains("1 vs 2"));
    }

    #[test]
    fn rmse_upper_bounds_mae() {
        let e = [1.0, 5.0, -2.0];
        let t = [0.0, 0.0, 0.0];
        assert!(rmse(&e, &t).unwrap() >= mae(&e, &t).unwrap());
    }

    #[test]
    fn rmse_empty_is_zero() {
        assert_eq!(rmse(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn max_error_picks_worst_task() {
        let e = [0.0, 10.0, 2.0];
        let t = [0.0, 0.0, 0.0];
        assert_eq!(max_absolute_error(&e, &t).unwrap(), 10.0);
    }

    #[test]
    fn sse_at_mean_is_minimal() {
        let pts = [1.0, 2.0, 6.0];
        let mean = 3.0;
        let at_mean = sum_squared_error(&pts, mean);
        for cand in [-1.0, 0.0, 2.0, 4.0, 10.0] {
            assert!(at_mean <= sum_squared_error(&pts, cand) + 1e-12);
        }
    }

    fn value_pairs(
        rng: &mut srtd_runtime::rng::StdRng,
        len: std::ops::Range<usize>,
        scale: f64,
    ) -> Vec<(f64, f64)> {
        prop::vec_with(rng, len, |r| {
            (r.gen_range(-scale..scale), r.gen_range(-scale..scale))
        })
    }

    #[test]
    fn mae_is_nonnegative_and_symmetric() {
        prop::check(
            |rng| value_pairs(rng, 0..50, 1e6),
            |pairs| {
                let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let ab = mae(&a, &b).unwrap();
                let ba = mae(&b, &a).unwrap();
                prop_assert!(ab >= 0.0);
                prop_assert!((ab - ba).abs() <= 1e-9 * ab.max(1.0));
                Ok(())
            },
        );
    }

    #[test]
    fn mae_le_max_error() {
        prop::check(
            |rng| value_pairs(rng, 1..50, 1e6),
            |pairs| {
                let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                prop_assert!(mae(&a, &b).unwrap() <= max_absolute_error(&a, &b).unwrap() + 1e-9);
                Ok(())
            },
        );
    }

    #[test]
    fn rmse_between_mae_and_max() {
        prop::check(
            |rng| value_pairs(rng, 1..50, 1e3),
            |pairs| {
                let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let r = rmse(&a, &b).unwrap();
                prop_assert!(r + 1e-9 >= mae(&a, &b).unwrap());
                prop_assert!(r <= max_absolute_error(&a, &b).unwrap() + 1e-9);
                Ok(())
            },
        );
    }
}
