//! Ablation: AG-FP's clustering backend — k-means + elbow (§IV-C) versus
//! agglomerative clustering cut at a distance threshold.
//!
//! The elbow method must guess the device count from the SSE curve; the
//! agglomerative alternative instead needs a merge threshold, which is
//! comparatively stable on standardized fingerprint features. Measures
//! device-grouping ARI on the paper-scale scenario.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_ablation_clustering [seeds]`

use srtd_bench::table::Table;
use srtd_cluster::Linkage;
use srtd_core::{AccountGrouping, AgFp, FpClustering};
use srtd_metrics::adjusted_rand_index;
use srtd_sensing::{Scenario, ScenarioConfig};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("Ablation — AG-FP clustering backend ({seeds} seeds, device-label ARI)\n");
    let scenarios: Vec<Scenario> = (0..seeds)
        .map(|seed| Scenario::generate(&ScenarioConfig::paper_default().with_seed(seed)))
        .collect();
    let n = scenarios.len() as f64;

    let mut variants: Vec<(String, AgFp)> = vec![
        ("kmeans + elbow (paper)".into(), AgFp::default()),
        ("kmeans, known k".into(), AgFp::default().with_known_k(13)),
    ];
    for threshold in [6.0, 8.0, 10.0, 12.0, 14.0] {
        variants.push((
            format!("agglomerative avg, t={threshold}"),
            AgFp::default().with_clustering(FpClustering::Hierarchical {
                threshold,
                linkage: Linkage::Average,
            }),
        ));
    }

    let mut t = Table::new(
        ["backend", "device ARI", "mean groups"]
            .map(String::from)
            .to_vec(),
    );
    let mut results = Vec::new();
    for (name, ag) in &variants {
        let mut ari = 0.0;
        let mut groups = 0.0;
        for s in &scenarios {
            let g = ag.group(&s.data, &s.fingerprints);
            ari += adjusted_rand_index(g.labels(), s.device_labels());
            groups += g.len() as f64;
        }
        results.push((name.clone(), ari / n, groups / n));
        t.add_row(vec![
            name.clone(),
            format!("{:.3}", ari / n),
            format!("{:.1}", groups / n),
        ]);
    }
    println!("{}", t.render());
    println!("ground truth: 13 devices over 18 accounts (the Attack-I device");
    println!("carries 5 accounts, the two Attack-II devices carry 2-3 each).");
    println!("expected shape: a well-chosen agglomerative threshold matches or");
    println!("beats the elbow pipeline without needing a cluster count, and");
    println!("degrades on both sides of the sweet spot. Note that *knowing* k");
    println!("does not guarantee a better ARI: same-model devices are not");
    println!("separable, so forcing k = 13 makes k-means shred those blobs,");
    println!("while the elbow's merged clusters score higher — the same effect");
    println!("behind the paper's Fig. 8 discussion.");

    let elbow_ari = results[0].1;
    let best_hac = results[2..]
        .iter()
        .map(|r| r.1)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best_hac > elbow_ari - 0.1,
        "best agglomerative ARI ({best_hac}) should be competitive with elbow ({elbow_ari})"
    );
    // The threshold curve is unimodal-ish: the extremes are worse than the
    // best interior threshold.
    let first_hac = results[2].1;
    let last_hac = results.last().expect("non-empty").1;
    assert!(
        best_hac > first_hac && best_hac > last_hac,
        "threshold extremes should underperform the sweet spot"
    );
    println!("\n[ablation complete]");
}
