//! Streaming truth discovery with exponential forgetting.
//!
//! The truth of a sensing task can drift (Wi-Fi congestion varies through
//! the day); the batch algorithms in this crate assume a static truth.
//! Following the *evolving truth* line of work the paper cites (Li et
//! al., KDD 2015), [`StreamingCrh`] processes reports in timestamp order
//! and keeps exponentially-decayed sufficient statistics, so old claims
//! fade with a configurable half-life while source weights keep the
//! CRH-style inverse-loss form.

use crate::data::{Report, SensingData};
use srtd_runtime::json::{Json, ToJson};

/// Configuration for [`StreamingCrh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingConfig {
    /// Time for a claim's influence to halve, in seconds.
    pub half_life_s: f64,
    /// Loss floor guarding the inverse-loss weight (see
    /// [`crate::Crh`]'s analogous epsilon).
    pub loss_floor: f64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self {
            half_life_s: 1800.0,
            loss_floor: 1e-9,
        }
    }
}

impl StreamingConfig {
    /// Creates a configuration with the given half-life.
    ///
    /// # Panics
    ///
    /// Panics if `half_life_s` is not finite and positive.
    pub fn with_half_life(half_life_s: f64) -> Self {
        assert!(
            half_life_s.is_finite() && half_life_s > 0.0,
            "half-life must be positive, got {half_life_s}"
        );
        Self {
            half_life_s,
            ..Self::default()
        }
    }
}

/// Per-task decayed accumulators.
#[derive(Debug, Clone, Default)]
struct TaskState {
    /// Decayed Σ w·value.
    weighted_sum: f64,
    /// Decayed Σ w.
    weight_sum: f64,
    /// Timestamp the accumulators were last decayed to.
    as_of: f64,
}

/// Per-account decayed loss.
#[derive(Debug, Clone, Default)]
struct AccountState {
    loss: f64,
    as_of: f64,
    claims: usize,
}

/// Streaming CRH with exponential forgetting.
///
/// Feed reports in non-decreasing timestamp order with
/// [`StreamingCrh::observe`]; read the current estimate with
/// [`StreamingCrh::truth`]. [`StreamingCrh::replay`] runs a whole
/// campaign's reports through the stream.
///
/// # Examples
///
/// ```
/// use srtd_truth::{Report, StreamingConfig, StreamingCrh};
///
/// let mut stream = StreamingCrh::new(1, StreamingConfig::with_half_life(600.0));
/// stream.observe(Report { account: 0, task: 0, value: -80.0, timestamp: 0.0 });
/// stream.observe(Report { account: 1, task: 0, value: -78.0, timestamp: 30.0 });
/// // Hours later, the environment changed; new reports dominate.
/// stream.observe(Report { account: 0, task: 0, value: -60.0, timestamp: 36_000.0 });
/// assert!(stream.truth(0).unwrap() > -63.0);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingCrh {
    config: StreamingConfig,
    tasks: Vec<TaskState>,
    accounts: Vec<AccountState>,
    last_timestamp: f64,
    observed: usize,
}

impl StreamingCrh {
    /// Creates a stream over `num_tasks` tasks.
    pub fn new(num_tasks: usize, config: StreamingConfig) -> Self {
        Self {
            config,
            tasks: vec![TaskState::default(); num_tasks],
            accounts: Vec::new(),
            last_timestamp: f64::NEG_INFINITY,
            observed: 0,
        }
    }

    /// Number of reports observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Current truth estimate for `task`, or `None` before any report.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn truth(&self, task: usize) -> Option<f64> {
        let s = &self.tasks[task];
        (s.weight_sum > 0.0).then(|| s.weighted_sum / s.weight_sum)
    }

    /// All current truth estimates.
    pub fn truths(&self) -> Vec<Option<f64>> {
        (0..self.tasks.len()).map(|t| self.truth(t)).collect()
    }

    /// Current weight of `account` (decayed inverse loss); accounts that
    /// have not reported get weight `0.0`.
    pub fn account_weight(&self, account: usize) -> f64 {
        let Some(state) = self.accounts.get(account) else {
            return 0.0;
        };
        if state.claims == 0 {
            return 0.0;
        }
        let total: f64 = self
            .accounts
            .iter()
            .map(|a| a.loss)
            .sum::<f64>()
            .max(self.config.loss_floor);
        (total / state.loss.max(self.config.loss_floor))
            .ln()
            .max(0.05)
    }

    fn decay_factor(&self, from: f64, to: f64) -> f64 {
        if !from.is_finite() || to <= from {
            return 1.0;
        }
        (0.5f64).powf((to - from) / self.config.half_life_s)
    }

    /// Ingests one report.
    ///
    /// # Panics
    ///
    /// Panics if the task is out of range, the value or timestamp is not
    /// finite, or the timestamp precedes an already-observed one (streams
    /// must be replayed in order).
    pub fn observe(&mut self, report: Report) {
        assert!(report.task < self.tasks.len(), "task out of range");
        assert!(report.value.is_finite(), "value must be finite");
        assert!(report.timestamp.is_finite(), "timestamp must be finite");
        assert!(
            report.timestamp >= self.last_timestamp,
            "reports must arrive in timestamp order ({} after {})",
            report.timestamp,
            self.last_timestamp
        );
        self.last_timestamp = report.timestamp;
        self.observed += 1;
        if report.account >= self.accounts.len() {
            self.accounts
                .resize_with(report.account + 1, AccountState::default);
        }

        // Decay the touched task to now.
        let decay = {
            let task = &self.tasks[report.task];
            self.decay_factor(task.as_of, report.timestamp)
        };
        let prior = self.truth(report.task);
        {
            let task = &mut self.tasks[report.task];
            task.weighted_sum *= decay;
            task.weight_sum *= decay;
            task.as_of = report.timestamp;
        }

        // Update the account's decayed loss against the prior estimate.
        let residual = prior.map_or(0.0, |t| (report.value - t).powi(2));
        {
            let a_decay = self.decay_factor(self.accounts[report.account].as_of, report.timestamp);
            let account = &mut self.accounts[report.account];
            account.loss = account.loss * a_decay + residual;
            account.as_of = report.timestamp;
            account.claims += 1;
        }

        // Fold the claim in with the account's current weight.
        let weight = self.account_weight(report.account).max(0.05);
        let task = &mut self.tasks[report.task];
        task.weighted_sum += weight * report.value;
        task.weight_sum += weight;
    }

    /// Replays a whole campaign in timestamp order and returns the final
    /// estimates.
    pub fn replay(num_tasks: usize, config: StreamingConfig, data: &SensingData) -> Self {
        let mut reports: Vec<Report> = data.reports().to_vec();
        reports.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
        let mut stream = Self::new(num_tasks, config);
        for r in reports {
            stream.observe(r);
        }
        stream
    }
}

impl ToJson for StreamingConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("half_life_s", self.half_life_s.to_json()),
            ("loss_floor", self.loss_floor.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(account: usize, task: usize, value: f64, timestamp: f64) -> Report {
        Report {
            account,
            task,
            value,
            timestamp,
        }
    }

    #[test]
    fn estimates_converge_on_static_truth() {
        let mut s = StreamingCrh::new(1, StreamingConfig::default());
        for i in 0..20 {
            s.observe(report(
                i % 4,
                0,
                -75.0 + (i % 3) as f64 * 0.2,
                i as f64 * 10.0,
            ));
        }
        let t = s.truth(0).expect("reported");
        assert!((t + 74.8).abs() < 0.4, "{t}");
    }

    #[test]
    fn tracks_drifting_truth() {
        // Truth jumps from -80 to -60 halfway; the decayed estimate must
        // follow while a static mean would sit at -70.
        let cfg = StreamingConfig::with_half_life(300.0);
        let mut s = StreamingCrh::new(1, cfg);
        let mut t = 0.0;
        for i in 0..30 {
            s.observe(report(i % 5, 0, -80.0, t));
            t += 60.0;
        }
        for i in 0..30 {
            s.observe(report(i % 5, 0, -60.0, t));
            t += 60.0;
        }
        let estimate = s.truth(0).expect("reported");
        assert!(estimate > -62.5, "did not track drift: {estimate}");
    }

    #[test]
    fn longer_half_life_remembers_more() {
        let run = |half_life: f64| {
            let mut s = StreamingCrh::new(1, StreamingConfig::with_half_life(half_life));
            let mut t = 0.0;
            for _ in 0..10 {
                s.observe(report(0, 0, -80.0, t));
                t += 120.0;
            }
            s.observe(report(1, 0, -60.0, t));
            s.truth(0).expect("reported")
        };
        let short = run(60.0);
        let long = run(86_400.0);
        assert!(
            short > long,
            "short {short} should lean newer than long {long}"
        );
    }

    #[test]
    fn consistent_sources_outweigh_outliers_online() {
        let mut s = StreamingCrh::new(2, StreamingConfig::default());
        let mut t = 0.0;
        for round in 0..15 {
            let task = round % 2;
            s.observe(report(0, task, -75.0, t));
            s.observe(report(1, task, -75.4, t + 5.0));
            s.observe(report(2, task, -50.0, t + 10.0));
            t += 60.0;
        }
        assert!(s.account_weight(0) > s.account_weight(2));
        let truth = s.truth(0).expect("reported");
        assert!(truth < -68.0, "outlier dominated: {truth}");
    }

    #[test]
    fn replay_matches_manual_observation() {
        let mut data = SensingData::new(2);
        data.add_report(0, 1, 5.0, 100.0);
        data.add_report(1, 0, 3.0, 50.0);
        data.add_report(0, 0, 3.2, 150.0);
        let replayed = StreamingCrh::replay(2, StreamingConfig::default(), &data);
        let mut manual = StreamingCrh::new(2, StreamingConfig::default());
        manual.observe(report(1, 0, 3.0, 50.0));
        manual.observe(report(0, 1, 5.0, 100.0));
        manual.observe(report(0, 0, 3.2, 150.0));
        assert_eq!(replayed.truths(), manual.truths());
        assert_eq!(replayed.observed(), 3);
    }

    #[test]
    fn unreported_tasks_are_none() {
        let s = StreamingCrh::new(3, StreamingConfig::default());
        assert_eq!(s.truths(), vec![None, None, None]);
        assert_eq!(s.account_weight(7), 0.0);
    }

    #[test]
    #[should_panic(expected = "timestamp order")]
    fn out_of_order_reports_panic() {
        let mut s = StreamingCrh::new(1, StreamingConfig::default());
        s.observe(report(0, 0, 1.0, 100.0));
        s.observe(report(1, 0, 1.0, 50.0));
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn bad_half_life_panics() {
        StreamingConfig::with_half_life(0.0);
    }
}
