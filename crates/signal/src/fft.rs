//! Iterative radix-2 Cooley–Tukey fast Fourier transform.

use crate::Complex;

/// Returns the smallest power of two `>= n` (and `>= 1`).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    transform(buf, false);
}

/// In-place inverse FFT (including the `1/N` normalization).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex]) {
    transform(buf, true);
    let scale = 1.0 / buf.len() as f64;
    for z in buf.iter_mut() {
        *z = z.scale(scale);
    }
}

fn transform(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    srtd_runtime::obs::counter_add("signal.fft.calls", 1);
    srtd_runtime::obs::observe("signal.fft.len", n as f64);
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `next_power_of_two(x.len())`.
/// An empty input yields a single zero bin.
pub fn fft_real(x: &[f64]) -> Vec<Complex> {
    let n = next_power_of_two(x.len());
    let mut buf: Vec<Complex> = Vec::with_capacity(n);
    buf.extend(x.iter().map(|&v| Complex::real(v)));
    buf.resize(n, Complex::ZERO);
    fft_in_place(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc += v * Complex::from_angle(ang);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut fast = x.clone();
        fft_in_place(&mut fast);
        let slow = naive_dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex::ZERO; 8];
        buf[0] = Complex::ONE;
        fft_in_place(&mut buf);
        for z in &buf {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&x);
        let mags: Vec<f64> = spec.iter().map(|z| z.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak == k0 || peak == n - k0);
        assert!((mags[k0] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(fft_real(&[]).len(), 1);
        let spec = fft_real(&[3.0]);
        assert_eq!(spec.len(), 1);
        assert_eq!(spec[0], Complex::real(3.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![Complex::ZERO; 6];
        fft_in_place(&mut buf);
    }

    /// fft → ifft returns the original signal.
    #[test]
    fn round_trip() {
        prop::check(
            |rng| prop::vec_with(rng, 1..200, |r| r.gen_range(-1e3f64..1e3)),
            |xs| {
                let spec = fft_real(xs);
                let mut back = spec.clone();
                ifft_in_place(&mut back);
                for (i, &orig) in xs.iter().enumerate() {
                    prop_assert!((back[i].re - orig).abs() < 1e-8);
                    prop_assert!(back[i].im.abs() < 1e-8);
                }
                Ok(())
            },
        );
    }

    /// Parseval: Σ|x|² = (1/N) Σ|X|² for power-of-two inputs.
    #[test]
    fn parseval() {
        prop::check(
            |rng| prop::vec_with(rng, 1..7, |r| r.gen_range(-1e2f64..1e2)),
            |xs| {
                let n = 64usize;
                let x: Vec<f64> = xs.iter().cycle().take(n).copied().collect();
                let spec = fft_real(&x);
                let time_energy: f64 = x.iter().map(|v| v * v).sum();
                let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
                prop_assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
                Ok(())
            },
        );
    }

    /// Linearity of the transform.
    #[test]
    fn linearity() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 16..17, |r| r.gen_range(-10f64..10.0)),
                    prop::vec_with(rng, 16..17, |r| r.gen_range(-10f64..10.0)),
                    rng.gen_range(-3f64..3.0),
                )
            },
            |(xs, ys, a)| {
                let a = *a;
                let sum: Vec<f64> = xs.iter().zip(ys).map(|(x, y)| a * x + y).collect();
                let fs = fft_real(&sum);
                let fx = fft_real(xs);
                let fy = fft_real(ys);
                for k in 0..fs.len() {
                    let want = fx[k].scale(a) + fy[k];
                    prop_assert!((fs[k] - want).abs() < 1e-8);
                }
                Ok(())
            },
        );
    }
}
