//! Deterministic, seedable random number generation.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend: any `u64` seed — including 0 —
//! expands to a full 256-bit state that is never all-zero. The stream is
//! a pure function of the seed, on every platform, forever; scenario
//! generation, device manufacturing and k-means seeding all lean on that.
//!
//! The API mirrors the subset of the `rand` crate surface this workspace
//! uses, so call sites read the same way: [`Rng::gen_range`] over
//! half-open ranges, [`Rng::gen_bool`], [`Rng::normal`] (Box–Muller) and
//! the [`SliceRandom`] shuffle/choose extension for slices.
//!
//! # Examples
//!
//! ```
//! use srtd_runtime::rng::{Rng, SeedableRng, SliceRandom, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! let mut order = [0, 1, 2, 3];
//! order.shuffle(&mut rng);
//! assert_eq!(StdRng::seed_from_u64(7).gen_range(0.0..1.0), x);
//! ```

/// SplitMix64: a tiny 64-bit generator used to expand seeds.
///
/// Weak as a generator on its own, but ideal for turning one `u64` into
/// well-mixed state words for a stronger generator — consecutive outputs
/// of SplitMix64 are decorrelated even for adjacent seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output (Steele, Lea & Flood's `mix64` finalizer).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's standard generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; the `++` output
/// scrambler (rotate-add) avoids the low-bit linearity of the `+` variant.
/// Not cryptographic — this is a simulation substrate, not a keystream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// The workspace's default generator, by its role rather than its guts.
pub type StdRng = Xoshiro256PlusPlus;

impl Xoshiro256PlusPlus {
    /// Creates the generator from an explicit 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (the one fixed point of the
    /// transition function).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Self { s }
    }

    /// Raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeding from a single `u64`, SplitMix64-expanded.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // SplitMix64 outputs are never all zero across four draws (it is a
        // bijection of a counter), so the state is always valid.
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open
/// range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `lo < hi` is checked by the caller.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo.is_finite() && hi.is_finite());
        let u = rng.next_f64();
        // `u < 1`, so the result stays strictly below `hi` for any finite
        // span and is never below `lo`.
        let x = lo + (hi - lo) * u;
        if x < hi {
            x
        } else {
            lo
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi.abs_diff(lo) as u64;
                lo.wrapping_add(rng.next_u64_below(span) as Self)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The random-value surface every generator exposes.
///
/// Only [`Rng::next_u64`] is required; everything else is derived so the
/// whole workspace shares one implementation of each distribution.
pub trait Rng {
    /// Raw 64-bit output — the only method implementors must provide.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform `u64` in `[0, n)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn next_u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below zero");
        // Reject draws from the tail shorter than `n` so every residue is
        // equally likely; at most one rejection in expectation.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform draw from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(
            range.start < range.end,
            "gen_range requires a non-empty range"
        );
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }

    /// One standard-normal variate (Box–Muller transform).
    fn standard_normal(&mut self) -> f64 {
        // `u1` is kept away from 0 so the log stays finite.
        let u1 = f64::MIN_POSITIVE + (1.0 - f64::MIN_POSITIVE) * self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "standard deviation must be non-negative and finite, got {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Random slice operations: in-place shuffle and element choice.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle, uniform over all permutations.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.next_u64_below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.next_u64_below(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ author's C implementation
    /// (also used by `rand_xoshiro`): state `[1, 2, 3, 4]`.
    #[test]
    fn xoshiro256pp_reference_vector() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "output {i}");
        }
    }

    /// Reference vector for SplitMix64 with seed 1234567
    /// (from the canonical Java/C cross-check lists).
    #[test]
    fn splitmix64_reference_vector() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6_457_827_717_110_365_317,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(sm.next_u64(), e, "output {i}");
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_f64_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x), "{x}");
        }
        // The degenerate-width guard of noise sampling: strictly positive.
        for _ in 0..1_000 {
            assert!(rng.gen_range(f64::MIN_POSITIVE..1.0) > 0.0);
        }
    }

    #[test]
    fn gen_range_int_covers_all_residues() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(12);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "{rate}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let skew =
            samples.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / (n as f64 * var.powf(1.5));
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
        assert!(skew.abs() < 0.05, "skewness {skew}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut rng = StdRng::seed_from_u64(14);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02, "{mean}");
        assert_eq!(rng.normal(2.5, 0.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn negative_std_dev_panics() {
        let mut rng = StdRng::seed_from_u64(15);
        let _ = rng.normal(0.0, -1.0);
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(21));
        b.shuffle(&mut StdRng::seed_from_u64(21));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_is_uniform_ish_and_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(22);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[*items.choose(&mut rng).expect("non-empty")] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "{counts:?}");
        }
    }
}
