//! RAII wall-clock spans and the thread-local parent stack that turns
//! them into per-window trace trees.

use super::internal;
use std::cell::{Cell, RefCell};
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    /// A span captures its depth on start and truncates back to it on
    /// drop, so early/out-of-order drops cannot corrupt ancestry.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Non-zero while trace recording is suppressed on this thread (used
    /// by `parallel_map`'s inline fallback so spans inside worker
    /// closures stay out of the tree at every worker count alike).
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

/// A running span; records its elapsed wall-clock time under its name
/// when dropped. Created by [`super::span`].
///
/// Guards nest naturally (each records independently) and may be dropped
/// from any thread — worker threads inside `parallel_map` report into the
/// same registry as the driver. While a telemetry window is open
/// (see [`super::window_begin`]), spans dropped on the window-opening
/// thread additionally contribute a node to the window's trace tree at
/// the path given by their enclosing spans.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    /// `None` while collection is disabled: starting a span then costs no
    /// clock read and dropping it is free.
    start: Option<Instant>,
    /// This span's index in the thread-local stack while running.
    depth: usize,
}

impl Span {
    pub(super) fn start(name: &'static str) -> Self {
        let start = super::enabled().then(Instant::now);
        let depth = if start.is_some() {
            STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                stack.push(name);
                stack.len() - 1
            })
        } else {
            0
        };
        Self { name, start, depth }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path: Option<Vec<&'static str>> = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = (!suppressed()).then(|| stack[..self.depth.min(stack.len())].to_vec());
            stack.truncate(self.depth);
            path
        });
        let me = std::thread::current().id();
        internal::with(|s| {
            s.spans.entry(self.name).or_default().record(elapsed_ns);
            if let (Some(path), Some(open)) = (&path, s.window.open.as_mut()) {
                if open.opener == me {
                    let mut node = &mut open.trace;
                    for &ancestor in path {
                        node = node.children.entry(ancestor).or_default();
                    }
                    let node = node.children.entry(self.name).or_default();
                    node.count += 1;
                    node.total_ns += elapsed_ns;
                }
            }
        });
    }
}

/// Returns `true` while trace recording is suppressed on this thread.
pub(super) fn suppressed() -> bool {
    SUPPRESS.with(|s| s.get() > 0)
}

/// Suppresses trace-tree recording on the current thread until dropped.
///
/// `parallel_map` wraps its single-threaded inline fallback in this guard
/// so spans opened inside item closures are excluded from trace trees
/// exactly as they are when the closures run on worker threads — keeping
/// tree structure and counts identical at 1 and N workers. Flat span
/// aggregates are unaffected.
#[derive(Debug)]
pub struct TraceSuppressGuard(());

impl TraceSuppressGuard {
    pub(super) fn new() -> Self {
        SUPPRESS.with(|s| s.set(s.get() + 1));
        Self(())
    }
}

impl Drop for TraceSuppressGuard {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(s.get().saturating_sub(1)));
    }
}
