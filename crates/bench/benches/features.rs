//! Table-II feature extraction cost: one stream and a full fingerprint.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srtd_fingerprint::{catalog, fingerprint_features, CaptureConfig};
use srtd_signal::{stream_features, FeatureConfig};

fn bench_features(c: &mut Criterion) {
    // One 6-second 100 Hz stream (600 samples).
    let signal: Vec<f64> = (0..600)
        .map(|i| 9.81 + 0.03 * (i as f64 * 0.6).sin())
        .collect();
    let cfg = FeatureConfig::new(100.0);
    c.bench_function("stream_features_600", |b| {
        b.iter(|| stream_features(black_box(&signal), &cfg));
    });

    // Full fingerprint: capture synthesis + 4 × 20 features.
    let mut rng = StdRng::seed_from_u64(1);
    let device = catalog::standard_catalog()[0].model.manufacture(&mut rng);
    let capture = device.capture(&CaptureConfig::paper_default(), &mut rng);
    c.bench_function("fingerprint_features_80d", |b| {
        b.iter(|| fingerprint_features(black_box(&capture)));
    });
    c.bench_function("capture_synthesis_6s", |b| {
        b.iter(|| device.capture(&CaptureConfig::paper_default(), &mut rng));
    });
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
