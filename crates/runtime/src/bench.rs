//! Tiny wall-clock benchmark harness: warmup, then median of N samples.
//!
//! Each benchmark is a closure timed over batches. A warmup run first
//! sizes the batch so one sample takes roughly
//! [`BenchConfig::sample_time`]; the harness then times
//! [`BenchConfig::samples`] batches and reports the **median** per-call
//! time (robust to scheduler noise) together with the min/max spread.
//! No statistics beyond that — for regressions, compare medians.
//!
//! Every `crates/bench` bench binary builds one [`Bench`] per group and
//! calls [`Bench::run`] per case; set `SRTD_BENCH_QUICK=1` to shrink
//! warmup and sample counts for smoke runs.
//!
//! # Examples
//!
//! ```
//! use srtd_runtime::bench::{black_box, Bench, BenchConfig};
//!
//! let mut bench = Bench::with_config("demo", BenchConfig::quick());
//! let stats = bench.run("sum", || (0..100u64).map(black_box).sum::<u64>());
//! assert!(stats.median_ns > 0.0);
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing budget of one benchmark case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Wall-clock spent sizing the batch before measurement.
    pub warmup_time: Duration,
    /// Target wall-clock of one measured sample (one batch).
    pub sample_time: Duration,
    /// Number of measured samples; the median is reported.
    pub samples: u32,
}

impl Default for BenchConfig {
    /// ~1 s per case: 200 ms warmup + 15 samples of ~50 ms.
    fn default() -> Self {
        Self {
            warmup_time: Duration::from_millis(200),
            sample_time: Duration::from_millis(50),
            samples: 15,
        }
    }
}

impl BenchConfig {
    /// A fast configuration for smoke runs (~60 ms per case).
    pub fn quick() -> Self {
        Self {
            warmup_time: Duration::from_millis(20),
            sample_time: Duration::from_millis(5),
            samples: 7,
        }
    }

    /// [`BenchConfig::quick`] when `SRTD_BENCH_QUICK=1` is set in the
    /// environment, the default budget otherwise.
    pub fn from_env() -> Self {
        match std::env::var("SRTD_BENCH_QUICK") {
            Ok(v) if v == "1" => Self::quick(),
            _ => Self::default(),
        }
    }
}

/// Median/min/max per-call nanoseconds of one benchmark case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    /// Median per-call time across samples, in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-call time, in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-call time, in nanoseconds.
    pub max_ns: f64,
    /// Calls per measured sample.
    pub batch: u64,
}

impl BenchStats {
    fn human(ns: f64) -> String {
        if ns < 1e3 {
            format!("{ns:8.1} ns")
        } else if ns < 1e6 {
            format!("{:8.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:8.2} ms", ns / 1e6)
        } else {
            format!("{:8.2} s ", ns / 1e9)
        }
    }
}

/// One named group of benchmark cases writing aligned lines to stdout.
#[derive(Debug)]
pub struct Bench {
    group: String,
    config: BenchConfig,
}

impl Bench {
    /// A group using the environment-selected budget
    /// ([`BenchConfig::from_env`]).
    pub fn new(group: impl Into<String>) -> Self {
        Self::with_config(group, BenchConfig::from_env())
    }

    /// A group with an explicit timing budget.
    pub fn with_config(group: impl Into<String>, config: BenchConfig) -> Self {
        let group = group.into();
        println!("group {group} (samples={})", config.samples);
        Self { group, config }
    }

    /// Times `f`, prints one result line and returns the statistics.
    pub fn run<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> BenchStats {
        // Warmup doubles the batch until it fills the warmup budget; the
        // measured batch is scaled to hit the per-sample target.
        let mut batch: u64 = 1;
        let mut warm_elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            warm_elapsed = start.elapsed();
            if warm_elapsed >= self.config.warmup_time || batch >= 1 << 40 {
                break;
            }
            batch *= 2;
        }
        let per_call = warm_elapsed.as_secs_f64() / batch as f64;
        let sample_batch = ((self.config.sample_time.as_secs_f64() / per_call.max(1e-12)) as u64)
            .clamp(1, 1 << 40);

        let mut samples_ns: Vec<f64> = (0..self.config.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..sample_batch {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / sample_batch as f64
            })
            .collect();
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let stats = BenchStats {
            median_ns: samples_ns[samples_ns.len() / 2],
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("at least one sample"),
            batch: sample_batch,
        };
        println!(
            "  {group}/{name:<28} {median}   [{min} .. {max}]  x{batch}",
            group = self.group,
            median = BenchStats::human(stats.median_ns),
            min = BenchStats::human(stats.min_ns).trim_start(),
            max = BenchStats::human(stats.max_ns).trim_start(),
            batch = stats.batch,
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_positive_and_ordered() {
        let mut bench = Bench::with_config("test", BenchConfig::quick());
        let stats = bench.run("spin", || {
            let mut acc = 0u64;
            for i in 0..50u64 {
                acc = acc.wrapping_add(black_box(i * i));
            }
            acc
        });
        assert!(stats.median_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
        assert!(stats.batch >= 1);
    }

    #[test]
    fn human_units_scale() {
        assert!(BenchStats::human(12.0).contains("ns"));
        assert!(BenchStats::human(12_000.0).contains("µs"));
        assert!(BenchStats::human(12_000_000.0).contains("ms"));
        assert!(BenchStats::human(2e9).contains('s'));
    }
}
