//! End-to-end framework cost (Algorithm 2) versus plain CRH.

use srtd_core::{AgTr, SybilResistantTd};
use srtd_runtime::bench::{black_box, Bench};
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_truth::{Crh, TruthDiscovery};

fn main() {
    let mut group = Bench::new("framework_end_to_end");
    for &n in &[8usize, 24, 64] {
        let cfg = ScenarioConfig {
            num_legit: n,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(6);
        let s = Scenario::generate(&cfg);
        group.run(&format!("crh_baseline/{n}"), || {
            Crh::default().discover(black_box(&s.data))
        });
        group.run(&format!("td_tr/{n}"), || {
            SybilResistantTd::new(AgTr::default()).discover(black_box(&s.data), &s.fingerprints)
        });
    }
    // Scenario generation itself (simulation cost, for context).
    let cfg = ScenarioConfig::paper_default().with_seed(7);
    group.run("scenario_generation_paper_scale", || {
        Scenario::generate(black_box(&cfg))
    });
}
