#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has no external
# dependencies (everything lives in crates/runtime), so --offline must
# always succeed — any network fetch is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Pruned vs full AG-TR equivalence: the pruned pairwise-DTW path must
# produce byte-identical groupings and audit reports, at 1 and 4 worker
# threads (run explicitly so a failure is attributable at a glance).
cargo test -q --offline --test ag_tr_equivalence

# Blocked vs exhaustive candidate generation: the prefix filter (AG-TS)
# and endpoint cells (AG-TR) must leave groupings and audit reports
# bit-identical at 1 and 4 worker threads, and the incremental union-find
# regrouping in EpochEngine must publish snapshots identical to the
# batch from-scratch rebuild across multi-epoch arrival schedules.
cargo test -q --offline --test blocked_equivalence
cargo test -q --offline --test incremental_group

# Pool vs scoped dispatch equivalence: the persistent worker pool must
# produce byte-identical outputs to the scoped spawn-per-call oracle —
# framework epochs, feature batches, obs counter streams — at 1 and 4
# workers, including when recycled scratch arenas start poisoned.
cargo test -q --offline --test pool_equivalence

# Observability smoke: an instrumented run must export JSON that the
# runtime's own parser accepts (obs-check validates shape and parse,
# including the retained telemetry windows under `history`).
obs_json="$(mktemp /tmp/srtd-obs.XXXXXX.json)"
bench_json="$(mktemp /tmp/srtd-bench.XXXXXX.json)"
trap 'rm -f "$obs_json" "$bench_json"' EXIT
SRTD_OBS=1 SRTD_OBS_JSON="$obs_json" \
  cargo run -q --release --offline --bin srtd -- \
  evaluate --seed 0 --legit 4 --tasks 4 >/dev/null
cargo run -q --release --offline --bin obs-check -- "$obs_json"

# Bench smoke: the quick pipeline bench must run offline, its framework
# output must be byte-identical across worker counts (asserted inside the
# binary), and the exported JSON must match the tracked schema
# (bench_check fails on drift).
cargo run -q --release --offline -p srtd-bench --bin bench_pipeline -- "$bench_json" >/dev/null
cargo run -q --release --offline -p srtd-bench --bin bench_check -- "$bench_json"

# Server smoke: spawn srtd-server on an ephemeral loopback port, POST a
# report batch, run two epochs (the second must warm-start in ≤2
# iterations), GET truths/groups/metrics as well-formed JSON, scrape the
# telemetry timeline (/metrics/history?n=2 must return two windows whose
# epoch-counter deltas sum to the cumulative /metrics values, /trace must
# name the fold/discover/swap stages, /metrics?format=prom must expose
# the counter families), and shut down cleanly (server-check drives the
# sequence and checks exit status). The second phase replays a Sybil-ring
# ingest schedule over POST /epoch and asserts the HTTP snapshots are
# bit-identical to an in-process incremental engine.
cargo run -q --release --offline --bin server-check -- target/release/srtd-server

# Adaptive-adversary audit: a threshold-evading ring (camouflage +
# replay jitter) must slip past trajectory grouping yet be convicted by
# the deterministic stochastic audit, bit-identically across worker
# thread counts (run explicitly so a failure is attributable).
cargo test -q --offline --test adaptive_audit

# Adaptive matrix smoke: the attack x defense sweep must hold its shape
# (zero honest FPR, grouping crushes replay rings, the audit backstop
# dominates on mimicry) in the trimmed --fast configuration; the shape
# checks are asserted inside the binaries.
cargo run -q --release --offline -p srtd-bench --bin exp_adaptive -- --fast >/dev/null
cargo run -q --release --offline -p srtd-bench --bin exp_adaptive_jitter -- --fast >/dev/null

echo "verify: OK"
