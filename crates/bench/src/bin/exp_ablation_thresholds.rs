//! Ablation: sensitivity of AG-TS to ρ and AG-TR to φ.
//!
//! The paper's remark (§IV-C): the thresholds depend on the campaign —
//! higher ρ demands more task overlap before merging, lower φ demands more
//! similar trajectories. This sweep shows grouping ARI and end-to-end MAE
//! across a threshold grid at moderate activeness (0.5/0.5), where task
//! sets are diverse.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_ablation_thresholds [seeds]`

use srtd_bench::table::Table;
use srtd_core::{AccountGrouping, AgTr, AgTs, SybilResistantTd};
use srtd_metrics::{adjusted_rand_index, mae};
use srtd_sensing::{Scenario, ScenarioConfig};

fn scenarios(seeds: u64) -> Vec<Scenario> {
    (0..seeds)
        .map(|seed| {
            Scenario::generate(
                &ScenarioConfig::paper_default()
                    .with_seed(seed)
                    .with_activeness(0.5, 0.5),
            )
        })
        .collect()
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("Ablation — grouping thresholds at activeness 0.5/0.5 ({seeds} seeds)\n");
    let scenarios = scenarios(seeds);
    let n = scenarios.len() as f64;

    println!("AG-TS affinity threshold rho:\n");
    let mut t = Table::new(["rho", "ARI", "MAE"].map(String::from).to_vec());
    let mut ts_results = Vec::new();
    for rho in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut ari = 0.0;
        let mut err = 0.0;
        for s in &scenarios {
            let grouper = AgTs::new(rho);
            let g = grouper.group(&s.data, &s.fingerprints);
            ari += adjusted_rand_index(g.labels(), &s.owners);
            let r = SybilResistantTd::new(grouper).discover(&s.data, &s.fingerprints);
            err += mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths");
        }
        ts_results.push((rho, ari / n, err / n));
        t.add_row(vec![
            format!("{rho:.2}"),
            format!("{:.3}", ari / n),
            format!("{:.2}", err / n),
        ]);
    }
    println!("{}", t.render());

    println!("AG-TR dissimilarity threshold phi:\n");
    let mut t = Table::new(["phi", "ARI", "MAE"].map(String::from).to_vec());
    let mut tr_results = Vec::new();
    for phi in [0.05, 0.25, 1.0, 4.0, 16.0] {
        let mut ari = 0.0;
        let mut err = 0.0;
        for s in &scenarios {
            let grouper = AgTr::new(phi);
            let g = grouper.group(&s.data, &s.fingerprints);
            ari += adjusted_rand_index(g.labels(), &s.owners);
            let r = SybilResistantTd::new(grouper).discover(&s.data, &s.fingerprints);
            err += mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths");
        }
        tr_results.push((phi, ari / n, err / n));
        t.add_row(vec![
            format!("{phi:.2}"),
            format!("{:.3}", ari / n),
            format!("{:.2}", err / n),
        ]);
    }
    println!("{}", t.render());

    println!("expected shape: both methods peak at an interior threshold —");
    println!("too permissive merges legitimate users (ARI drops), too strict");
    println!("splits the Sybil group (ARI drops, MAE rises). The defaults");
    println!("(rho = 1, phi = 1) sit at or near the peak.");

    let best_ts = ts_results
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    let best_tr = tr_results
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    println!("\nbest rho by ARI: {:.2} (ARI {:.3})", best_ts.0, best_ts.1);
    println!("best phi by ARI: {:.2} (ARI {:.3})", best_tr.0, best_tr.1);
    println!("\n[ablation complete]");
}
