//! Benchmarks for the extension substrates: agglomerative clustering, DTW
//! lower-bound pruning, streaming truth discovery, platform ingestion.

use srtd_cluster::hierarchical::{agglomerative, Linkage};
use srtd_runtime::bench::{black_box, Bench};
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_timeseries::{pruned_raw_dtw_matrix, Dtw};
use srtd_truth::{Report, StreamingConfig, StreamingCrh};

fn bench_hierarchical() {
    let mut group = Bench::new("agglomerative");
    for &n in &[18usize, 60] {
        let s = Scenario::generate(
            &ScenarioConfig {
                num_legit: n.saturating_sub(10).max(4),
                ..ScenarioConfig::paper_default()
            }
            .with_seed(1),
        );
        let (points, _) = srtd_signal::features::standardize(&s.fingerprints);
        group.run(&format!("avg_linkage/{}", points.len()), || {
            agglomerative(black_box(&points), 10.0, Linkage::Average)
        });
    }
}

fn bench_pruning() {
    // Trajectory-like series: 60 accounts, 10 points each.
    let series: Vec<Vec<f64>> = (0..60)
        .map(|a| {
            (0..10)
                .map(|i| (a * 13 % 7) as f64 + i as f64 * 0.1)
                .collect()
        })
        .collect();
    let mut group = Bench::new("dtw_matrix");
    group.run("unpruned", || {
        let dtw = Dtw::new().raw();
        let n = series.len();
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                m[i][j] = dtw.distance(black_box(&series[i]), &series[j]);
            }
        }
        m
    });
    group.run("lb_kim_pruned", || {
        pruned_raw_dtw_matrix(black_box(&series), 1.0)
    });
}

fn bench_streaming() {
    let mut group = Bench::new("streaming");
    group.run("streaming_crh_10k_reports", || {
        let mut stream = StreamingCrh::new(20, StreamingConfig::default());
        for i in 0..10_000usize {
            stream.observe(Report {
                account: i % 50,
                task: i % 20,
                value: -70.0 - (i % 7) as f64,
                timestamp: i as f64,
            });
        }
        black_box(stream.truths())
    });
}

fn bench_platform() {
    use srtd_platform::{Platform, PlatformConfig};
    let s = Scenario::generate(&ScenarioConfig::paper_default().with_seed(2));
    let mut reports: Vec<_> = s.data.reports().to_vec();
    reports.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
    let mut group = Bench::new("platform");
    group.run("platform_ingest_campaign", || {
        let mut p = Platform::new(PlatformConfig::default());
        p.publish_tasks(s.data.num_tasks());
        let ids: Vec<_> = s
            .fingerprints
            .iter()
            .map(|fp| p.enroll(fp.clone(), 0.0).expect("valid"))
            .collect();
        for r in &reports {
            p.advance_clock(p.clock().max(r.timestamp));
            p.submit(ids[r.account], r.task, r.value, r.timestamp)
                .expect("plausible");
        }
        black_box(p.data().num_reports())
    });
}

fn main() {
    bench_hierarchical();
    bench_pruning();
    bench_streaming();
    bench_platform();
}
