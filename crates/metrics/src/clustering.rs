//! External clustering-quality indices (Rand, ARI, NMI, purity).

use crate::contingency::{choose2, ContingencyTable};

/// The (unadjusted) Rand index between two labelings, in `[0, 1]`.
///
/// Fraction of item pairs on which the two partitions agree (both together
/// or both apart). Defined as `1.0` for fewer than two items.
///
/// # Panics
///
/// Panics if the labelings have different lengths.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let t = ContingencyTable::from_labels(a, b);
    let total_pairs = choose2(n) as i128;
    let same_same = t.pair_agreements() as i128;
    // Pairs split in `a`(rows) and also split in `b`: inclusion-exclusion
    // (signed, since the intermediate sums may cross).
    let agree_apart = total_pairs - t.row_pairs() as i128 - t.col_pairs() as i128 + same_same;
    (same_same + agree_apart) as f64 / total_pairs as f64
}

/// The Adjusted Rand Index (Hubert & Arabie 1985) between two labelings.
///
/// This is the metric the paper uses to score account grouping against the
/// true account-to-attacker assignment (§V-B). The value lies in `[-1, 1]`;
/// `1` means identical partitions, `0` is the chance level. Degenerate cases
/// where the expected index equals the maximum (e.g. both partitions
/// all-singletons or both one-cluster) return `1.0` by convention.
///
/// # Panics
///
/// Panics if the labelings have different lengths.
///
/// # Examples
///
/// ```
/// use srtd_metrics::adjusted_rand_index;
///
/// // Perfect grouping up to label permutation.
/// assert!((adjusted_rand_index(&[0, 0, 1], &[7, 7, 3]) - 1.0).abs() < 1e-12);
/// // Totally merged vs ground truth of two clusters is worse than perfect.
/// assert!(adjusted_rand_index(&[0, 0, 0, 0], &[0, 0, 1, 1]) < 1.0);
/// ```
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let t = ContingencyTable::from_labels(a, b);
    let index = t.pair_agreements() as f64;
    let row_pairs = t.row_pairs() as f64;
    let col_pairs = t.col_pairs() as f64;
    let total_pairs = choose2(n) as f64;
    let expected = row_pairs * col_pairs / total_pairs;
    let max_index = 0.5 * (row_pairs + col_pairs);
    if (max_index - expected).abs() < f64::EPSILON {
        return 1.0;
    }
    (index - expected) / (max_index - expected)
}

/// Normalized mutual information between two labelings, in `[0, 1]`.
///
/// Uses arithmetic-mean normalization `2·I(A;B)/(H(A)+H(B))`. Defined as
/// `1.0` when both partitions are trivial (zero entropy), since they are
/// then identical.
///
/// # Panics
///
/// Panics if the labelings have different lengths.
pub fn normalized_mutual_information(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let t = ContingencyTable::from_labels(a, b);
    let nf = n as f64;
    let entropy = |sums: &[usize]| -> f64 {
        sums.iter()
            .filter(|&&s| s > 0)
            .map(|&s| {
                let p = s as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let ha = entropy(t.row_sums());
    let hb = entropy(t.col_sums());
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    let mut mi = 0.0;
    for i in 0..t.rows() {
        for j in 0..t.cols() {
            let nij = t.cell(i, j);
            if nij == 0 {
                continue;
            }
            let pij = nij as f64 / nf;
            let pi = t.row_sums()[i] as f64 / nf;
            let pj = t.col_sums()[j] as f64 / nf;
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

/// Purity of labeling `a` with respect to reference labeling `b`, in
/// `(0, 1]`.
///
/// Each cluster of `a` is credited with its best-matching reference class.
/// Defined as `1.0` for empty inputs.
///
/// # Panics
///
/// Panics if the labelings have different lengths.
pub fn purity(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    if a.is_empty() {
        return 1.0;
    }
    let t = ContingencyTable::from_labels(a, b);
    let hits: usize = (0..t.rows())
        .map(|i| (0..t.cols()).map(|j| t.cell(i, j)).max().unwrap_or(0))
        .sum();
    hits as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn identical_partitions_score_one() {
        let labels = [0, 1, 1, 2, 0];
        assert!((rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&labels, &labels) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&labels, &labels), 1.0);
    }

    #[test]
    fn relabeling_does_not_change_scores() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [5, 5, 9, 9, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_known_value() {
        // Classic example: a = [0,0,1,1,1,2], b = [0,0,0,1,1,1].
        // Contingency: rows {2,3,1}; n11 pairs: C(2,2)+C(1,2)+C(2,2)+C(1,2)=1+0+1+0=2
        let a = [0, 0, 1, 1, 1, 2];
        let b = [0, 0, 0, 1, 1, 1];
        let ari = adjusted_rand_index(&a, &b);
        // index=2, rows: C(2,2)+C(3,2)+C(1,2)=1+3+0=4, cols: C(3,2)*2=6,
        // total=C(6,2)=15, expected=4*6/15=1.6, max=(4+6)/2=5
        let want = (2.0 - 1.6) / (5.0 - 1.6);
        assert!((ari - want).abs() < 1e-12);
    }

    #[test]
    fn degenerate_partitions() {
        // Both single-cluster.
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[1, 1, 1]), 1.0);
        // Both all-singletons.
        assert_eq!(adjusted_rand_index(&[0, 1, 2], &[2, 0, 1]), 1.0);
        // Single item.
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
        assert_eq!(rand_index(&[], &[]), 1.0);
    }

    #[test]
    fn ari_can_be_negative() {
        // Partitions that disagree more than chance.
        let a = [0, 1, 0, 1];
        let b = [0, 0, 1, 1];
        assert!(adjusted_rand_index(&a, &b) < 0.0 + 1e-12);
    }

    #[test]
    fn purity_rewards_fine_partitions() {
        let truth = [0, 0, 1, 1];
        let singletons = [0, 1, 2, 3];
        assert_eq!(purity(&singletons, &truth), 1.0);
        let merged = [0, 0, 0, 0];
        assert_eq!(purity(&merged, &truth), 0.5);
    }

    fn label_pairs(
        rng: &mut srtd_runtime::rng::StdRng,
        len: std::ops::Range<usize>,
    ) -> Vec<(usize, usize)> {
        prop::vec_with(rng, len, |r| {
            (r.gen_range(0usize..4), r.gen_range(0usize..4))
        })
    }

    #[test]
    fn ari_bounded_and_symmetric() {
        prop::check(
            |rng| label_pairs(rng, 2..40),
            |labels| {
                let a: Vec<usize> = labels.iter().map(|l| l.0).collect();
                let b: Vec<usize> = labels.iter().map(|l| l.1).collect();
                let ab = adjusted_rand_index(&a, &b);
                let ba = adjusted_rand_index(&b, &a);
                prop_assert!((-1.0..=1.0 + 1e-12).contains(&ab));
                prop_assert!((ab - ba).abs() < 1e-9);
                Ok(())
            },
        );
    }

    #[test]
    fn rand_index_bounded_and_permutation_invariant() {
        prop::check(
            |rng| label_pairs(rng, 2..40),
            |labels| {
                let a: Vec<usize> = labels.iter().map(|l| l.0).collect();
                let b: Vec<usize> = labels.iter().map(|l| l.1).collect();
                let ri = rand_index(&a, &b);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&ri));
                // Relabel `a` by an arbitrary injective map.
                let a2: Vec<usize> = a.iter().map(|&l| l * 13 + 7).collect();
                prop_assert!((rand_index(&a2, &b) - ri).abs() < 1e-9);
                Ok(())
            },
        );
    }

    #[test]
    fn nmi_bounded() {
        prop::check(
            |rng| label_pairs(rng, 1..40),
            |labels| {
                let a: Vec<usize> = labels.iter().map(|l| l.0).collect();
                let b: Vec<usize> = labels.iter().map(|l| l.1).collect();
                let nmi = normalized_mutual_information(&a, &b);
                prop_assert!((0.0..=1.0).contains(&nmi));
                Ok(())
            },
        );
    }

    #[test]
    fn self_comparison_is_perfect() {
        prop::check(
            |rng| prop::vec_with(rng, 2..40, |r| r.gen_range(0usize..5)),
            |a| {
                prop_assert!((adjusted_rand_index(a, a) - 1.0).abs() < 1e-9);
                prop_assert!((rand_index(a, a) - 1.0).abs() < 1e-9);
                prop_assert!((purity(a, a) - 1.0).abs() < 1e-9);
                Ok(())
            },
        );
    }
}
