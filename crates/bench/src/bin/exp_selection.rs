//! Extension experiment: the §IV-C Remark — budgeted user selection
//! alleviates behavioural-grouping false positives.
//!
//! Runs the paper-scale campaign at α = 0.5/0.5 with and without greedy
//! max-coverage selection (the allocation rule inside the incentive
//! mechanisms the paper cites) and measures the false-positive pairs of
//! AG-TS / AG-TR among *legitimate* accounts, plus end-to-end MAE.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_selection [seeds]`

use srtd_bench::table::Table;
use srtd_core::{AccountGrouping, AgTr, AgTs, SybilResistantTd};
use srtd_metrics::mae;
use srtd_sensing::{CoverageSelection, Scenario, ScenarioConfig};
use srtd_truth::SensingData;

/// False-positive merged pairs among legitimate accounts only (the
/// Remark's concern: two honest users mistaken for a Sybil pair).
fn legit_false_positive_pairs(grouping: &srtd_core::Grouping, scenario: &Scenario) -> usize {
    let n = scenario.num_accounts();
    let mut fp = 0;
    for i in 0..n {
        for j in i + 1..n {
            if scenario.is_sybil[i] || scenario.is_sybil[j] {
                continue;
            }
            if grouping.group_of(i) == grouping.group_of(j)
                && scenario.owners[i] != scenario.owners[j]
            {
                fp += 1;
            }
        }
    }
    fp
}

fn run_case(data: &SensingData, scenario: &Scenario) -> (usize, usize, f64) {
    let g_ts = AgTs::default().group(data, &scenario.fingerprints);
    let g_tr = AgTr::default().group(data, &scenario.fingerprints);
    let fp_ts = legit_false_positive_pairs(&g_ts, scenario);
    let fp_tr = legit_false_positive_pairs(&g_tr, scenario);
    let r = SybilResistantTd::new(AgTr::default()).discover_with_grouping(data, g_tr);
    let err = mae(&r.truths_or(0.0), &scenario.ground_truth).expect("lengths");
    (fp_ts, fp_tr, err)
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    println!("Extension — §IV-C Remark: selection vs. grouping false positives");
    println!("({seeds} seeds, activeness 0.5/0.5, denser 16-user campaign)\n");

    let mut no_sel = (0usize, 0usize, 0.0f64);
    let mut with_sel = (0usize, 0usize, 0.0f64);
    let mut kept_sybil = 0usize;
    let mut kept_total = 0usize;
    for seed in 0..seeds {
        // A denser campaign than the paper's (16 legit users over 10
        // tasks) so that behavioural near-twins actually occur.
        let cfg = ScenarioConfig {
            num_legit: 16,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(seed)
        .with_activeness(0.5, 0.5);
        let s = Scenario::generate(&cfg);
        let base = run_case(&s.data, &s);
        no_sel = (no_sel.0 + base.0, no_sel.1 + base.1, no_sel.2 + base.2);

        let (filtered, selected) = CoverageSelection::new(3).filter_scenario(&s);
        let sel = run_case(&filtered, &s);
        with_sel = (with_sel.0 + sel.0, with_sel.1 + sel.1, with_sel.2 + sel.2);
        kept_total += selected.len();
        kept_sybil += selected.iter().filter(|&&a| s.is_sybil[a]).count();
    }
    let n = seeds as f64;
    let mut t = Table::new(
        [
            "setting",
            "AG-TS legit FP pairs",
            "AG-TR legit FP pairs",
            "TD-TR MAE",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.add_row(vec![
        "no selection".into(),
        format!("{:.2}", no_sel.0 as f64 / n),
        format!("{:.2}", no_sel.1 as f64 / n),
        format!("{:.2}", no_sel.2 / n),
    ]);
    t.add_row(vec![
        "coverage selection (quota 3)".into(),
        format!("{:.2}", with_sel.0 as f64 / n),
        format!("{:.2}", with_sel.1 as f64 / n),
        format!("{:.2}", with_sel.2 / n),
    ]);
    println!("{}", t.render());
    println!(
        "selected accounts/run: {:.1}, of which Sybil: {:.1}",
        kept_total as f64 / n,
        kept_sybil as f64 / n
    );
    println!();
    println!("expected shape: selection removes redundant (near-duplicate)");
    println!("accounts, so behavioural false positives among legitimate users");
    println!("drop (the Remark's claim) — and, as a side effect, most Sybil");
    println!("accounts are *also* deprioritized because they duplicate each");
    println!("other's coverage, so the selected campaign is doubly safer.");
    assert!(
        with_sel.0 <= no_sel.0,
        "selection should not increase AG-TS false positives"
    );
    assert!(
        with_sel.1 <= no_sel.1,
        "selection should not increase AG-TR false positives"
    );
    assert!(
        (kept_sybil as f64 / n) < 10.0,
        "selection should drop some of the 10 Sybil accounts"
    );
    println!("\n[shape checks passed]");
}
