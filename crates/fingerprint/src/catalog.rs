//! The Table IV smartphone inventory.

use crate::device::{DeviceModel, DeviceOs, MemsParameters};

/// One row of the Table IV inventory: a model and how many units the
/// experiment uses.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// The smartphone model.
    pub model: DeviceModel,
    /// Number of physical units in the experiment.
    pub quantity: usize,
    /// Role annotation from Table IV: `*` = used for Attack-I,
    /// `**` = used for Attack-II, empty = legitimate users only.
    pub role: DeviceRole,
}

/// How a device model is used in the paper's experiment (Table IV
/// footnotes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceRole {
    /// Only legitimate users carry this model.
    #[default]
    Legitimate,
    /// One unit of this model conducts Attack-I (`*`).
    AttackI,
    /// One unit of this model conducts Attack-II (`**`).
    AttackII,
}

/// The 8-model, 11-unit inventory of Table IV.
///
/// MEMS population parameters are synthetic but chosen so that models are
/// separable while chips within a model stay close — the structure Fig. 8
/// reports ("the centers of the smartphones of the same model are very
/// close"). iPhone 6S conducts Attack-I; iPhone SE and Nexus 6P conduct
/// Attack-II.
///
/// # Examples
///
/// ```
/// let catalog = srtd_fingerprint::catalog::standard_catalog();
/// let units: usize = catalog.iter().map(|e| e.quantity).sum();
/// assert_eq!(units, 11);
/// assert_eq!(catalog.len(), 8);
/// ```
pub fn standard_catalog() -> Vec<CatalogEntry> {
    let mems = |accel_bias_center: f64,
                gyro_bias_center: f64,
                resonance_hz: f64,
                resonance_gain: f64| MemsParameters {
        accel_bias_center,
        accel_bias_spread: 0.012,
        accel_scale_spread: 0.004,
        accel_noise: 0.006,
        gyro_bias_center,
        gyro_bias_spread: 0.0035,
        gyro_scale_spread: 0.004,
        gyro_noise: 0.0025,
        resonance_hz,
        resonance_spread_hz: 0.5,
        resonance_gain,
    };
    vec![
        CatalogEntry {
            model: DeviceModel::new("iPhone SE", DeviceOs::Ios, mems(0.055, 0.009, 14.0, 0.060)),
            quantity: 1,
            role: DeviceRole::AttackII,
        },
        CatalogEntry {
            model: DeviceModel::new("iPhone 6", DeviceOs::Ios, mems(-0.040, -0.006, 17.5, 0.052)),
            quantity: 1,
            role: DeviceRole::Legitimate,
        },
        CatalogEntry {
            model: DeviceModel::new("iPhone 6S", DeviceOs::Ios, mems(0.090, 0.014, 21.0, 0.068)),
            quantity: 2,
            role: DeviceRole::AttackI,
        },
        CatalogEntry {
            model: DeviceModel::new("iPhone 7", DeviceOs::Ios, mems(-0.085, -0.012, 24.5, 0.044)),
            quantity: 1,
            role: DeviceRole::Legitimate,
        },
        CatalogEntry {
            model: DeviceModel::new("iPhone X", DeviceOs::Ios, mems(0.020, 0.017, 28.0, 0.076)),
            quantity: 1,
            role: DeviceRole::Legitimate,
        },
        CatalogEntry {
            model: DeviceModel::new(
                "Nexus 6P",
                DeviceOs::Android,
                mems(-0.120, -0.016, 31.5, 0.084),
            ),
            quantity: 3,
            role: DeviceRole::AttackII,
        },
        CatalogEntry {
            model: DeviceModel::new("LG G5", DeviceOs::Android, mems(0.130, 0.021, 35.0, 0.056)),
            quantity: 1,
            role: DeviceRole::Legitimate,
        },
        CatalogEntry {
            model: DeviceModel::new(
                "Nexus 5",
                DeviceOs::Android,
                mems(-0.155, -0.021, 11.0, 0.092),
            ),
            quantity: 1,
            role: DeviceRole::Legitimate,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_totals() {
        let c = standard_catalog();
        assert_eq!(c.len(), 8);
        assert_eq!(c.iter().map(|e| e.quantity).sum::<usize>(), 11);
        let ios: usize = c
            .iter()
            .filter(|e| e.model.os == DeviceOs::Ios)
            .map(|e| e.quantity)
            .sum();
        let android: usize = c
            .iter()
            .filter(|e| e.model.os == DeviceOs::Android)
            .map(|e| e.quantity)
            .sum();
        assert_eq!(ios, 6);
        assert_eq!(android, 5);
    }

    #[test]
    fn attack_roles_match_table_iv_footnotes() {
        let c = standard_catalog();
        let attack1: Vec<&str> = c
            .iter()
            .filter(|e| e.role == DeviceRole::AttackI)
            .map(|e| e.model.name.as_str())
            .collect();
        let attack2: Vec<&str> = c
            .iter()
            .filter(|e| e.role == DeviceRole::AttackII)
            .map(|e| e.model.name.as_str())
            .collect();
        assert_eq!(attack1, vec!["iPhone 6S"]);
        assert_eq!(attack2, vec!["iPhone SE", "Nexus 6P"]);
    }

    #[test]
    fn model_names_and_resonances_are_unique() {
        let c = standard_catalog();
        for i in 0..c.len() {
            for j in i + 1..c.len() {
                assert_ne!(c[i].model.name, c[j].model.name);
                assert!((c[i].model.mems.resonance_hz - c[j].model.mems.resonance_hz).abs() > 1.0);
            }
        }
    }

    #[test]
    fn resonances_below_nyquist_at_100hz() {
        for e in standard_catalog() {
            assert!(e.model.mems.resonance_hz < 50.0);
        }
    }
}
