//! A Gaussian truth model solved by coordinate ascent.
//!
//! Models each report as `d_j^i = d_j + ε_i` with `ε_i ~ N(0, σ_i²)` and
//! alternates closed-form updates of truths (precision-weighted means) and
//! per-source variances (mean squared residuals). This is the continuous
//! analogue of the probabilistic truth models cited alongside CRH and gives
//! the evaluation a second iterative baseline with a different weighting
//! scheme.

use crate::convergence::ConvergenceCriterion;
use crate::data::SensingData;
use crate::traits::{TruthDiscovery, TruthDiscoveryResult};

/// Configuration for [`Gtm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtmConfig {
    /// Convergence control.
    pub convergence: ConvergenceCriterion,
    /// Lower bound on per-source variance, preventing a single source from
    /// acquiring infinite precision and freezing the estimate.
    pub variance_floor: f64,
}

impl Default for GtmConfig {
    fn default() -> Self {
        Self {
            convergence: ConvergenceCriterion::default(),
            variance_floor: 1e-4,
        }
    }
}

/// Gaussian truth model with per-source variances.
///
/// # Examples
///
/// ```
/// use srtd_truth::{Gtm, SensingData, TruthDiscovery};
///
/// let mut data = SensingData::new(1);
/// data.add_report(0, 0, 4.0, 0.0);
/// data.add_report(1, 0, 4.4, 0.0);
/// data.add_report(2, 0, 9.0, 0.0);
/// let truth = Gtm::default().discover(&data).truths[0].unwrap();
/// assert!(truth < 6.5); // outlier down-weighted
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Gtm {
    config: GtmConfig,
}

impl Gtm {
    /// Creates a GTM instance with the given configuration.
    pub fn new(config: GtmConfig) -> Self {
        Self { config }
    }
}

impl TruthDiscovery for Gtm {
    fn discover(&self, data: &SensingData) -> TruthDiscoveryResult {
        let n = data.num_accounts();
        if data.is_empty() || n == 0 {
            return TruthDiscoveryResult {
                truths: vec![None; data.num_tasks()],
                weights: vec![0.0; n],
                iterations: 0,
                converged: true,
            };
        }
        // Iterate on residuals from the per-task means (see
        // `SensingData::centered`): offset-independent arithmetic.
        let (centered, centers) = data.centered();
        let data = &centered;
        let mut truths: Vec<Option<f64>> = data.task_means();
        let claim_counts: Vec<usize> = (0..n).map(|a| data.account_reports(a).len()).collect();
        let mut variances = vec![1.0f64; n];
        let mut iterations = 0;
        let mut converged = false;
        for iter in 0..self.config.convergence.max_iterations {
            iterations = iter + 1;
            // M-step for source variances.
            let mut residuals = vec![0.0f64; n];
            for r in data.reports() {
                if let Some(t) = truths[r.task] {
                    residuals[r.account] += (r.value - t) * (r.value - t);
                }
            }
            for a in 0..n {
                if claim_counts[a] > 0 {
                    variances[a] =
                        (residuals[a] / claim_counts[a] as f64).max(self.config.variance_floor);
                }
            }
            // Truth update with precisions.
            let mut num = vec![0.0; data.num_tasks()];
            let mut den = vec![0.0; data.num_tasks()];
            for r in data.reports() {
                let precision = 1.0 / variances[r.account];
                num[r.task] += precision * r.value;
                den[r.task] += precision;
            }
            let next: Vec<Option<f64>> = (0..data.num_tasks())
                .map(|t| (den[t] > 0.0).then(|| num[t] / den[t]).or(truths[t]))
                .collect();
            let done = self.config.convergence.is_converged(&truths, &next);
            truths = next;
            if done {
                converged = true;
                break;
            }
        }
        let weights = variances.iter().map(|&v| 1.0 / v).collect();
        let truths = truths
            .iter()
            .zip(&centers)
            .map(|(t, c)| match (t, c) {
                (Some(t), Some(c)) => Some(t + c),
                _ => None,
            })
            .collect();
        TruthDiscoveryResult {
            truths,
            weights,
            iterations,
            converged,
        }
    }

    fn name(&self) -> &'static str {
        "GTM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_sources_dominate() {
        let mut d = SensingData::new(4);
        for t in 0..4 {
            d.add_report(0, t, t as f64, 0.0);
            d.add_report(1, t, t as f64 + 0.1, 0.0);
            d.add_report(2, t, t as f64 + 5.0, 0.0);
        }
        let r = Gtm::default().discover(&d);
        for t in 0..4 {
            let v = r.truths[t].unwrap();
            assert!((v - t as f64).abs() < 1.0, "task {t}: {v}");
        }
        assert!(r.weights[0] > r.weights[2]);
    }

    #[test]
    fn variance_floor_prevents_lock_in() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(0, 1, 2.0, 0.0);
        d.add_report(1, 0, 1.0, 0.0);
        d.add_report(1, 1, 2.0, 0.0);
        let r = Gtm::default().discover(&d);
        assert!(r.weights.iter().all(|w| w.is_finite()));
        assert_eq!(r.truths[0], Some(1.0));
    }

    #[test]
    fn empty_data_is_fine() {
        let r = Gtm::default().discover(&SensingData::new(1));
        assert_eq!(r.truths, vec![None]);
        assert!(r.converged);
    }

    #[test]
    fn estimates_within_hull() {
        let mut d = SensingData::new(1);
        for (a, v) in [(0, 3.0), (1, 7.0), (2, 5.0)] {
            d.add_report(a, 0, v, 0.0);
        }
        let v = Gtm::default().discover(&d).truths[0].unwrap();
        assert!((3.0..=7.0).contains(&v));
    }
}
