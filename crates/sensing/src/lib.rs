//! Mobile crowdsensing world simulator.
//!
//! The paper evaluates its framework on a small real-world campaign: 10
//! Wi-Fi RSSI measurement tasks at campus POIs, 8 legitimate volunteers,
//! and 2 Sybil attackers with 5 accounts each (one Attack-I, one
//! Attack-II), using the 11 smartphones of Table IV. That campaign cannot
//! be re-run, so this crate simulates it end to end, preserving the
//! structure every grouping method keys on:
//!
//! * [`PoiMap`] — POIs on a synthetic campus, with walking distances,
//! * [`WifiWorld`] — per-POI ground-truth RSSI plus per-user measurement
//!   noise (users have heterogeneous quality, as §I motivates),
//! * [`mobility`] — nearest-neighbor walking routes with dwell times; an
//!   attacker walks *once* and its accounts submit back to back, exactly
//!   the timestamp pattern of Table III,
//! * [`attack`] — Attack-I (one device) and Attack-II (multiple devices),
//!   with duplicate-data (rapacious) and fabricated-data (malicious)
//!   strategies,
//! * [`Scenario`] — a complete generated campaign: a
//!   [`srtd_truth::SensingData`] report matrix, per-account device
//!   fingerprints, ground truths, and the true account→user assignment
//!   that ARI is scored against.
//!
//! # Examples
//!
//! ```
//! use srtd_sensing::{Scenario, ScenarioConfig};
//!
//! let scenario = Scenario::generate(&ScenarioConfig::paper_default().with_seed(1));
//! assert_eq!(scenario.data.num_tasks(), 10);
//! assert_eq!(scenario.data.num_accounts(), 18); // 8 legit + 2×5 Sybil
//! assert_eq!(scenario.fingerprints.len(), 18);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod mobility;
pub mod poi;
pub mod scale;
pub mod scenario;
pub mod selection;
pub mod user;
pub mod world;

pub use attack::{AttackType, AttackerSpec, EvasionTactic, FabricationStrategy};
pub use poi::{Poi, PoiMap};
pub use scale::{ScaledCampaign, ScaledCampaignConfig};
pub use scenario::{Scenario, ScenarioConfig};
pub use selection::CoverageSelection;
pub use user::MeasurementProfile;
pub use world::WifiWorld;
