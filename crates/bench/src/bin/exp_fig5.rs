//! Experiment `fig5` — the POI map. The paper's Fig. 5 is a campus photo
//! with 10 measurement POIs; our substitute campus is synthetic, so this
//! binary renders its layout as ASCII together with each POI's
//! ground-truth RSSI.
//!
//! Run with: `cargo run -p srtd-bench --bin exp_fig5 [seed]`

use srtd_bench::table::Table;
use srtd_sensing::{PoiMap, WifiWorld};

const COLS: usize = 60;
const ROWS: usize = 18;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    println!(
        "Fig. 5 — POIs for Wi-Fi signal strength measurement (synthetic campus, seed {seed})\n"
    );
    let map = PoiMap::campus(10, seed);
    let world = WifiWorld::generate(&map, seed);

    let mut grid = vec![vec![b'.'; COLS]; ROWS];
    for poi in map.pois() {
        let c = ((poi.x / 400.0) * (COLS - 1) as f64).round() as usize;
        let r = ((poi.y / 300.0) * (ROWS - 1) as f64).round() as usize;
        let label = if poi.id < 9 {
            b'1' + poi.id as u8
        } else {
            b'0' // POI 10
        };
        grid[r.min(ROWS - 1)][c.min(COLS - 1)] = label;
    }
    println!("+{}+", "-".repeat(COLS));
    for row in &grid {
        println!("|{}|", String::from_utf8_lossy(row));
    }
    println!("+{}+", "-".repeat(COLS));
    println!("(400 m x 300 m; digits are POI ids, '0' = POI 10)\n");

    let mut t = Table::new(
        ["POI", "x (m)", "y (m)", "ground-truth RSSI (dBm)"]
            .map(String::from)
            .to_vec(),
    );
    for poi in map.pois() {
        t.add_row(vec![
            format!("{}", poi.id + 1),
            format!("{:.0}", poi.x),
            format!("{:.0}", poi.y),
            format!("{:.1}", world.ground_truth(poi.id)),
        ]);
    }
    println!("{}", t.render());
    // Shape checks: 10 POIs spread over the campus, realistic RSSI band.
    assert_eq!(map.len(), 10);
    for poi in map.pois() {
        assert!((0.0..=400.0).contains(&poi.x));
        assert!((0.0..=300.0).contains(&poi.y));
        let rssi = world.ground_truth(poi.id);
        assert!((-92.0..=-58.0).contains(&rssi));
    }
    println!("[layout check passed]");
}
