//! Sybil resistance for categorical sensing tasks.
//!
//! The paper demonstrates its attack on numerical tasks; plenty of MCS
//! tasks are discrete (is the charging station working? which exit is
//! closed?). The attack carries over unchanged — a coordinated account
//! block out-votes honest users — and so does the counter-measure:
//! collapse suspected groups to a single vote. This example runs a small
//! binary-label campaign through majority voting, weighted voting and the
//! group-collapsed vote.
//!
//! Run with: `cargo run --example categorical_tasks`

use sybil_td::truth::categorical::{
    grouped_weighted_vote, majority_vote, CategoricalData, WeightedVote,
};

const LABELS: [&str; 2] = ["working", "broken"];

fn main() {
    // 5 charging stations; ground truth: all working (label 0).
    // Three honest volunteers check a few stations each; one attacker
    // reports "broken" through four accounts to scare users away.
    let mut data = CategoricalData::new(5);
    let honest = [
        (0usize, vec![0usize, 1, 2, 4]),
        (1, vec![0, 2, 3]),
        (2, vec![1, 3, 4]),
    ];
    for (account, stations) in &honest {
        for &s in stations {
            data.add_claim(*account, s, 0);
        }
    }
    for sybil_account in 3..7 {
        for station in [0usize, 2, 4] {
            data.add_claim(sybil_account, station, 1);
        }
    }

    let majority = majority_vote(&data);
    let weighted = WeightedVote::default().discover(&data);
    // Suppose AG-TR flagged the four replayed accounts as one group.
    let groups = [0, 1, 2, 3, 3, 3, 3];
    let grouped = grouped_weighted_vote(&data, &groups);

    println!("station | truth    | majority | weighted | grouped");
    println!("--------+----------+----------+----------+---------");
    for station in 0..5 {
        let show = |t: Option<usize>| t.map_or("x", |l| LABELS[l]);
        println!(
            "   S{}   | {:8} | {:8} | {:8} | {:8}",
            station + 1,
            LABELS[0],
            show(majority[station]),
            show(weighted.truths[station]),
            show(grouped[station]),
        );
    }
    println!();
    println!("the attacker out-votes honest users on S1/S3/S5 under both");
    println!("majority and weighted voting; collapsing its accounts to one");
    println!("group voice restores every label.");
    for station in [0usize, 2, 4] {
        assert_eq!(majority[station], Some(1), "attack should win plain vote");
        assert_eq!(grouped[station], Some(0), "grouping should restore truth");
    }
}
