//! Table-II feature extraction cost: one stream and a full fingerprint.

use srtd_fingerprint::{catalog, fingerprint_features, CaptureConfig};
use srtd_runtime::bench::{black_box, Bench};
use srtd_runtime::rng::SeedableRng;
use srtd_runtime::rng::StdRng;
use srtd_signal::{stream_features, stream_features_batch, FeatureConfig};

fn main() {
    let mut group = Bench::new("features");
    // One 6-second 100 Hz stream (600 samples).
    let signal: Vec<f64> = (0..600)
        .map(|i| 9.81 + 0.03 * (i as f64 * 0.6).sin())
        .collect();
    let cfg = FeatureConfig::new(100.0);
    group.run("stream_features_600", || {
        stream_features(black_box(&signal), &cfg)
    });

    // The same work as four per-stream calls, but batched: paired FFTs
    // plus fused in-job extraction (the fingerprint pipeline's shape).
    let streams: Vec<Vec<f64>> = (0..4)
        .map(|s| {
            (0..600)
                .map(|i| 9.81 + 0.03 * (i as f64 * (0.6 + s as f64 * 0.17)).sin())
                .collect()
        })
        .collect();
    group.run("stream_features_batch_4x600", || {
        stream_features_batch(black_box(&streams), &cfg)
    });

    // Full fingerprint: capture synthesis + 4 × 20 features.
    let mut rng = StdRng::seed_from_u64(1);
    let device = catalog::standard_catalog()[0].model.manufacture(&mut rng);
    let capture = device.capture(&CaptureConfig::paper_default(), &mut rng);
    group.run("fingerprint_features_80d", || {
        fingerprint_features(black_box(&capture))
    });
    group.run("capture_synthesis_6s", || {
        device.capture(&CaptureConfig::paper_default(), &mut rng)
    });
}
