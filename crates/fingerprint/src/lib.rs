//! Synthetic MEMS device fingerprints.
//!
//! The paper's AG-FP grouping method identifies accounts that share a
//! physical device by fingerprinting the device's accelerometer and
//! gyroscope: manufacturing imperfections in the MEMS structure (electrode
//! gap differences, proof-mass asymmetries) shift the bias, gain and noise
//! of each chip in a way that is stable per device, similar within a model
//! family, and measurably different across models (§III-D, Figs. 1/2/8).
//!
//! We cannot ship 11 physical smartphones, so this crate *simulates* the
//! capture pipeline end to end:
//!
//! * [`DeviceModel`] — a model family (e.g. "iPhone 6S") with
//!   population-level MEMS parameters; [`catalog`] reproduces the Table IV
//!   inventory,
//! * [`DeviceInstance`] — one manufactured chip, with per-device
//!   imperfections drawn around its model's parameters,
//! * [`CaptureConfig`]/[`SensorCapture`] — a stationary hand-held capture
//!   session (the paper's 6-second sign-in hold): gravity plus hand tremor
//!   plus the device's bias/gain/noise signature,
//! * [`fingerprint_features`] — the 80-dimensional feature vector
//!   (20 Table-II features × 4 streams) that AG-FP clusters.
//!
//! The substitution preserves what AG-FP depends on: captures from the same
//! device cluster tightly, same-model devices are hard to separate, and
//! distinct models separate clearly.
//!
//! # Examples
//!
//! ```
//! use srtd_runtime::rng::SeedableRng;
//! use srtd_fingerprint::{catalog, CaptureConfig, fingerprint_features};
//!
//! let mut rng = srtd_runtime::rng::StdRng::seed_from_u64(7);
//! let models = catalog::standard_catalog();
//! let device = models[0].model.manufacture(&mut rng);
//! let capture = device.capture(&CaptureConfig::paper_default(), &mut rng);
//! let features = fingerprint_features(&capture);
//! assert_eq!(features.len(), 80);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod catalog;
pub mod device;
pub mod extract;
pub mod noise;

pub use capture::{CaptureConfig, SensorCapture};
pub use device::{DeviceInstance, DeviceModel, DeviceOs, MemsParameters};
pub use extract::{fingerprint_features, FINGERPRINT_DIMENSIONS};
