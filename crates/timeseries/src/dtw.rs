//! Dynamic Time Warping (Berndt & Clifford 1994) with the path-length
//! normalization of Eq. 7 and an optional Sakoe–Chiba band.

/// DTW distance calculator.
///
/// The default configuration reproduces Eq. 7 of the paper: squared point
/// distances, unconstrained warping, and `sqrt(Σ ω_k / K)` normalization by
/// the warping-path length `K`. A Sakoe–Chiba band can be enabled with
/// [`Dtw::with_band`] to bound the warp for long series; the band is
/// automatically widened to `|m − n|` so a feasible path always exists.
///
/// # Examples
///
/// ```
/// use srtd_timeseries::Dtw;
///
/// let d = Dtw::new().distance(&[1.0, 2.0], &[1.0, 2.0, 2.0]);
/// assert!(d.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dtw {
    band: Option<usize>,
    raw: bool,
}

impl Dtw {
    /// Unconstrained DTW with Eq. 7 normalization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts warping to a Sakoe–Chiba band of half-width `w`.
    pub fn with_band(mut self, w: usize) -> Self {
        self.band = Some(w);
        self
    }

    /// Returns the raw cumulative squared cost `r(m, n)` instead of the
    /// Eq. 7 normalized form.
    ///
    /// The worked example in Fig. 4(a) of the paper tabulates exactly this
    /// quantity (e.g. `DTW(X_1, X_2) = 2` for the Table III task series),
    /// so the example-reproduction code uses raw mode.
    pub fn raw(mut self) -> Self {
        self.raw = true;
        self
    }

    /// The DTW distance between two series.
    ///
    /// Conventions for degenerate inputs: two empty series are identical
    /// (`0.0`); an empty series against a non-empty one is infinitely far
    /// (`f64::INFINITY`), so accounts with no submissions never group with
    /// active ones.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        let (m, n) = (a.len(), b.len());
        match (m, n) {
            (0, 0) => return 0.0,
            (0, _) | (_, 0) => return f64::INFINITY,
            _ => {}
        }
        // One DP table of m·n cells per call; cheap to count here, far too
        // hot to count per cell.
        srtd_runtime::obs::counter_add("timeseries.dtw.calls", 1);
        srtd_runtime::obs::counter_add("timeseries.dtw.cells", (m * n) as u64);
        // Effective band half-width: must be at least |m-n| for feasibility.
        let w = self
            .band
            .map(|w| w.max(m.abs_diff(n)))
            .unwrap_or(usize::MAX);

        // cost[j], steps[j] hold r(i, j) and the length K of the best path
        // reaching (i, j); rolling rows keep memory at O(n).
        const INF: f64 = f64::INFINITY;
        let mut prev_cost = vec![INF; n + 1];
        let mut prev_steps = vec![0usize; n + 1];
        let mut cur_cost = vec![INF; n + 1];
        let mut cur_steps = vec![0usize; n + 1];
        prev_cost[0] = 0.0;

        for i in 1..=m {
            cur_cost.fill(INF);
            cur_cost[0] = INF;
            let lo = i.saturating_sub(w).max(1);
            let hi = if w == usize::MAX { n } else { (i + w).min(n) };
            for j in lo..=hi {
                let d = a[i - 1] - b[j - 1];
                let cost = d * d;
                // Predecessors: (i-1, j-1), (i-1, j), (i, j-1).
                let (mut best, mut steps) = (prev_cost[j - 1], prev_steps[j - 1]);
                if prev_cost[j] < best {
                    best = prev_cost[j];
                    steps = prev_steps[j];
                }
                if cur_cost[j - 1] < best {
                    best = cur_cost[j - 1];
                    steps = cur_steps[j - 1];
                }
                // The virtual origin (0,0) starts the path at (1,1).
                if i == 1 && j == 1 {
                    best = 0.0;
                    steps = 0;
                }
                if best.is_finite() {
                    cur_cost[j] = best + cost;
                    cur_steps[j] = steps + 1;
                }
            }
            std::mem::swap(&mut prev_cost, &mut cur_cost);
            std::mem::swap(&mut prev_steps, &mut cur_steps);
        }
        let total = prev_cost[n];
        let k = prev_steps[n];
        if !total.is_finite() || k == 0 {
            return f64::INFINITY;
        }
        if self.raw {
            total
        } else {
            (total / k as f64).sqrt()
        }
    }
}

/// Unconstrained DTW distance (Eq. 7), shorthand for
/// `Dtw::new().distance(a, b)`.
///
/// # Examples
///
/// ```
/// let d = srtd_timeseries::dtw(&[1.0, 3.0], &[2.0, 3.0]);
/// assert!(d > 0.0);
/// ```
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    Dtw::new().distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn identical_series_have_zero_distance() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(dtw(&xs, &xs), 0.0);
    }

    #[test]
    fn single_points() {
        assert_eq!(dtw(&[2.0], &[5.0]), 3.0); // sqrt(9/1)
        assert_eq!(dtw(&[2.0], &[2.0]), 0.0);
    }

    #[test]
    fn empty_series_conventions() {
        assert_eq!(dtw(&[], &[]), 0.0);
        assert_eq!(dtw(&[], &[1.0]), f64::INFINITY);
        assert_eq!(dtw(&[1.0], &[]), f64::INFINITY);
    }

    #[test]
    fn warping_absorbs_time_shift() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0]; // delayed copy
        let euclid_like = dtw(&[0.0, 1.0, 2.0], &[5.0, 6.0, 7.0]);
        assert!(dtw(&a, &b) < 1e-9);
        assert!(euclid_like > 1.0);
    }

    #[test]
    fn different_lengths_are_supported() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 1.5, 2.0, 2.5, 3.0];
        let d = dtw(&a, &b);
        assert!(d.is_finite());
        assert!(d < 0.5);
    }

    #[test]
    fn band_zero_equals_euclidean_for_equal_lengths() {
        let a = [1.0, 2.0, 5.0, 3.0];
        let b = [0.0, 2.0, 4.0, 3.0];
        let banded = Dtw::new().with_band(0).distance(&a, &b);
        // Band 0 forces the diagonal path: sqrt(mean of squared diffs).
        let want = ((1.0 + 0.0 + 1.0 + 0.0) / 4.0f64).sqrt();
        assert!((banded - want).abs() < 1e-12);
    }

    #[test]
    fn band_widens_for_unequal_lengths() {
        let a = [1.0, 2.0];
        let b = [1.0, 1.0, 1.0, 2.0];
        let d = Dtw::new().with_band(0).distance(&a, &b);
        assert!(d.is_finite());
    }

    #[test]
    fn paper_fig4_task_series_values() {
        // Table III task series (tasks indexed 1..4):
        // account 1 performs {1,2,3,4}; account 2 performs {2,3};
        // accounts 4', 4'', 4''' perform {1,3,4}.
        let x1 = [1.0, 2.0, 3.0, 4.0];
        let x2 = [2.0, 3.0];
        let x4 = [1.0, 3.0, 4.0];
        // Sybil accounts have identical task series: distance 0 (Fig. 4a).
        assert_eq!(dtw(&x4, &x4), 0.0);
        // Fig. 4(a) tabulates the raw cumulative cost: DTW(X_1, X_2) = 2
        // and DTW(X_1, X_4') = 1.
        let raw = Dtw::new().raw();
        assert!((raw.distance(&x1, &x2) - 2.0).abs() < 1e-12);
        assert!((raw.distance(&x1, &x4) - 1.0).abs() < 1e-12);
        assert!((raw.distance(&x2, &x4) - 2.0).abs() < 1e-12);
        assert!(dtw(&x1, &x4) < dtw(&x1, &x2));
    }

    fn vals(rng: &mut srtd_runtime::rng::StdRng, len: std::ops::Range<usize>) -> Vec<f64> {
        prop::vec_with(rng, len, |r| r.gen_range(-100f64..100.0))
    }

    #[test]
    fn nonnegative_and_symmetric() {
        prop::check(
            |rng| (vals(rng, 1..30), vals(rng, 1..30)),
            |(a, b)| {
                let ab = dtw(a, b);
                let ba = dtw(b, a);
                prop_assert!(ab >= 0.0);
                prop_assert!((ab - ba).abs() < 1e-9 * ab.max(1.0));
                Ok(())
            },
        );
    }

    #[test]
    fn identity_of_indiscernibles() {
        prop::check(
            |rng| vals(rng, 1..30),
            |a| {
                prop_assert!(dtw(a, a) < 1e-12);
                Ok(())
            },
        );
    }

    #[test]
    fn banded_at_least_unconstrained_raw() {
        prop::check(
            |rng| (vals(rng, 1..25), vals(rng, 1..25), rng.gen_range(0usize..5)),
            |(a, b, w)| {
                let w = *w;
                // In raw cumulative-cost mode a constrained minimum can never
                // beat the unconstrained one. (Under Eq. 7's path-length
                // normalization the inequality can flip — a longer banded path
                // may average lower — so the guarantee is raw-only.)
                let full = Dtw::new().raw().distance(a, b);
                let banded = Dtw::new().raw().with_band(w).distance(a, b);
                prop_assert!(banded + 1e-9 >= full);
                // Normalized banded distances stay well-defined regardless.
                let norm = Dtw::new().with_band(w).distance(a, b);
                prop_assert!(norm.is_finite() && norm >= 0.0);
                Ok(())
            },
        );
    }

    #[test]
    fn bounded_by_max_pointwise_distance() {
        prop::check(
            |rng| (vals(rng, 1..25), vals(rng, 1..25)),
            |(a, b)| {
                let d = dtw(a, b);
                let max_gap = a
                    .iter()
                    .flat_map(|x| b.iter().map(move |y| (x - y).abs()))
                    .fold(0.0, f64::max);
                prop_assert!(d <= max_gap + 1e-9);
                Ok(())
            },
        );
    }

    #[test]
    fn wide_band_matches_unconstrained() {
        prop::check(
            |rng| (vals(rng, 1..20), vals(rng, 1..20)),
            |(a, b)| {
                let full = dtw(a, b);
                let wide = Dtw::new().with_band(50).distance(a, b);
                prop_assert!((full - wide).abs() < 1e-9);
                Ok(())
            },
        );
    }
}
