//! Combining account grouping methods (the paper's stated future work).
//!
//! §IV-C: the three grouping methods are "used independently in the
//! framework. We leave the combination of them for our future work." This
//! module implements the two lattice-natural combinations of partitions:
//!
//! * **join** (union of evidence): two accounts share a group if *any*
//!   constituent method groups them — the transitive closure of the union
//!   of all within-group relations. AG-FP catches Attack-I and AG-TR
//!   catches Attack-II, so their join defends both at once at the cost of
//!   accumulating every method's false positives.
//! * **meet** (intersection of evidence): two accounts share a group only
//!   if *every* method groups them — the intersection of equivalence
//!   classes. False positives must be unanimous to survive, at the cost of
//!   splitting groups any single method misses.

use crate::grouping::{AccountGrouping, Grouping};
use srtd_graph::UnionFind;
use srtd_truth::SensingData;

/// How constituent groupings are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineMode {
    /// Transitive closure of the union of within-group relations.
    Join,
    /// Intersection of equivalence classes.
    Meet,
}

/// A grouping method that combines several others.
///
/// # Examples
///
/// ```
/// use srtd_core::{AccountGrouping, AgTr, AgTs, CombineMode, CombinedGrouping};
/// use srtd_truth::SensingData;
///
/// let combined = CombinedGrouping::new(
///     vec![Box::new(AgTs::default()), Box::new(AgTr::default())],
///     CombineMode::Meet,
/// );
/// let mut data = SensingData::new(2);
/// data.add_report(0, 0, 1.0, 10.0);
/// data.add_report(0, 1, 2.0, 500.0);
/// data.add_report(1, 0, 1.1, 30.0);
/// data.add_report(1, 1, 2.1, 520.0);
/// let grouping = combined.group(&data, &[]);
/// assert_eq!(grouping.num_accounts(), 2);
/// ```
pub struct CombinedGrouping {
    methods: Vec<Box<dyn AccountGrouping + Send + Sync>>,
    mode: CombineMode,
}

impl std::fmt::Debug for CombinedGrouping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CombinedGrouping")
            .field("mode", &self.mode)
            .field(
                "methods",
                &self.methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl CombinedGrouping {
    /// Combines `methods` under `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `methods` is empty.
    pub fn new(methods: Vec<Box<dyn AccountGrouping + Send + Sync>>, mode: CombineMode) -> Self {
        assert!(!methods.is_empty(), "combine at least one grouping method");
        Self { methods, mode }
    }

    /// The combination mode.
    pub fn mode(&self) -> CombineMode {
        self.mode
    }

    /// Merges precomputed groupings under `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `groupings` is empty or they cover different account
    /// counts.
    pub fn combine(groupings: &[Grouping], mode: CombineMode) -> Grouping {
        assert!(!groupings.is_empty(), "combine at least one grouping");
        let n = groupings[0].num_accounts();
        assert!(
            groupings.iter().all(|g| g.num_accounts() == n),
            "groupings must cover the same accounts"
        );
        match mode {
            CombineMode::Join => {
                let mut uf = UnionFind::new(n);
                for g in groupings {
                    for group in g.groups() {
                        for w in group.windows(2) {
                            uf.union(w[0], w[1]);
                        }
                    }
                }
                Grouping::new(uf.into_groups())
            }
            CombineMode::Meet => {
                // Two accounts stay together iff their label tuple matches
                // in every grouping.
                let mut keys: std::collections::HashMap<Vec<usize>, usize> =
                    std::collections::HashMap::new();
                let mut labels = Vec::with_capacity(n);
                for a in 0..n {
                    let key: Vec<usize> = groupings.iter().map(|g| g.group_of(a)).collect();
                    let next = keys.len();
                    labels.push(*keys.entry(key).or_insert(next));
                }
                Grouping::from_labels(&labels)
            }
        }
    }
}

impl AccountGrouping for CombinedGrouping {
    fn group(&self, data: &SensingData, fingerprints: &[Vec<f64>]) -> Grouping {
        let groupings: Vec<Grouping> = self
            .methods
            .iter()
            .map(|m| m.group(data, fingerprints))
            .collect();
        Self::combine(&groupings, self.mode)
    }

    fn name(&self) -> &'static str {
        match self.mode {
            CombineMode::Join => "AG-JOIN",
            CombineMode::Meet => "AG-MEET",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(labels: &[usize]) -> Grouping {
        Grouping::from_labels(labels)
    }

    #[test]
    fn join_takes_transitive_closure() {
        // {0,1},{2,3} joined with {1,2},{0},{3} connects everything.
        let a = g(&[0, 0, 1, 1]);
        let b = g(&[0, 1, 1, 2]);
        let joined = CombinedGrouping::combine(&[a, b], CombineMode::Join);
        assert_eq!(joined.len(), 1);
    }

    #[test]
    fn meet_requires_unanimity() {
        let a = g(&[0, 0, 1, 1]);
        let b = g(&[0, 1, 1, 1]);
        let met = CombinedGrouping::combine(&[a, b], CombineMode::Meet);
        // Pairs kept: (2,3) only — both groupings agree.
        assert_eq!(met.group_of(2), met.group_of(3));
        assert_ne!(met.group_of(0), met.group_of(1));
        assert_eq!(met.len(), 3);
    }

    #[test]
    fn meet_refines_join() {
        let a = g(&[0, 0, 1, 1, 2]);
        let b = g(&[0, 1, 1, 1, 2]);
        let met = CombinedGrouping::combine(&[a.clone(), b.clone()], CombineMode::Meet);
        let joined = CombinedGrouping::combine(&[a, b], CombineMode::Join);
        // Every meet-group is inside one join-group.
        for group in met.groups() {
            let j = joined.group_of(group[0]);
            assert!(group.iter().all(|&x| joined.group_of(x) == j));
        }
        assert!(met.len() >= joined.len());
    }

    #[test]
    fn combining_with_itself_is_identity() {
        let a = g(&[0, 1, 0, 2, 1]);
        for mode in [CombineMode::Join, CombineMode::Meet] {
            let c = CombinedGrouping::combine(&[a.clone(), a.clone()], mode);
            assert_eq!(c.labels(), a.labels(), "{mode:?}");
        }
    }

    #[test]
    fn singleton_inputs_stay_singletons() {
        let a = g(&[0, 1, 2]);
        let b = g(&[0, 1, 2]);
        let c = CombinedGrouping::combine(&[a, b], CombineMode::Join);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn empty_groupings_combine_to_empty() {
        let c = CombinedGrouping::combine(&[g(&[]), g(&[])], CombineMode::Meet);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "same accounts")]
    fn mismatched_sizes_panic() {
        CombinedGrouping::combine(&[g(&[0]), g(&[0, 1])], CombineMode::Join);
    }

    #[test]
    #[should_panic(expected = "at least one grouping")]
    fn empty_input_panics() {
        CombinedGrouping::combine(&[], CombineMode::Join);
    }

    #[test]
    fn end_to_end_join_catches_both_attack_types() {
        use crate::grouping::{AgTr, PerfectGrouping};
        // Accounts 0,1 honest; 2,3 same walk (caught by TR); 4,5 share a
        // "device" (simulate with an oracle standing in for AG-FP).
        let mut d = SensingData::new(3);
        for (acct, start) in [(0usize, 0.0), (1, 9_000.0)] {
            d.add_report(acct, 0, -80.0, start + 10.0);
            d.add_report(acct, 1, -70.0, start + 400.0);
            d.add_report(acct, 2, -75.0, start + 900.0);
        }
        for (acct, off) in [(2usize, 0.0), (3, 40.0)] {
            d.add_report(acct, 0, -50.0, 3_000.0 + off);
            d.add_report(acct, 1, -50.0, 3_500.0 + off);
        }
        // Accounts 4 and 5: different walks (TR cannot catch them)...
        d.add_report(4, 1, -50.0, 15_000.0);
        d.add_report(4, 2, -50.0, 15_600.0);
        d.add_report(5, 0, -50.0, 22_000.0);
        d.add_report(5, 2, -50.0, 23_000.0);
        // ...but a fingerprint oracle (AG-FP stand-in) pairs them.
        let fp_like = PerfectGrouping::new(vec![0, 1, 2, 3, 4, 4]);
        let combined = CombinedGrouping::new(
            vec![Box::new(fp_like), Box::new(AgTr::default())],
            CombineMode::Join,
        );
        let grouping = combined.group(&d, &[]);
        assert_eq!(grouping.group_of(2), grouping.group_of(3), "TR evidence");
        assert_eq!(grouping.group_of(4), grouping.group_of(5), "FP evidence");
        assert_ne!(grouping.group_of(0), grouping.group_of(2));
        assert_ne!(grouping.group_of(0), grouping.group_of(1));
    }
}
