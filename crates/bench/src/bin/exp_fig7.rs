//! Experiment `fig7` — reproduces Fig. 7(a–c): MAE of CRH versus the
//! framework variants (TD-FP / TD-TS / TD-TR) as Sybil-attacker activeness
//! grows, for legitimate activeness 0.2 / 0.5 / 1.0.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_fig7 [seeds]`

use srtd_bench::runners::Method;
use srtd_bench::sweep::seed_average;
use srtd_bench::table::Table;
use srtd_bench::{ATTACKER_ACTIVENESS_GRID, DEFAULT_SEEDS, LEGIT_ACTIVENESS_SETTINGS};
use srtd_sensing::ScenarioConfig;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    println!("Fig. 7 — MAE comparison ({seeds} seeds per cell)\n");
    let base = ScenarioConfig::paper_default();

    // curves[setting][method][alpha index]
    let mut curves: Vec<Vec<Vec<f64>>> = Vec::new();
    for (i, &legit) in LEGIT_ACTIVENESS_SETTINGS.iter().enumerate() {
        println!(
            "({}) legitimate accounts' activeness = {legit}\n",
            ["a", "b", "c"][i]
        );
        let mut header = vec!["attacker activeness".to_string()];
        header.extend(Method::ALL.iter().map(|m| m.name().to_string()));
        let mut t = Table::new(header);
        let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); Method::ALL.len()];
        for &attacker in &ATTACKER_ACTIVENESS_GRID {
            let mut row = vec![format!("{attacker:.1}")];
            for (mi, method) in Method::ALL.iter().enumerate() {
                let err = seed_average(&base, legit, attacker, seeds, |s| method.mae_on(s));
                per_method[mi].push(err);
                row.push(format!("{err:.2}"));
            }
            t.add_row(row);
        }
        println!("{}", t.render());
        curves.push(per_method);
    }

    println!("expected shape (paper): CRH has the largest MAE and grows with");
    println!("attacker activeness; every framework variant sits below CRH;");
    println!("TD-TR is the best overall; all methods improve as legitimate");
    println!("activeness rises.");

    // Shape checks.
    let n_alpha = ATTACKER_ACTIVENESS_GRID.len();
    for (si, per_method) in curves.iter().enumerate() {
        // CRH grows with attacker activeness (endpoints).
        assert!(
            per_method[0][n_alpha - 1] > per_method[0][0],
            "setting {si}: CRH MAE did not grow with attacker activeness"
        );
        // Framework variants below CRH at full attack.
        for mi in 1..Method::ALL.len() {
            assert!(
                per_method[mi][n_alpha - 1] < per_method[0][n_alpha - 1],
                "setting {si}: {} not below CRH",
                Method::ALL[mi].name()
            );
        }
        // TD-TR beats TD-FP at full attack (it handles both attack types).
        assert!(
            per_method[3][n_alpha - 1] < per_method[1][n_alpha - 1],
            "setting {si}: TD-TR not below TD-FP"
        );
    }
    // TD-TR is the best variant on aggregate across the whole grid.
    // (Individual corner cells can flip: e.g. at legit α = 0.2 some tasks
    // are reported only by the attacker, and a TD-TS false positive that
    // merges legitimate data into the Sybil group accidentally helps.)
    let grid_mean = |mi: usize| -> f64 {
        curves
            .iter()
            .flat_map(|per_method| per_method[mi].iter())
            .sum::<f64>()
            / (curves.len() * n_alpha) as f64
    };
    let (fp, ts, tr) = (grid_mean(1), grid_mean(2), grid_mean(3));
    assert!(
        tr < fp && tr < ts,
        "TD-TR not best on aggregate: {tr} vs {fp}/{ts}"
    );
    // MAE shrinks as legitimate activeness rises (full attack, per
    // method). TD-TS is exempt: with every task set identical at α = 1 its
    // affinity signal disappears entirely — the §IV-C caveat that
    // motivates AG-TR.
    for mi in [0usize, 1, 3] {
        let low = curves[0][mi][n_alpha - 1];
        let high = curves[2][mi][n_alpha - 1];
        assert!(
            high <= low + 1.0,
            "{}: MAE should not grow with legit activeness ({low} -> {high})",
            Method::ALL[mi].name()
        );
    }
    println!("\n[shape checks passed]");
}
