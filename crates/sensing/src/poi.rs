//! Points of interest on the synthetic campus.

use srtd_runtime::json::{Json, ToJson};
use srtd_runtime::rng::StdRng;
use srtd_runtime::rng::{Rng, SeedableRng};

/// One point of interest — the location of a sensing task (Fig. 5 of the
/// paper shows 10 of them on a campus map).
#[derive(Debug, Clone, PartialEq)]
pub struct Poi {
    /// Task/POI index.
    pub id: usize,
    /// East–west coordinate in meters.
    pub x: f64,
    /// North–south coordinate in meters.
    pub y: f64,
}

impl Poi {
    /// Euclidean distance to another POI in meters.
    pub fn distance_to(&self, other: &Poi) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A set of POIs with pairwise walking distances.
///
/// # Examples
///
/// ```
/// use srtd_sensing::PoiMap;
///
/// let map = PoiMap::campus(10, 42);
/// assert_eq!(map.len(), 10);
/// assert!(map.distance(0, 1) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoiMap {
    pois: Vec<Poi>,
}

impl PoiMap {
    /// Generates `n` POIs on a jittered grid inside a 400 m × 300 m campus.
    ///
    /// The layout is deterministic in `seed`. Jitter keeps distances
    /// irregular (real campuses are not grids) while the grid keeps POIs
    /// from overlapping.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn campus(n: usize, seed: u64) -> Self {
        assert!(n > 0, "a campaign needs at least one POI");
        let mut rng = StdRng::seed_from_u64(seed);
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let (width, height) = (400.0, 300.0);
        let (dx, dy) = (width / cols as f64, height / rows as f64);
        let pois = (0..n)
            .map(|id| {
                let c = (id % cols) as f64;
                let r = (id / cols) as f64;
                Poi {
                    id,
                    x: (c + 0.5) * dx + rng.gen_range(-0.25..0.25) * dx,
                    y: (r + 0.5) * dy + rng.gen_range(-0.25..0.25) * dy,
                }
            })
            .collect();
        Self { pois }
    }

    /// Builds a map from explicit POIs.
    ///
    /// # Panics
    ///
    /// Panics if `pois` is empty or ids are not `0..n` in order.
    pub fn from_pois(pois: Vec<Poi>) -> Self {
        assert!(!pois.is_empty(), "a campaign needs at least one POI");
        assert!(
            pois.iter().enumerate().all(|(i, p)| p.id == i),
            "POI ids must be 0..n in order"
        );
        Self { pois }
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Returns `true` if the map has no POIs (never the case for
    /// constructed maps).
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// The POI with index `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn poi(&self, id: usize) -> &Poi {
        &self.pois[id]
    }

    /// All POIs.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Walking distance between POIs `a` and `b` in meters.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.pois[a].distance_to(&self.pois[b])
    }
}

impl ToJson for Poi {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("x", self.x.to_json()),
            ("y", self.y.to_json()),
        ])
    }
}

impl ToJson for PoiMap {
    fn to_json(&self) -> Json {
        Json::obj([("pois", self.pois.to_json())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_is_deterministic_and_in_bounds() {
        let a = PoiMap::campus(10, 7);
        let b = PoiMap::campus(10, 7);
        assert_eq!(a, b);
        for p in a.pois() {
            assert!((0.0..=400.0).contains(&p.x));
            assert!((0.0..=300.0).contains(&p.y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(PoiMap::campus(10, 1), PoiMap::campus(10, 2));
    }

    #[test]
    fn pois_do_not_coincide() {
        let map = PoiMap::campus(16, 3);
        for i in 0..map.len() {
            for j in i + 1..map.len() {
                assert!(map.distance(i, j) > 1.0, "POIs {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let map = PoiMap::campus(5, 9);
        for i in 0..5 {
            assert_eq!(map.distance(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(map.distance(i, j), map.distance(j, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one POI")]
    fn empty_campus_panics() {
        PoiMap::campus(0, 1);
    }

    #[test]
    #[should_panic(expected = "ids must be 0..n")]
    fn bad_ids_panic() {
        PoiMap::from_pois(vec![Poi {
            id: 1,
            x: 0.0,
            y: 0.0,
        }]);
    }
}
