//! Fixed-width ASCII tables for experiment output.

/// A simple right-aligned ASCII table builder.
///
/// # Examples
///
/// ```
/// use srtd_bench::table::Table;
///
/// let mut t = Table::new(vec!["method".into(), "MAE".into()]);
/// t.add_row(vec!["CRH".into(), "20.06".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("CRH"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an f64 with `digits` decimals, or `"x"` for `None` — the
/// paper's marker for missing reports.
pub fn cell(value: Option<f64>, digits: usize) -> String {
    match value {
        Some(v) => format!("{v:.digits$}"),
        None => "x".into(),
    }
}

/// Renders a square matrix with row/column labels (the Fig. 3/4 style).
pub fn matrix(labels: &[&str], values: &[Vec<f64>], digits: usize) -> String {
    let mut t = Table::new(
        std::iter::once(String::new())
            .chain(labels.iter().map(|l| l.to_string()))
            .collect(),
    );
    for (i, row) in values.iter().enumerate() {
        t.add_row(
            std::iter::once(labels[i].to_string())
                .chain(row.iter().map(|v| format!("{v:.digits$}")))
                .collect(),
        );
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.add_row(vec!["123".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn cell_marks_missing_values() {
        assert_eq!(cell(None, 2), "x");
        assert_eq!(cell(Some(1.5), 2), "1.50");
    }

    #[test]
    fn matrix_includes_labels() {
        let m = matrix(&["p", "q"], &[vec![0.0, 1.0], vec![1.0, 0.0]], 1);
        assert!(m.contains('p'));
        assert!(m.contains("1.0"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_row_width_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }
}
