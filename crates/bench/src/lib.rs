//! Experiment harness reproducing every table and figure of the paper.
//!
//! Each binary in `src/bin/` regenerates one artifact (see the experiment
//! index in `DESIGN.md`); this library holds the shared plumbing:
//!
//! * [`table`] — fixed-width ASCII tables matching the paper's layout,
//! * [`sweep`] — seed-averaged activeness sweeps (the Fig. 6/7 axes),
//!   parallelized across seeds with runtime scoped threads,
//! * [`runners`] — one-call wrappers running each aggregation method or
//!   grouping method on a scenario and scoring it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runners;
pub mod sweep;
pub mod table;

/// The attacker-activeness grid of Figs. 6 and 7.
pub const ATTACKER_ACTIVENESS_GRID: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// The legitimate-user activeness settings of Figs. 6 and 7 (one subplot
/// each).
pub const LEGIT_ACTIVENESS_SETTINGS: [f64; 3] = [0.2, 0.5, 1.0];

/// Seeds averaged per sweep cell. More seeds, smoother curves.
pub const DEFAULT_SEEDS: u64 = 20;
