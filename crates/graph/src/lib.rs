//! Undirected weighted graphs and connectivity algorithms.
//!
//! The account-grouping methods of the Sybil-resistant truth discovery
//! framework (AG-TS and AG-TR) build an undirected graph whose nodes are
//! accounts and whose edges connect accounts with sufficiently similar
//! behaviour, then take each connected component as one *group* of accounts
//! suspected to belong to the same physical user. This crate provides the
//! graph representation and the connectivity primitives those methods use:
//!
//! * [`Graph`] — an adjacency-list undirected graph with `f64` edge weights,
//! * [`Graph::connected_components`] — iterative depth-first search, as in
//!   step 3 of both grouping methods in the paper,
//! * [`UnionFind`] — a disjoint-set forest used as an independent oracle in
//!   tests and by callers that build components incrementally.
//!
//! # Examples
//!
//! ```
//! use srtd_graph::Graph;
//!
//! let mut g = Graph::new(5);
//! g.add_edge(0, 1, 2.5);
//! g.add_edge(1, 2, 0.5);
//! let comps = g.connected_components();
//! assert_eq!(comps.len(), 3); // {0,1,2}, {3}, {4}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod components;
mod graph;
mod union_find;

pub use components::ComponentLabeling;
pub use graph::{Edge, Graph, Neighbor};
pub use union_find::UnionFind;
