//! The Sybil-resistant truth discovery framework (the paper's
//! contribution, §IV).
//!
//! Plain truth discovery assumes most sources are reliable; a Sybil
//! attacker breaks that assumption by holding the majority of accounts for
//! a task, dragging the weighted aggregate wherever it wants (Table I).
//! This framework restores accuracy by working at *group* granularity:
//!
//! 1. **Account grouping** — partition accounts into groups likely owned by
//!    the same physical user, using one of three methods:
//!    [`AgFp`] (device fingerprints + k-means/elbow, defeats Attack-I),
//!    [`AgTs`] (task-set affinity + connected components, Eq. 6),
//!    [`AgTr`] (task/timestamp trajectory DTW + connected components,
//!    Eqs. 7–8; defeats Attack-II).
//! 2. **Data grouping** — per task, aggregate each group's reports to a
//!    single value (Eq. 3) and seed group weights by relative group size
//!    (Eq. 4).
//! 3. **Group-level truth discovery** — initialize truths by Eq. 5, then
//!    iterate CRH-style weight/truth updates over groups instead of
//!    accounts (Algorithm 2), so a thousand Sybil accounts still count as
//!    one voice.
//!
//! # Examples
//!
//! ```
//! use srtd_core::{AccountGrouping, AgTr, SybilResistantTd};
//! use srtd_truth::SensingData;
//!
//! // Two honest accounts on their own walks, and three Sybil accounts
//! // replaying one walk half a minute apart.
//! let mut data = SensingData::new(3);
//! for (task, value, ts) in [(0, -80.0, 10.0), (1, -70.0, 400.0), (2, -85.0, 800.0)] {
//!     data.add_report(0, task, value, ts);           // honest, morning
//!     data.add_report(1, task, value - 1.0, ts + 7000.0); // honest, later
//! }
//! for (acct, offset) in [(2, 0.0), (3, 32.0), (4, 65.0)] {
//!     data.add_report(acct, 0, -50.0, 100.0 + offset);
//!     data.add_report(acct, 1, -50.0, 700.0 + offset);
//! }
//! let framework = SybilResistantTd::new(AgTr::default());
//! let result = framework.discover(&data, &[]);
//! // The Sybil trio is one group: its -50s count once, honest data wins.
//! assert_eq!(result.grouping.len(), 3);
//! assert!(result.truths[0].unwrap() < -65.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod framework;
pub mod grouping;

pub use aggregate::GroupAggregation;
pub use framework::{FrameworkConfig, FrameworkResult, SybilResistantTd, TruthUpdate};
pub use grouping::{
    AccountGrouping, AgFp, AgTr, AgTs, AgVal, Candidates, CombineMode, CombinedGrouping,
    EdgeGrouping, FpClustering, Grouping, PerfectGrouping, SingletonGrouping,
};
