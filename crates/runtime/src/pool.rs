//! Persistent worker pool behind [`crate::parallel`].
//!
//! Every parallel region in the workspace used to pay a
//! `std::thread::scope` spawn per call — microseconds of kernel work for
//! jobs that often run tens of microseconds. This module keeps a
//! process-wide set of parked workers alive instead: the first dispatch
//! lazily spawns them, later dispatches wake them with a
//! `Mutex`+`Condvar` handshake, and between batches they cost nothing
//! but an idle OS thread.
//!
//! # Determinism
//!
//! The pool executes *chunks that the caller already cut*. Chunk
//! boundaries come from [`crate::parallel`] and depend only on the input
//! length and [`crate::parallel::max_threads`] — never on which pool
//! thread claims which chunk — and every chunk writes into its own
//! output slot, reassembled in chunk order. Outputs are therefore
//! byte-identical to the scoped-thread path and across worker counts;
//! the equivalence suite (`tests/pool_equivalence.rs`) pins this.
//!
//! # The one lifetime erasure
//!
//! Pool workers are `'static` threads, but dispatched jobs borrow the
//! caller's stack (the input slice, the closure, the output slots).
//! [`run`] bridges the two with a single `mem::transmute` of the job
//! reference to `&'static`, sound because of a **completion barrier**:
//! `run` does not return — by panic or otherwise — until every claimed
//! job has finished and the batch has been retired from the shared
//! state, so no worker can observe the erased reference after the
//! caller's frame dies. This is the only unsafe code in the crate
//! (`lib.rs` is `#![deny(unsafe_code)]` with this module's exception).
//!
//! # Nesting and contention
//!
//! One batch is in flight at a time, guarded by a dispatch token.
//! [`try_dispatch`] hands the token to at most one caller; anyone else —
//! including a job that itself calls `parallel_map` — falls back to the
//! scoped path in `parallel.rs`, which composes freely. The dispatching
//! thread is not idle while it waits: it claims and runs chunks like any
//! worker, so a batch of `k` chunks occupies exactly `k` threads.
//!
//! # Telemetry
//!
//! `runtime.pool.{jobs,wakeups,scratch_checkouts,scratch_reuses}` are
//! cumulative atomics surfaced as **gauges**. Which thread wakes, and
//! whether a scratch arena was warm, are wall-clock facts that vary with
//! the worker count — gauges keep them visible in full snapshots while
//! staying out of the deterministic export, exactly like
//! `runtime.parallel.workers`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, TryLockError};

/// Jobs dispatched through the pool since process start.
static JOBS: AtomicU64 = AtomicU64::new(0);
/// Times a parked worker woke up (with or without work to claim).
static WAKEUPS: AtomicU64 = AtomicU64::new(0);
/// Scratch-arena checkouts reported by [`note_scratch`].
static SCRATCH_CHECKOUTS: AtomicU64 = AtomicU64::new(0);
/// Checkouts that found a warm arena (no fresh allocation needed).
static SCRATCH_REUSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative pool telemetry, readable without the obs layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs dispatched through the pool since process start.
    pub jobs: u64,
    /// Parked-worker wakeups.
    pub wakeups: u64,
    /// Scratch-arena checkouts (see [`note_scratch`]).
    pub scratch_checkouts: u64,
    /// Checkouts that reused a warm arena.
    pub scratch_reuses: u64,
}

/// Reads the cumulative pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        jobs: JOBS.load(Ordering::Relaxed),
        wakeups: WAKEUPS.load(Ordering::Relaxed),
        scratch_checkouts: SCRATCH_CHECKOUTS.load(Ordering::Relaxed),
        scratch_reuses: SCRATCH_REUSES.load(Ordering::Relaxed),
    }
}

/// Records one scratch-arena checkout; `reused` says whether the arena
/// was already warm (its buffers held capacity from an earlier job).
///
/// The arenas themselves live with their users (`srtd-signal` keeps
/// per-thread FFT scratch) — the pool only aggregates the hit rate,
/// because arena reuse is the pool's raison d'être: thread-locals only
/// survive across batches when the threads do.
pub fn note_scratch(reused: bool) {
    SCRATCH_CHECKOUTS.fetch_add(1, Ordering::Relaxed);
    if reused {
        SCRATCH_REUSES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Publishes the cumulative pool counters as obs gauges
/// (`runtime.pool.jobs`, `runtime.pool.wakeups`,
/// `runtime.pool.scratch_checkouts`, `runtime.pool.scratch_reuses`).
///
/// Called by `parallel_map` after each pool dispatch; cheap no-op while
/// the obs layer is disabled.
pub fn publish_gauges() {
    let s = stats();
    crate::obs::gauge_set("runtime.pool.jobs", s.jobs as f64);
    crate::obs::gauge_set("runtime.pool.wakeups", s.wakeups as f64);
    crate::obs::gauge_set("runtime.pool.scratch_checkouts", s.scratch_checkouts as f64);
    crate::obs::gauge_set("runtime.pool.scratch_reuses", s.scratch_reuses as f64);
}

/// A batch of `total` indexed jobs being executed by the pool.
struct Batch {
    /// The erased job; see the module docs for the soundness argument.
    task: &'static (dyn Fn(usize) + Sync),
    /// Next unclaimed job index.
    next: usize,
    /// Number of jobs in the batch.
    total: usize,
    /// Claimed-or-unclaimed jobs that have not finished yet.
    unfinished: usize,
    /// First panic payload observed in a job, re-raised by [`run`].
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

/// State shared between the dispatcher and the parked workers.
struct State {
    batch: Option<Batch>,
    spawned: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between batches.
    work: Condvar,
    /// The dispatcher parks here once no unclaimed jobs remain.
    done: Condvar,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(State {
            batch: None,
            spawned: 0,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    })
}

fn dispatch_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Exclusive right to dispatch one batch; released on drop. Only
/// [`try_dispatch`] creates these, so holding one proves no other batch
/// is in flight.
pub struct Dispatch {
    _guard: MutexGuard<'static, ()>,
}

/// Tries to acquire the exclusive dispatch slot. `None` means a batch is
/// already in flight (possibly on this very thread, via a nested
/// `parallel_map` from inside a job) — the caller must use the scoped
/// fallback instead.
pub fn try_dispatch() -> Option<Dispatch> {
    match dispatch_lock().try_lock() {
        Ok(guard) => Some(Dispatch { _guard: guard }),
        Err(TryLockError::WouldBlock) => None,
        Err(TryLockError::Poisoned(_)) => {
            unreachable!("dispatch lock never poisons: no code panics while holding it")
        }
    }
}

/// Claims and runs jobs from the current batch until none are unclaimed.
/// Returns with the lock re-held. Shared by workers and the dispatcher.
fn drain_claims<'a>(shared: &'a Shared, mut guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    loop {
        let Some(batch) = guard.batch.as_mut() else {
            return guard;
        };
        if batch.next >= batch.total {
            return guard;
        }
        let idx = batch.next;
        batch.next += 1;
        let task = batch.task;
        drop(guard);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(idx)));
        guard = shared.state.lock().expect("pool state poisoned");
        let batch = guard
            .batch
            .as_mut()
            .expect("batch retired while jobs were running");
        batch.unfinished -= 1;
        if let Err(payload) = outcome {
            batch.panic.get_or_insert(payload);
        }
        if batch.unfinished == 0 {
            shared.done.notify_all();
        }
    }
}

fn worker_loop() {
    let shared = shared();
    let mut guard = shared.state.lock().expect("pool state poisoned");
    loop {
        guard = drain_claims(shared, guard);
        guard = shared.work.wait(guard).expect("pool state poisoned");
        WAKEUPS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs `job(0..total)` on the pool, blocking until every job finished.
///
/// `total` is the batch size; the pool ensures at least `total - 1`
/// helper workers exist (lazily spawning the difference), wakes them,
/// and has the calling thread claim jobs alongside them, so `total`
/// chunks occupy `total` threads. Panics inside jobs are caught, the
/// rest of the batch still runs, and the first payload is re-raised
/// here after the completion barrier — mirroring the join-based
/// propagation of the scoped path.
///
/// The `_token` parameter forces callers through [`try_dispatch`],
/// which is what makes the lifetime erasure below sound (single batch
/// in flight + completion barrier; see the module docs).
pub fn run(total: usize, job: &(dyn Fn(usize) + Sync), token: Dispatch) {
    if total == 0 {
        return;
    }
    // SAFETY: `run` only returns after the completion barrier below has
    // observed `unfinished == 0` and taken the batch out of the shared
    // state, so no pool thread holds or can re-acquire this reference
    // once the caller's borrow expires. The dispatch token guarantees no
    // second batch can alias the slot meanwhile.
    #[allow(unsafe_code)]
    let task: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(job) };

    JOBS.fetch_add(total as u64, Ordering::Relaxed);
    let shared = shared();
    let mut guard = shared.state.lock().expect("pool state poisoned");
    debug_assert!(guard.batch.is_none(), "dispatch token implies empty slot");
    while guard.spawned + 1 < total {
        let name = format!("srtd-pool-{}", guard.spawned);
        std::thread::Builder::new()
            .name(name)
            .spawn(worker_loop)
            .expect("failed to spawn pool worker");
        guard.spawned += 1;
    }
    guard.batch = Some(Batch {
        task,
        next: 0,
        total,
        unfinished: total,
        panic: None,
    });
    shared.work.notify_all();

    // The dispatcher works too, then parks until the stragglers finish.
    guard = drain_claims(shared, guard);
    while guard
        .batch
        .as_ref()
        .expect("batch present until the dispatcher retires it")
        .unfinished
        > 0
    {
        guard = shared.done.wait(guard).expect("pool state poisoned");
    }
    let batch = guard
        .batch
        .take()
        .expect("batch present until the dispatcher retires it");
    drop(guard);
    drop(token);
    if let Some(payload) = batch.panic {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_job_exactly_once() {
        let token = loop {
            if let Some(t) = try_dispatch() {
                break t;
            }
            std::thread::yield_now();
        };
        let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
        run(
            hits.len(),
            &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
            token,
        );
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn panics_re_raise_after_the_whole_batch_ran() {
        let token = loop {
            if let Some(t) = try_dispatch() {
                break t;
            }
            std::thread::yield_now();
        };
        let ran = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(
                8,
                &|i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    assert!(i != 3, "boom");
                },
                token,
            );
        }));
        assert!(outcome.is_err());
        assert_eq!(
            ran.load(Ordering::Relaxed),
            8,
            "batch must run to completion"
        );
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let token = loop {
            if let Some(t) = try_dispatch() {
                break t;
            }
            std::thread::yield_now();
        };
        run(0, &|_| unreachable!("no jobs to run"), token);
    }

    #[test]
    fn scratch_notes_accumulate() {
        let before = stats();
        note_scratch(false);
        note_scratch(true);
        let after = stats();
        assert!(after.scratch_checkouts >= before.scratch_checkouts + 2);
        assert!(after.scratch_reuses >= before.scratch_reuses + 1);
    }
}
