//! Dense matrices and a cyclic Jacobi eigensolver for symmetric matrices.
//!
//! PCA needs the eigendecomposition of a covariance matrix. Fingerprint
//! feature spaces are small (≤ 80 dimensions), where the cyclic Jacobi
//! method is simple, numerically robust and more than fast enough.

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use srtd_cluster::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == c),
            "rows must have equal lengths"
        );
        Self {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn col_count(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions disagree: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in i + 1..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Eigendecomposition of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as rows, parallel to `values`; each has unit norm.
    pub vectors: Vec<Vec<f64>>,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Sweeps Givens rotations over all off-diagonal entries until they are
/// negligible. Returns eigenvalues sorted descending with matching unit
/// eigenvectors.
///
/// # Panics
///
/// Panics if `m` is not square-symmetric (within `1e-9`).
pub fn jacobi_eigen(m: &Matrix) -> Eigen {
    assert!(
        m.is_symmetric(1e-9),
        "Jacobi eigendecomposition requires a symmetric matrix"
    );
    let n = m.row_count();
    if n == 0 {
        return Eigen {
            values: Vec::new(),
            vectors: Vec::new(),
        };
    }
    let mut a = m.clone();
    let mut v = Matrix::identity(n);
    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += a.get(i, j).abs();
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                // Standard Jacobi rotation angle: 0.5·atan2(2·a_pq, a_pp−a_qq).
                let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
                let (s, c) = phi.sin_cos();
                // Rotate rows/columns p and q of `a`.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp + s * akq);
                    a.set(k, q, -s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk + s * aqk);
                    a.set(q, k, -s * apk + c * aqk);
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp + s * vkq);
                    v.set(k, q, -s * vkp + c * vkq);
                }
            }
        }
    }
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|i| {
            let val = a.get(i, i);
            let vec: Vec<f64> = (0..n).map(|k| v.get(k, i)).collect();
            (val, vec)
        })
        .collect();
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0));
    Eigen {
        values: pairs.iter().map(|p| p.0).collect(),
        vectors: pairs.into_iter().map(|p| p.1).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn identity_and_transpose() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3.transpose(), i3);
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn matmul_with_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let m = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = jacobi_eigen(&m);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&m);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is ±(1,1)/√2.
        let v = &e.vectors[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8);
    }

    #[test]
    fn jacobi_empty_matrix() {
        let e = jacobi_eigen(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn jacobi_rejects_asymmetric() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        jacobi_eigen(&m);
    }

    fn random_symmetric(seed: u64, n: usize) -> Matrix {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let x = next();
                m.set(i, j, x);
                m.set(j, i, x);
            }
        }
        m
    }

    /// A·v = λ·v for every eigenpair of random symmetric matrices.
    #[test]
    fn eigenpairs_satisfy_definition() {
        prop::check(
            |rng| (rng.gen_range(0u64..500), rng.gen_range(1usize..8)),
            |&(seed, n)| {
                let m = random_symmetric(seed, n);
                let e = jacobi_eigen(&m);
                for (lambda, vec) in e.values.iter().zip(&e.vectors) {
                    for i in 0..n {
                        let av: f64 = (0..n).map(|j| m.get(i, j) * vec[j]).sum();
                        prop_assert!((av - lambda * vec[i]).abs() < 1e-7);
                    }
                }
                Ok(())
            },
        );
    }

    /// Eigenvalues sum to the trace, eigenvectors are orthonormal.
    #[test]
    fn trace_and_orthonormality() {
        prop::check(
            |rng| (rng.gen_range(0u64..500), rng.gen_range(1usize..8)),
            |&(seed, n)| {
                let m = random_symmetric(seed, n);
                let e = jacobi_eigen(&m);
                let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
                let sum: f64 = e.values.iter().sum();
                prop_assert!((trace - sum).abs() < 1e-8);
                for i in 0..n {
                    for j in 0..n {
                        let dot: f64 = e.vectors[i]
                            .iter()
                            .zip(&e.vectors[j])
                            .map(|(a, b)| a * b)
                            .sum();
                        let want = if i == j { 1.0 } else { 0.0 };
                        prop_assert!((dot - want).abs() < 1e-7);
                    }
                }
                Ok(())
            },
        );
    }
}
