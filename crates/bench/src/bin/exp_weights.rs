//! Extension experiment: where the weights go — the mechanism behind
//! Table I.
//!
//! §III-C's vulnerability argument is about *weights*: truth discovery
//! "assigns higher weights to the users whose data are closer to the
//! estimated truth", so once a Sybil block drags the estimate, its
//! accounts look reliable and honest users look like outliers. This
//! experiment makes that mechanism visible: the mean CRH weight of Sybil
//! vs. legitimate accounts as attacker activeness grows, next to the
//! framework's group weights.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_weights [seeds]`

use srtd_bench::table::Table;
use srtd_bench::ATTACKER_ACTIVENESS_GRID;
use srtd_core::{AgTr, SybilResistantTd};
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_truth::{Crh, TruthDiscovery};

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("Extension — weight flows under attack ({seeds} seeds, legit activeness 1.0)\n");
    let mut t = Table::new(
        [
            "attacker activeness",
            "CRH w(legit)",
            "CRH w(sybil)",
            "framework w(legit grp)",
            "framework w(sybil grp)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut crh_sybil_curve = Vec::new();
    let mut fw_sybil_curve = Vec::new();
    for &alpha in &ATTACKER_ACTIVENESS_GRID {
        let mut crh_legit = 0.0;
        let mut crh_sybil = 0.0;
        let mut fw_legit = 0.0;
        let mut fw_sybil = 0.0;
        for seed in 0..seeds {
            let s = Scenario::generate(
                &ScenarioConfig::paper_default()
                    .with_seed(seed)
                    .with_activeness(1.0, alpha),
            );
            let crh = Crh::default().discover(&s.data);
            crh_legit += mean(
                (0..s.num_accounts())
                    .filter(|&a| !s.is_sybil[a])
                    .map(|a| crh.weights[a]),
            );
            crh_sybil += mean(
                (0..s.num_accounts())
                    .filter(|&a| s.is_sybil[a])
                    .map(|a| crh.weights[a]),
            );
            let fw = SybilResistantTd::new(AgTr::default()).discover(&s.data, &s.fingerprints);
            // A group is "sybil" if any member is (grouping is near-exact
            // at these settings).
            let sybil_group: Vec<bool> = fw
                .grouping
                .groups()
                .iter()
                .map(|g| g.iter().any(|&a| s.is_sybil[a]))
                .collect();
            fw_legit += mean(
                fw.group_weights
                    .iter()
                    .zip(&sybil_group)
                    .filter(|(_, &sy)| !sy)
                    .map(|(&w, _)| w),
            );
            fw_sybil += mean(
                fw.group_weights
                    .iter()
                    .zip(&sybil_group)
                    .filter(|(_, &sy)| sy)
                    .map(|(&w, _)| w),
            );
        }
        let n = seeds as f64;
        crh_sybil_curve.push((crh_sybil / n, crh_legit / n));
        fw_sybil_curve.push((fw_sybil / n, fw_legit / n));
        t.add_row(vec![
            format!("{alpha:.1}"),
            format!("{:.2}", crh_legit / n),
            format!("{:.2}", crh_sybil / n),
            format!("{:.2}", fw_legit / n),
            format!("{:.2}", fw_sybil / n),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: under CRH, Sybil accounts *gain* weight as their");
    println!("activeness grows — they drag the estimate, then look reliable");
    println!("against it (the §III-C mechanism). In the framework the Sybil");
    println!("groups' weights stay pinned low: their single aggregated voice");
    println!("sits far from the group-level consensus at every activeness.");

    let (sybil_hi, legit_hi) = *crh_sybil_curve.last().expect("rows");
    assert!(
        sybil_hi > legit_hi,
        "at full attack CRH should trust Sybil accounts more: {sybil_hi} vs {legit_hi}"
    );
    for &(sybil_w, legit_w) in &fw_sybil_curve {
        assert!(
            sybil_w < legit_w,
            "framework should always down-weight Sybil groups: {sybil_w} vs {legit_w}"
        );
    }
    println!("\n[shape checks passed]");
}
