//! AG-TS: account grouping by accomplished task set (Eq. 6).

use crate::grouping::{blocking, AccountGrouping, Candidates, EdgeGrouping, Grouping};
use srtd_graph::UnionFind;
use srtd_truth::SensingData;

/// Ceiling for the dense matrix APIs ([`AgTs::affinity_matrix`],
/// [`AgTs::task_overlap_matrices`]): they exist for the worked-example
/// reproduction and ablations, and an n×n `Vec<Vec<f64>>` at campaign
/// scale would be an allocation bug, not a computation. Grouping itself
/// goes through the sparse [`AgTs::affinity_edges`] path and has no such
/// limit.
const MAX_DENSE_ACCOUNTS: usize = 4096;

/// Account grouping by task-set affinity.
///
/// For each account pair, let `T_ij` be the number of tasks both
/// accomplished and `L_ij` the number of tasks exactly one of them
/// accomplished (their symmetric difference). The affinity is Eq. 6:
///
/// ```text
/// A_ij = (T_ij − 2·L_ij) · (T_ij + L_ij) / m
/// ```
///
/// Pairs with `A_ij > ρ` are connected; each connected component becomes a
/// group (accounts from one Sybil attacker share their task set almost
/// exactly, so they score high mutual affinity).
///
/// The paper notes AG-TS suits campaigns where accounts have *diverse*
/// task sets; when most accounts perform similar tasks, use
/// [`crate::AgTr`].
///
/// # Examples
///
/// ```
/// use srtd_core::{AccountGrouping, AgTs};
/// use srtd_truth::SensingData;
///
/// let mut data = SensingData::new(4);
/// // Accounts 0 and 1 share all four tasks; account 2 did other work.
/// for t in 0..4 {
///     data.add_report(0, t, 1.0, t as f64);
///     data.add_report(1, t, 1.0, t as f64 + 30.0);
/// }
/// data.add_report(2, 0, 1.0, 500.0);
/// data.add_report(2, 1, 1.0, 600.0);
/// let grouping = AgTs::default().group(&data, &[]);
/// assert_eq!(grouping.group_of(0), grouping.group_of(1));
/// assert_ne!(grouping.group_of(0), grouping.group_of(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgTs {
    rho: f64,
    blocking: bool,
}

impl Default for AgTs {
    /// The paper's worked example uses `ρ = 1`.
    fn default() -> Self {
        Self {
            rho: 1.0,
            blocking: true,
        }
    }
}

impl AgTs {
    /// Creates AG-TS with affinity threshold `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not finite.
    pub fn new(rho: f64) -> Self {
        assert!(rho.is_finite(), "threshold must be finite");
        Self {
            rho,
            blocking: true,
        }
    }

    /// Enables or disables prefix-filter blocking (default on). The
    /// exhaustive path visits all `n(n−1)/2` pairs — useful as the oracle
    /// in equivalence tests; both paths produce identical groupings.
    pub fn with_blocking(mut self, blocking: bool) -> Self {
        self.blocking = blocking;
        self
    }

    /// The affinity threshold ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The sparse decision-edge list: pairs `(i, j, A_ij)` with `i < j`
    /// and `A_ij > ρ`, in lexicographic order. This is what
    /// [`AccountGrouping::group`] connects — the dense
    /// [`AgTs::affinity_matrix`] is never materialized on this path.
    ///
    /// With blocking on and `ρ ≥ 0`, candidate pairs come from the prefix
    /// filter in [`blocking::ts_candidates`] (provably a superset of every
    /// above-threshold pair, see its proof). A negative `ρ` can admit
    /// pairs with arbitrarily little overlap, which no overlap-based
    /// blocking can bound, so that case falls back to the exhaustive scan.
    pub fn affinity_edges(&self, data: &SensingData) -> Vec<(usize, usize, f64)> {
        self.affinity_edges_masked(data, None)
    }

    /// [`AgTs::affinity_edges`] restricted to pairs touching a dirty
    /// account (the incremental re-grouping path); `None` means all pairs.
    pub fn affinity_edges_masked(
        &self,
        data: &SensingData,
        dirty: Option<&[bool]>,
    ) -> Vec<(usize, usize, f64)> {
        let n = data.num_accounts();
        let m = data.num_tasks().max(1) as f64;
        let task_sets: Vec<Vec<usize>> = (0..n).map(|a| data.tasks_of(a)).collect();
        let candidates = if self.blocking && self.rho >= 0.0 {
            blocking::ts_candidates(&task_sets, data.num_tasks(), dirty)
        } else {
            Candidates::exhaustive(n, dirty)
        };
        candidates.record("ag_ts");
        candidates
            .pairs
            .iter()
            .filter_map(|&(i, j)| {
                let a = affinity(&task_sets[i], &task_sets[j], m);
                (a > self.rho).then_some((i, j, a))
            })
            .collect()
    }

    /// The pairwise task-overlap matrices of Fig. 3(a)/(b): `T_ij` (tasks
    /// both accomplished) and `L_ij` (tasks exactly one accomplished).
    /// Diagonals are 0.
    pub fn task_overlap_matrices(&self, data: &SensingData) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let n = data.num_accounts();
        assert!(
            n <= MAX_DENSE_ACCOUNTS,
            "dense overlap matrices are capped at {MAX_DENSE_ACCOUNTS} accounts \
             (got {n}); use affinity_edges at scale"
        );
        let task_sets: Vec<Vec<usize>> = (0..n).map(|a| data.tasks_of(a)).collect();
        let mut together = vec![vec![0usize; n]; n];
        let mut alone = vec![vec![0usize; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let t = task_sets[i]
                    .iter()
                    .filter(|x| task_sets[j].binary_search(x).is_ok())
                    .count();
                let l = (task_sets[i].len() - t) + (task_sets[j].len() - t);
                together[i][j] = t;
                together[j][i] = t;
                alone[i][j] = l;
                alone[j][i] = l;
            }
        }
        (together, alone)
    }

    /// The full pairwise affinity matrix (Fig. 3(c)); diagonal is 0.
    ///
    /// Exposed for the worked-example reproduction and for threshold
    /// ablations.
    pub fn affinity_matrix(&self, data: &SensingData) -> Vec<Vec<f64>> {
        let n = data.num_accounts();
        assert!(
            n <= MAX_DENSE_ACCOUNTS,
            "the dense affinity matrix is capped at {MAX_DENSE_ACCOUNTS} accounts \
             (got {n}); use affinity_edges at scale"
        );
        let m = data.num_tasks().max(1) as f64;
        let task_sets: Vec<Vec<usize>> = (0..n).map(|a| data.tasks_of(a)).collect();
        let mut matrix = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let a = affinity(&task_sets[i], &task_sets[j], m);
                matrix[i][j] = a;
                matrix[j][i] = a;
            }
        }
        matrix
    }
}

/// Eq. 6 for two sorted task lists.
fn affinity(a: &[usize], b: &[usize], m: f64) -> f64 {
    let mut together = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                together += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    let alone = (a.len() - together) + (b.len() - together);
    let (t, l) = (together as f64, alone as f64);
    (t - 2.0 * l) * (t + l) / m
}

impl AccountGrouping for AgTs {
    fn group(&self, data: &SensingData, _fingerprints: &[Vec<f64>]) -> Grouping {
        let n = data.num_accounts();
        if n == 0 {
            return Grouping::from_labels(&[]);
        }
        let _span = srtd_runtime::obs::span("ag_ts.group");
        let edges = self.affinity_edges(data);
        let mut uf = UnionFind::new(n);
        for &(i, j, _) in &edges {
            uf.union(i, j);
        }
        srtd_runtime::obs::counter_add("ag_ts.edges", edges.len() as u64);
        Grouping::new(uf.into_groups())
    }

    fn name(&self) -> &'static str {
        "AG-TS"
    }
}

impl EdgeGrouping for AgTs {
    fn decision_edges(&self, data: &SensingData, dirty: Option<&[bool]>) -> Vec<(usize, usize)> {
        self.affinity_edges_masked(data, dirty)
            .into_iter()
            .map(|(i, j, _)| (i, j))
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The Table III example: account indices 0..6 are the paper's
    /// 1, 2, 3, 4', 4'', 4'''.
    pub(super) fn table_iii_data_for_overlap() -> SensingData {
        table_iii_data()
    }

    fn table_iii_data() -> SensingData {
        let mut d = SensingData::new(4);
        let ts = |h: f64, m: f64, s: f64| h * 3600.0 + m * 60.0 + s;
        // Account 1: T1..T4.
        d.add_report(0, 0, -84.48, ts(10.0, 0.0, 35.0));
        d.add_report(0, 1, -82.11, ts(10.0, 2.0, 42.0));
        d.add_report(0, 2, -75.16, ts(10.0, 10.0, 22.0));
        d.add_report(0, 3, -72.71, ts(10.0, 13.0, 41.0));
        // Account 2: T2, T3.
        d.add_report(1, 1, -72.27, ts(10.0, 4.0, 15.0));
        d.add_report(1, 2, -77.21, ts(10.0, 6.0, 1.0));
        // Account 3: T1, T2, T4.
        d.add_report(2, 0, -72.41, ts(10.0, 1.0, 21.0));
        d.add_report(2, 1, -91.49, ts(10.0, 4.0, 5.0));
        d.add_report(2, 3, -73.55, ts(10.0, 8.0, 28.0));
        // Sybil accounts 4', 4'', 4''': T1, T3, T4.
        d.add_report(3, 0, -50.0, ts(10.0, 1.0, 10.0));
        d.add_report(3, 2, -50.0, ts(10.0, 15.0, 24.0));
        d.add_report(3, 3, -50.0, ts(10.0, 20.0, 6.0));
        d.add_report(4, 0, -50.0, ts(10.0, 1.0, 34.0));
        d.add_report(4, 2, -50.0, ts(10.0, 16.0, 8.0));
        d.add_report(4, 3, -50.0, ts(10.0, 21.0, 25.0));
        d.add_report(5, 0, -50.0, ts(10.0, 2.0, 35.0));
        d.add_report(5, 2, -50.0, ts(10.0, 17.0, 35.0));
        d.add_report(5, 3, -50.0, ts(10.0, 22.0, 2.0));
        d
    }

    #[test]
    fn affinity_matrix_matches_hand_computation() {
        let d = table_iii_data();
        let m = AgTs::default().affinity_matrix(&d);
        // Sybil pair (4', 4''): identical sets of 3 tasks over m = 4:
        // (3 − 0)(3 + 0)/4 = 2.25.
        assert!((m[3][4] - 2.25).abs() < 1e-12);
        // (1, 4'): T = 3, L = 1: (3 − 2)(3 + 1)/4 = 1.0.
        assert!((m[0][3] - 1.0).abs() < 1e-12);
        // (1, 2): T = 2, L = 2: (2 − 4)(2 + 2)/4 = −2.0.
        assert!((m[0][1] + 2.0).abs() < 1e-12);
        // Symmetry, zero diagonal.
        assert_eq!(m[2][5], m[5][2]);
        assert_eq!(m[1][1], 0.0);
    }

    #[test]
    fn table_iii_grouping_captures_the_sybil_component() {
        // With literal Eq. 6 and ρ = 1, the three Sybil accounts form one
        // group (pairwise affinity 2.25 > 1) and, unlike the paper's
        // figure (whose matrix values imply a different normalization),
        // account 1 stays out because A(1, 4') = 1.0 is not > ρ.
        let g = AgTs::default().group(&table_iii_data(), &[]);
        assert_eq!(g.group_of(3), g.group_of(4));
        assert_eq!(g.group_of(4), g.group_of(5));
        assert_ne!(g.group_of(0), g.group_of(3));
        assert_ne!(g.group_of(1), g.group_of(2));
        assert_eq!(g.len(), 4); // {4',4'',4'''}, {1}, {2}, {3}
    }

    #[test]
    fn lower_threshold_recreates_the_papers_false_positive() {
        // At ρ = 0.9 the A(1, 4') = 1.0 edge appears and account 1 merges
        // with the Sybil group — the false positive Fig. 3(d) shows. The
        // A(1, 3) = 1.0 edge then pulls account 3 in as well.
        let g = AgTs::new(0.9).group(&table_iii_data(), &[]);
        assert_eq!(g.group_of(0), g.group_of(3));
        assert_eq!(g.group_of(0), g.group_of(2));
        assert_ne!(g.group_of(0), g.group_of(1));
        assert_eq!(g.len(), 2); // {1,3,4',4'',4'''}, {2}
    }

    #[test]
    fn disjoint_task_sets_have_negative_affinity() {
        let mut d = SensingData::new(4);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(0, 1, 1.0, 1.0);
        d.add_report(1, 2, 1.0, 2.0);
        d.add_report(1, 3, 1.0, 3.0);
        let m = AgTs::default().affinity_matrix(&d);
        assert!(m[0][1] < 0.0);
        let g = AgTs::default().group(&d, &[]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn empty_data_yields_empty_grouping() {
        let g = AgTs::default().group(&SensingData::new(3), &[]);
        assert!(g.is_empty());
    }

    #[test]
    fn blocked_edges_match_the_dense_matrix() {
        let d = table_iii_data();
        for rho in [1.0, 0.9, 0.0, -2.0] {
            let ag = AgTs::new(rho);
            let matrix = ag.affinity_matrix(&d);
            let mut expected = Vec::new();
            for i in 0..6 {
                for j in i + 1..6 {
                    if matrix[i][j] > rho {
                        expected.push((i, j, matrix[i][j]));
                    }
                }
            }
            assert_eq!(ag.affinity_edges(&d), expected, "rho = {rho}");
            assert_eq!(
                ag.group(&d, &[]),
                ag.with_blocking(false).group(&d, &[]),
                "rho = {rho}"
            );
        }
    }

    #[test]
    fn masked_edges_only_touch_dirty_accounts() {
        let d = table_iii_data();
        let ag = AgTs::default();
        // Only the last Sybil account is dirty: of the three Sybil edges,
        // exactly the two touching account 5 remain.
        let mask = [false, false, false, false, false, true];
        let edges = ag.affinity_edges_masked(&d, Some(&mask));
        let pairs: Vec<(usize, usize)> = edges.iter().map(|&(i, j, _)| (i, j)).collect();
        assert_eq!(pairs, vec![(3, 5), (4, 5)]);
    }

    #[test]
    fn accounts_without_reports_stay_singletons() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(2, 0, 1.0, 5.0);
        d.add_report(2, 1, 1.0, 9.0);
        // Account 1 never reported.
        let g = AgTs::default().group(&d, &[]);
        assert_eq!(g.num_accounts(), 3);
        let solo = g.group_of(1);
        assert_eq!(g.groups()[solo], vec![1]);
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::tests::table_iii_data_for_overlap;
    use super::*;

    #[test]
    fn overlap_matrices_match_fig3a_and_fig3b() {
        let d = table_iii_data_for_overlap();
        let (t, l) = AgTs::default().task_overlap_matrices(&d);
        // Fig. 3(a): T(1,2) = 2, T(1,3) = 3, T(1,4') = 3, T(2,4') = 1.
        assert_eq!(t[0][1], 2);
        assert_eq!(t[0][2], 3);
        assert_eq!(t[0][3], 3);
        assert_eq!(t[1][3], 1);
        // Fig. 3(b): L(1,2) = 2, L(1,4') = 1, L(4',4'') = 0.
        assert_eq!(l[0][1], 2);
        assert_eq!(l[0][3], 1);
        assert_eq!(l[3][4], 0);
        // Symmetry and zero diagonal.
        assert_eq!(t[2][5], t[5][2]);
        assert_eq!(t[0][0], 0);
        assert_eq!(l[0][0], 0);
    }
}
