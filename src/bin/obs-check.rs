//! `obs-check` — validates an `SRTD_OBS_JSON` export.
//!
//! Reads the file named by its single argument, parses it with the
//! runtime's strict JSON parser and asserts the shape a
//! [`sybil_td::runtime::obs::Report`] export promises: a top-level object
//! with `counters`, `gauges`, `histograms`, `spans` and `events` keys.
//! Exits non-zero (with a message on stderr) on any violation, so
//! `scripts/verify.sh` can use it as an offline smoke check.

use std::process::ExitCode;
use sybil_td::runtime::json::{parse, Json};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let mut args = std::env::args().skip(1);
    let path = args.next().ok_or("usage: obs-check <report.json>")?;
    if args.next().is_some() {
        return Err("usage: obs-check <report.json>".into());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let tree = parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    let Json::Obj(fields) = tree else {
        return Err(format!("{path}: top level is not an object"));
    };
    for key in ["counters", "gauges", "histograms", "spans", "events"] {
        if !fields.iter().any(|(k, _)| k == key) {
            return Err(format!("{path}: missing `{key}` section"));
        }
    }
    let count_of = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| match v {
                Json::Obj(entries) => entries.len(),
                Json::Arr(entries) => entries.len(),
                _ => 0,
            })
            .unwrap_or(0)
    };
    Ok(format!(
        "ok: {path} ({} counters, {} histograms, {} spans, {} events)",
        count_of("counters"),
        count_of("histograms"),
        count_of("spans"),
        count_of("events"),
    ))
}
