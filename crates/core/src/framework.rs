//! Algorithm 2: the Sybil-resistant truth discovery framework.

use crate::aggregate::{initial_group_weight, GroupAggregation};
use crate::grouping::{AccountGrouping, Grouping};
use srtd_runtime::json::ToJson;
use srtd_runtime::obs;
use srtd_runtime::parallel::{parallel_map_min, parallel_reduce};
use srtd_truth::{max_abs_delta, ConvergenceCriterion, SensingData};

/// Task count below which the per-iteration work runs on the plain
/// sequential fast path. Paper-scale campaigns (tens of tasks) never pay
/// thread-spawn or chunk bookkeeping; the `exp_large_scale` regime
/// (hundreds of tasks and groups) takes the parallel path.
///
/// The gate depends only on the campaign (task count), never on the
/// worker count, so output stays byte-identical across thread counts.
const PARALLEL_MIN_TASKS: usize = 64;

/// Fixed chunk length of the deterministic parallel loss reduction.
/// Chunk boundaries derive from the task count alone, which is what keeps
/// the floating-point merge order — and therefore every output bit —
/// independent of how many workers execute the chunks.
const LOSS_CHUNK_TASKS: usize = 64;

/// The per-task group aggregates, flattened into one CSR-style arena:
/// `entries[offsets[j]..offsets[j+1]]` holds task `j`'s
/// `(group, aggregated value, Eq. 4 seed weight)` triples in ascending
/// group order. One allocation for the whole campaign instead of one
/// `Vec` per task.
struct PerTaskArena {
    offsets: Vec<usize>,
    entries: Vec<(usize, f64, f64)>,
}

impl PerTaskArena {
    fn entries(&self, task: usize) -> &[(usize, f64, f64)] {
        &self.entries[self.offsets[task]..self.offsets[task + 1]]
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One truth estimate from a task's group aggregates (Eq. 5 with the
/// configured update rule).
fn estimate_truth<F>(
    update: TruthUpdate,
    entries: &[(usize, f64, f64)],
    weight_of: F,
) -> Option<f64>
where
    F: Fn(usize, f64) -> f64,
{
    match update {
        TruthUpdate::WeightedMean => {
            weighted_truth(entries.iter().map(|&(k, v, seed)| (v, weight_of(k, seed))))
        }
        TruthUpdate::WeightedMedian => {
            let mut pairs: Vec<(f64, f64)> = entries
                .iter()
                .map(|&(k, v, seed)| (v, weight_of(k, seed)))
                .collect();
            srtd_truth::weighted_median(&mut pairs)
        }
    }
}

/// How the iterative stage updates truths from group aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TruthUpdate {
    /// Algorithm 2's weighted mean over group aggregates (the default).
    #[default]
    WeightedMean,
    /// Weighted median over group aggregates — a robust extension layered
    /// on top of grouping: even if one merged group still carries an
    /// attacker majority *inside* it, the cross-group median resists a
    /// minority of poisoned group aggregates.
    WeightedMedian,
}

/// Configuration of the group-level truth discovery stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameworkConfig {
    /// How each group's reports collapse to one value per task (Eq. 3).
    pub aggregation: GroupAggregation,
    /// How truths are re-estimated from group aggregates each iteration.
    pub truth_update: TruthUpdate,
    /// Convergence control of the iterative stage.
    pub convergence: ConvergenceCriterion,
}

/// The Sybil-resistant truth discovery framework (Algorithm 2),
/// parameterized by an account grouping method.
///
/// See the [crate docs](crate) for the pipeline; construct with one of
/// [`crate::AgFp`], [`crate::AgTs`], [`crate::AgTr`] (the paper's TD-FP /
/// TD-TS / TD-TR variants) or [`crate::PerfectGrouping`] for the oracle
/// ceiling.
#[derive(Debug, Clone)]
pub struct SybilResistantTd<G> {
    grouping: G,
    config: FrameworkConfig,
}

/// Output of the framework.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkResult {
    /// Estimated truth per task; `None` for unreported tasks.
    pub truths: Vec<Option<f64>>,
    /// The account grouping the framework worked with.
    pub grouping: Grouping,
    /// Final per-group weights (parallel to `grouping.groups()`).
    pub group_weights: Vec<f64>,
    /// Iterations of the weight/truth loop.
    pub iterations: usize,
    /// Whether the convergence criterion fired before the cap.
    pub converged: bool,
    /// Largest per-task truth change after each iteration — one entry per
    /// iteration of the weight/truth loop, so `convergence_trace.len() ==
    /// iterations`. Lets callers inspect how Algorithm 2 converged without
    /// re-running it.
    pub convergence_trace: Vec<f64>,
    /// Whether the run was seeded from a previous epoch's group weights
    /// (see [`SybilResistantTd::discover_warm`]) rather than Eq. 4's
    /// size-only prior.
    pub warm_started: bool,
}

impl FrameworkResult {
    /// Truths with `default` substituted for unreported tasks.
    pub fn truths_or(&self, default: f64) -> Vec<f64> {
        self.truths.iter().map(|t| t.unwrap_or(default)).collect()
    }
}

impl<G: AccountGrouping> SybilResistantTd<G> {
    /// Creates the framework with default configuration (mean aggregation,
    /// weighted-mean updates, 1000-iteration cap, 1e-6 tolerance).
    pub fn new(grouping: G) -> Self {
        Self {
            grouping,
            config: FrameworkConfig::default(),
        }
    }

    /// Creates the framework with an explicit configuration.
    pub fn with_config(grouping: G, config: FrameworkConfig) -> Self {
        Self { grouping, config }
    }

    /// The grouping method in use.
    pub fn grouping_method(&self) -> &G {
        &self.grouping
    }

    /// A display name of the framework variant: `"TD-"` plus the grouping
    /// method's suffix (TD-FP, TD-TS, TD-TR as in §V-C).
    pub fn variant_name(&self) -> String {
        match self.grouping.name() {
            name if name.starts_with("AG-") => format!("TD-{}", &name[3..]),
            other => format!("TD({other})"),
        }
    }

    /// Runs Algorithm 2 on a campaign.
    ///
    /// `fingerprints` carries one feature vector per account for
    /// fingerprint-based grouping methods; pass `&[]` for methods that do
    /// not use them.
    ///
    /// # Panics
    ///
    /// Panics if the grouping method requires fingerprints that are
    /// missing (see the method's own documentation).
    pub fn discover(&self, data: &SensingData, fingerprints: &[Vec<f64>]) -> FrameworkResult {
        self.discover_warm(data, fingerprints, None)
    }

    /// Runs Algorithm 2 with an optional warm start: when `warm_weights`
    /// carries the previous epoch's group weights (one finite, non-negative
    /// entry per group of the fresh grouping), the truth initialization of
    /// line 7 uses them instead of Eq. 4's size-only seeds. On unchanged
    /// data this reproduces the previous epoch's truths bitwise (the same
    /// Eq. 5 arithmetic the previous run ended on), so the loop resumes
    /// exactly where the cold trajectory left off and steady-state epochs
    /// converge in one iteration instead of ~5 — the one warm iteration
    /// computes bit-for-bit what the cold run's next iteration would have.
    ///
    /// A seed that no longer fits — wrong length (the grouping changed),
    /// non-finite or negative entries — is ignored and the run falls back
    /// to the cold path; `FrameworkResult::warm_started` records which path
    /// ran.
    pub fn discover_warm(
        &self,
        data: &SensingData,
        fingerprints: &[Vec<f64>],
        warm_weights: Option<&[f64]>,
    ) -> FrameworkResult {
        let _span = obs::span("framework.discover");
        // Line 1: account grouping.
        let grouping = {
            let _span = obs::span("framework.grouping");
            self.grouping.group(data, fingerprints)
        };
        self.discover_with_grouping_seeded(data, grouping, warm_weights)
    }

    /// Runs the data-grouping and truth-estimation stages on a precomputed
    /// grouping (lines 2–16 of Algorithm 2). Useful for ablations that
    /// reuse one grouping across configurations.
    ///
    /// # Panics
    ///
    /// Panics if `grouping` does not cover exactly the accounts of `data`.
    pub fn discover_with_grouping(
        &self,
        data: &SensingData,
        grouping: Grouping,
    ) -> FrameworkResult {
        self.discover_with_grouping_seeded(data, grouping, None)
    }

    /// [`Self::discover_with_grouping`] with the warm-start seeding of
    /// [`Self::discover_warm`].
    ///
    /// # Panics
    ///
    /// Panics if `grouping` does not cover exactly the accounts of `data`.
    pub fn discover_with_grouping_seeded(
        &self,
        data: &SensingData,
        grouping: Grouping,
        warm_weights: Option<&[f64]>,
    ) -> FrameworkResult {
        assert_eq!(
            grouping.num_accounts(),
            data.num_accounts(),
            "grouping must cover every account"
        );
        let m = data.num_tasks();
        let l = grouping.len();
        let task_ids: Vec<usize> = (0..m).collect();

        // Lines 2–6: per task, aggregate each group's data (Eq. 3) and
        // compute the size-based seed weight (Eq. 4). Each task gathers
        // its (group, value) pairs from the CSR index, stable-sorts by
        // group (preserving report order inside a group) and scans the
        // runs — O(u log u) per task instead of one bucket `Vec` per
        // group per task. The per-task vectors are flattened into one
        // arena below.
        let reports = data.reports();
        let aggregation = self.config.aggregation;
        let build_task = |&j: &usize| -> Vec<(usize, f64, f64)> {
            let indices = data.task_report_indices(j);
            if indices.is_empty() {
                return Vec::new();
            }
            let reporters = indices.len();
            let mut pairs: Vec<(usize, f64)> = indices
                .iter()
                .map(|&i| {
                    let r = &reports[i];
                    (grouping.group_of(r.account), r.value)
                })
                .collect();
            pairs.sort_by_key(|&(g, _)| g);
            let mut entries = Vec::new();
            let mut vals: Vec<f64> = Vec::new();
            let mut i = 0;
            while i < pairs.len() {
                let group = pairs[i].0;
                vals.clear();
                while i < pairs.len() && pairs[i].0 == group {
                    vals.push(pairs[i].1);
                    i += 1;
                }
                entries.push((
                    group,
                    aggregation.aggregate(&vals),
                    initial_group_weight(vals.len(), reporters),
                ));
            }
            entries
        };
        let per_task = {
            let _span = obs::span("framework.per_task_build");
            let built = parallel_map_min(&task_ids, PARALLEL_MIN_TASKS, build_task);
            let mut offsets = Vec::with_capacity(m + 1);
            offsets.push(0);
            let mut entries = Vec::with_capacity(built.iter().map(Vec::len).sum());
            for task_entries in &built {
                entries.extend_from_slice(task_entries);
                offsets.push(entries.len());
            }
            PerTaskArena { offsets, entries }
        };

        let update = self.config.truth_update;

        // A warm seed is only trusted when it still fits this epoch's
        // grouping: one weight per group, every entry finite and
        // non-negative. Anything else (the group count changed, a NaN crept
        // in) silently falls back to the cold path.
        let warm =
            warm_weights.filter(|w| w.len() == l && w.iter().all(|x| x.is_finite() && *x >= 0.0));
        let warm_started = warm.is_some();

        // Line 7: initialize truths by Eq. 5 — from the previous epoch's
        // group weights when warm-starting, from the Eq. 4 seed weights
        // otherwise.
        let mut truths: Vec<Option<f64>> = match warm {
            Some(w) => parallel_map_min(&task_ids, PARALLEL_MIN_TASKS, |&j| {
                estimate_truth(update, per_task.entries(j), |k, _| w[k])
            }),
            None => parallel_map_min(&task_ids, PARALLEL_MIN_TASKS, |&j| {
                estimate_truth(update, per_task.entries(j), |_, seed| seed)
            }),
        };

        if per_task.is_empty() || l == 0 {
            return FrameworkResult {
                truths,
                grouping,
                group_weights: vec![0.0; l],
                iterations: 0,
                converged: true,
                convergence_trace: Vec::new(),
                warm_started,
            };
        }
        if warm_started {
            obs::counter_add("framework.warm_starts", 1);
        }

        // Per-task normalization scale: std of the group aggregates.
        let scales: Vec<f64> = parallel_map_min(&task_ids, PARALLEL_MIN_TASKS, |&j| {
            let entries = per_task.entries(j);
            if entries.len() < 2 {
                return 1.0;
            }
            let mean = entries.iter().map(|&(_, v, _)| v).sum::<f64>() / entries.len() as f64;
            let var = entries
                .iter()
                .map(|&(_, v, _)| (v - mean) * (v - mean))
                .sum::<f64>()
                / entries.len() as f64;
            var.sqrt().max(1e-9)
        });

        // Lines 8–15: iterate group weight estimation (CRH-style W over
        // the distances of group aggregates to current truths) and truth
        // estimation.
        let _loop_span = obs::span("framework.td_loop");
        // `effective()` repairs field-constructed criteria (zero iteration
        // cap, negative/NaN tolerance) that would otherwise skip the loop
        // entirely or never converge early.
        let criterion = self.config.convergence.effective();
        let mut weights = vec![1.0f64; l];
        let mut iterations = 0;
        let mut converged = false;
        let mut convergence_trace = Vec::new();
        for iter in 0..criterion.max_iterations {
            iterations = iter + 1;
            // Group weight update. For small campaigns the loss accumulates
            // in one sequential loop; above the gate it runs as a
            // deterministic chunked reduction whose partials merge in fixed
            // chunk order, so the float sums are byte-identical to the
            // sequential loop split at the same chunk boundaries —
            // regardless of worker count.
            let losses: Vec<f64> = if m < PARALLEL_MIN_TASKS {
                let mut losses = vec![0.0f64; l];
                for &j in &task_ids {
                    let Some(truth) = truths[j] else { continue };
                    for &(k, value, _) in per_task.entries(j) {
                        let e = (value - truth) / scales[j];
                        losses[k] += e * e;
                    }
                }
                losses
            } else {
                parallel_reduce(
                    &task_ids,
                    LOSS_CHUNK_TASKS,
                    || vec![0.0f64; l],
                    |mut acc, &j| {
                        if let Some(truth) = truths[j] {
                            for &(k, value, _) in per_task.entries(j) {
                                let e = (value - truth) / scales[j];
                                acc[k] += e * e;
                            }
                        }
                        acc
                    },
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(&b) {
                            *x += y;
                        }
                        a
                    },
                )
            };
            let total: f64 = losses.iter().sum();
            for (w, &loss) in weights.iter_mut().zip(&losses) {
                *w = (total.max(1e-12) / loss.max(1e-12)).ln().max(0.0);
            }
            if weights.iter().all(|&w| w == 0.0) {
                weights.fill(1.0);
            }
            // Truth update.
            let weights_ref = &weights;
            let next: Vec<Option<f64>> = parallel_map_min(&task_ids, PARALLEL_MIN_TASKS, |&j| {
                estimate_truth(update, per_task.entries(j), |k, _| weights_ref[k])
            });
            let delta = max_abs_delta(&truths, &next);
            convergence_trace.push(delta);
            obs::event(
                "framework.iteration",
                [
                    ("iter", iterations.to_json()),
                    ("max_abs_delta", delta.to_json()),
                ],
            );
            truths = next;
            if delta <= criterion.tolerance {
                converged = true;
                break;
            }
        }
        obs::counter_add("framework.iterations", iterations as u64);

        FrameworkResult {
            truths,
            grouping,
            group_weights: weights,
            iterations,
            converged,
            convergence_trace,
            warm_started,
        }
    }
}

/// Weighted average with a mean fallback when all weights vanish (e.g. a
/// task reported by a single group whose Eq. 4 seed is zero).
fn weighted_truth(entries: impl Iterator<Item = (f64, f64)> + Clone) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    let mut count = 0usize;
    let mut sum = 0.0;
    for (value, weight) in entries.clone() {
        num += weight * value;
        den += weight;
        sum += value;
        count += 1;
    }
    if count == 0 {
        None
    } else if den > 0.0 {
        Some(num / den)
    } else {
        Some(sum / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{AgTr, AgTs, PerfectGrouping};
    use srtd_truth::{Crh, TruthDiscovery};

    /// Table I with the Table III timestamps (accounts 0..6 = the paper's
    /// 1, 2, 3, 4', 4'', 4''').
    fn table_i_attacked() -> SensingData {
        let mut d = SensingData::new(4);
        let ts = |m: f64, s: f64| 10.0 * 3600.0 + m * 60.0 + s;
        d.add_report(0, 0, -84.48, ts(0.0, 35.0));
        d.add_report(0, 1, -82.11, ts(2.0, 42.0));
        d.add_report(0, 2, -75.16, ts(10.0, 22.0));
        d.add_report(0, 3, -72.71, ts(13.0, 41.0));
        d.add_report(1, 1, -72.27, ts(4.0, 15.0));
        d.add_report(1, 2, -77.21, ts(6.0, 1.0));
        d.add_report(2, 0, -72.41, ts(1.0, 21.0));
        d.add_report(2, 1, -91.49, ts(4.0, 5.0));
        d.add_report(2, 3, -73.55, ts(8.0, 28.0));
        d.add_report(3, 0, -50.0, ts(1.0, 10.0));
        d.add_report(3, 2, -50.0, ts(15.0, 24.0));
        d.add_report(3, 3, -50.0, ts(20.0, 6.0));
        d.add_report(4, 0, -50.0, ts(1.0, 34.0));
        d.add_report(4, 2, -50.0, ts(16.0, 8.0));
        d.add_report(4, 3, -50.0, ts(21.0, 25.0));
        d.add_report(5, 0, -50.0, ts(2.0, 35.0));
        d.add_report(5, 2, -50.0, ts(17.0, 35.0));
        d.add_report(5, 3, -50.0, ts(22.0, 2.0));
        d
    }

    #[test]
    fn oracle_grouping_defeats_the_table_i_attack() {
        let data = table_i_attacked();
        let oracle = PerfectGrouping::new(vec![0, 1, 2, 3, 3, 3]);
        let framework = SybilResistantTd::new(oracle);
        let result = framework.discover(&data, &[]);
        // Attacked tasks (0, 2, 3): the Sybil trio collapses to one voice
        // at -50 with low weight; estimates must move back toward the
        // legitimate readings (CRH alone lands near -55).
        let crh = Crh::default().discover(&data);
        for t in [0usize, 2, 3] {
            let ours = result.truths[t].unwrap();
            let baseline = crh.truths[t].unwrap();
            assert!(
                ours < baseline - 5.0,
                "task {t}: framework {ours} not better than CRH {baseline}"
            );
            assert!(ours < -62.0, "task {t}: {ours} still dragged to -50");
        }
    }

    #[test]
    fn ag_tr_variant_matches_oracle_on_table_i() {
        let data = table_i_attacked();
        let by_oracle = SybilResistantTd::new(PerfectGrouping::new(vec![0, 1, 2, 3, 3, 3]))
            .discover(&data, &[]);
        let by_tr = SybilResistantTd::new(AgTr::default()).discover(&data, &[]);
        // AG-TR finds the same Sybil component on this example, so the
        // estimates agree.
        for t in 0..4 {
            let a = by_oracle.truths[t].unwrap();
            let b = by_tr.truths[t].unwrap();
            assert!((a - b).abs() < 1.0, "task {t}: {a} vs {b}");
        }
    }

    #[test]
    fn ag_ts_variant_also_diminishes_the_attack() {
        let data = table_i_attacked();
        let crh = Crh::default().discover(&data);
        let by_ts = SybilResistantTd::new(AgTs::default()).discover(&data, &[]);
        for t in [0usize, 2, 3] {
            assert!(by_ts.truths[t].unwrap() < crh.truths[t].unwrap() - 3.0);
        }
    }

    #[test]
    fn singleton_grouping_behaves_like_account_level_td() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(1, 0, 3.0, 1.0);
        d.add_report(0, 1, 5.0, 2.0);
        d.add_report(1, 1, 7.0, 3.0);
        let singletons = PerfectGrouping::new(vec![0, 1]);
        let r = SybilResistantTd::new(singletons).discover(&d, &[]);
        // Symmetric inputs: truths are the means.
        assert!((r.truths[0].unwrap() - 2.0).abs() < 0.5);
        assert!((r.truths[1].unwrap() - 6.0).abs() < 0.5);
        assert!(r.converged);
    }

    #[test]
    fn sybil_majority_task_survives() {
        // A task where the attacker holds 5 of 6 reports: account-level TD
        // is lost, group-level TD still recovers something sane because the
        // group counts once and its Eq. 4 seed weight is low.
        let mut d = SensingData::new(2);
        d.add_report(0, 0, -80.0, 0.0);
        d.add_report(0, 1, -75.0, 10.0);
        for a in 1..=5 {
            d.add_report(a, 0, -50.0, 100.0 + a as f64 * 30.0);
            d.add_report(a, 1, -50.0, 400.0 + a as f64 * 30.0);
        }
        let oracle = PerfectGrouping::new(vec![0, 1, 1, 1, 1, 1]);
        let r = SybilResistantTd::new(oracle).discover(&d, &[]);
        let crh = Crh::default().discover(&d);
        assert!(r.truths[0].unwrap() < crh.truths[0].unwrap());
        assert!(r.truths[0].unwrap() <= -65.0, "{:?}", r.truths);
    }

    #[test]
    fn unreported_tasks_are_none() {
        let mut d = SensingData::new(3);
        d.add_report(0, 0, 1.0, 0.0);
        let r = SybilResistantTd::new(PerfectGrouping::new(vec![0])).discover(&d, &[]);
        assert_eq!(r.truths[0], Some(1.0));
        assert_eq!(r.truths[1], None);
        assert_eq!(r.truths[2], None);
    }

    #[test]
    fn empty_data_is_fine() {
        let r =
            SybilResistantTd::new(PerfectGrouping::new(vec![])).discover(&SensingData::new(2), &[]);
        assert_eq!(r.truths, vec![None, None]);
        assert!(r.converged);
    }

    #[test]
    fn weighted_median_update_resists_a_poisoned_group() {
        // Three groups claim a task: two honest group aggregates and one
        // Sybil aggregate. The median update ignores the minority
        // aggregate entirely even at equal weights.
        let mut d = SensingData::new(1);
        d.add_report(0, 0, -80.0, 0.0);
        d.add_report(1, 0, -79.0, 10.0);
        d.add_report(2, 0, -50.0, 20.0);
        let grouping = PerfectGrouping::new(vec![0, 1, 2]);
        let median_cfg = FrameworkConfig {
            truth_update: TruthUpdate::WeightedMedian,
            ..FrameworkConfig::default()
        };
        let r = SybilResistantTd::with_config(grouping, median_cfg).discover(&d, &[]);
        let v = r.truths[0].unwrap();
        assert!((-80.0..=-79.0).contains(&v), "median update gave {v}");
    }

    #[test]
    fn variant_names() {
        assert_eq!(
            SybilResistantTd::new(AgTs::default()).variant_name(),
            "TD-TS"
        );
        assert_eq!(
            SybilResistantTd::new(AgTr::default()).variant_name(),
            "TD-TR"
        );
        assert_eq!(
            SybilResistantTd::new(PerfectGrouping::new(vec![])).variant_name(),
            "TD(Oracle)"
        );
    }

    #[test]
    fn truths_stay_in_report_hull() {
        let data = table_i_attacked();
        let r = SybilResistantTd::new(AgTr::default()).discover(&data, &[]);
        for t in 0..4 {
            let vals: Vec<f64> = data.task_reports(t).map(|r| r.value).collect();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let v = r.truths[t].unwrap();
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "task {t}: {v}");
        }
    }
}
