//! Fingerprint feature extraction (§IV-C).

use crate::capture::SensorCapture;
use srtd_signal::{stream_features_batch, FeatureConfig};

/// Dimensionality of a fingerprint feature vector:
/// 20 Table-II features × 4 sensor streams.
pub const FINGERPRINT_DIMENSIONS: usize = 80;

/// Extracts the 80-dimensional fingerprint feature vector of a capture.
///
/// Per §IV-C, the capture is reduced to four streams — the accelerometer
/// magnitude `|a(t)|` (orientation-independent) and the three gyroscope
/// axes — and each stream is described by the 20 temporal/spectral features
/// of Table II. The concatenation is the device fingerprint AG-FP clusters.
///
/// # Examples
///
/// ```
/// use srtd_runtime::rng::SeedableRng;
/// use srtd_fingerprint::{catalog, CaptureConfig, fingerprint_features};
///
/// let mut rng = srtd_runtime::rng::StdRng::seed_from_u64(1);
/// let device = catalog::standard_catalog()[1].model.manufacture(&mut rng);
/// let capture = device.capture(&CaptureConfig::paper_default(), &mut rng);
/// assert_eq!(fingerprint_features(&capture).len(), 80);
/// ```
pub fn fingerprint_features(capture: &SensorCapture) -> Vec<f64> {
    let _span = srtd_runtime::obs::span("fingerprint.extract");
    srtd_runtime::obs::counter_add("fingerprint.extract.calls", 1);
    let config = FeatureConfig::new(capture.sample_rate());
    // All four streams share one capture length, so the batch packs them
    // into two two-for-one transforms instead of four.
    let streams = capture.streams();
    let mut features = Vec::with_capacity(FINGERPRINT_DIMENSIONS);
    for stream in stream_features_batch(&streams, &config) {
        stream.extend_into(&mut features);
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureConfig;
    use crate::catalog::standard_catalog;
    use crate::device::DeviceInstance;
    use srtd_cluster::squared_distance;
    use srtd_runtime::rng::SeedableRng;
    use srtd_runtime::rng::StdRng;

    fn captures_for(device: &DeviceInstance, count: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let cfg = CaptureConfig::paper_default();
        (0..count)
            .map(|_| fingerprint_features(&device.capture(&cfg, rng)))
            .collect()
    }

    #[test]
    fn feature_vector_is_80_dimensional_and_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let dev = standard_catalog()[0].model.manufacture(&mut rng);
        let f = captures_for(&dev, 1, &mut rng).remove(0);
        assert_eq!(f.len(), FINGERPRINT_DIMENSIONS);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn same_device_closer_than_different_models() {
        // The core separability property AG-FP depends on, checked on
        // standardized features (the clustering pipeline's view).
        let mut rng = StdRng::seed_from_u64(42);
        let catalog = standard_catalog();
        let dev_a = catalog[2].model.manufacture(&mut rng); // iPhone 6S
        let dev_b = catalog[5].model.manufacture(&mut rng); // Nexus 6P
        let mut rows = captures_for(&dev_a, 4, &mut rng);
        rows.extend(captures_for(&dev_b, 4, &mut rng));
        let (std_rows, _) = srtd_signal::features::standardize(&rows);
        // Mean within-device distance vs. cross-device distance.
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut wn = 0;
        let mut cn = 0;
        for i in 0..8 {
            for j in i + 1..8 {
                let d = squared_distance(&std_rows[i], &std_rows[j]);
                if (i < 4) == (j < 4) {
                    within += d;
                    wn += 1;
                } else {
                    cross += d;
                    cn += 1;
                }
            }
        }
        let within = within / wn as f64;
        let cross = cross / cn as f64;
        // Session randomness (tremor tones, grip) keeps within-device
        // distance nonzero; the device signature must still dominate.
        assert!(
            cross > 1.4 * within,
            "cross-model distance {cross} not > within-device {within}"
        );
        // And the property AG-FP actually needs: k-means separates the two
        // devices perfectly.
        let km = srtd_cluster::KMeans::new(srtd_cluster::KMeansConfig::new(2)).fit(&std_rows);
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        let ari = srtd_metrics::adjusted_rand_index(&km.assignments, &truth);
        assert!(
            (ari - 1.0).abs() < 1e-12,
            "k-means failed to separate devices, ARI {ari}, assignments {:?}",
            km.assignments
        );
    }

    #[test]
    fn same_model_devices_are_harder_to_separate_than_cross_model() {
        // Fig. 8's observation: same-model units sit close together.
        let mut rng = StdRng::seed_from_u64(7);
        let catalog = standard_catalog();
        let a1 = catalog[2].model.manufacture(&mut rng);
        let a2 = catalog[2].model.manufacture(&mut rng);
        let b = catalog[7].model.manufacture(&mut rng);
        let fa1 = captures_for(&a1, 3, &mut rng);
        let fa2 = captures_for(&a2, 3, &mut rng);
        let fb = captures_for(&b, 3, &mut rng);
        let mut rows = fa1.clone();
        rows.extend(fa2.clone());
        rows.extend(fb.clone());
        let (std_rows, _) = srtd_signal::features::standardize(&rows);
        let center = |range: std::ops::Range<usize>| -> Vec<f64> {
            let dim = std_rows[0].len();
            let mut c = vec![0.0; dim];
            let len = range.len() as f64;
            for i in range {
                for (cj, &x) in c.iter_mut().zip(&std_rows[i]) {
                    *cj += x / len;
                }
            }
            c
        };
        let ca1 = center(0..3);
        let ca2 = center(3..6);
        let cb = center(6..9);
        let same_model = squared_distance(&ca1, &ca2);
        let cross_model = squared_distance(&ca1, &cb).min(squared_distance(&ca2, &cb));
        assert!(
            cross_model > same_model,
            "same-model centers ({same_model}) should be closer than cross-model ({cross_model})"
        );
    }
}
