//! Complete campaign generation reproducing the paper's experimental setup.

use crate::attack::{AttackType, AttackerSpec, EvasionTactic, FabricationStrategy};
use crate::mobility::Walk;
use crate::poi::PoiMap;
use crate::user::MeasurementProfile;
use crate::world::WifiWorld;
use srtd_fingerprint::catalog::{standard_catalog, DeviceRole};
use srtd_fingerprint::noise::normal;
use srtd_fingerprint::{fingerprint_features, CaptureConfig, DeviceInstance};
use srtd_runtime::parallel::parallel_map;
use srtd_runtime::rng::SliceRandom;
use srtd_runtime::rng::StdRng;
use srtd_runtime::rng::{Rng, SeedableRng};
use srtd_truth::SensingData;

/// Window (seconds) over which participants start their walks. A real
/// campaign spreads volunteers over hours; trajectory-based grouping
/// relies on that spread to tell same-route users apart.
pub const CAMPAIGN_WINDOW_S: f64 = 7200.0;

/// Configuration of a generated campaign.
///
/// [`ScenarioConfig::paper_default`] reproduces §V-A: 10 Wi-Fi RSSI tasks,
/// 8 legitimate users with one account and one smartphone each, and 2
/// Sybil attackers with 5 accounts each — one Attack-I (single iPhone 6S)
/// and one Attack-II (iPhone SE + Nexus 6P). Activeness (Eq. 9) of both
/// populations is adjustable, which is exactly the sweep Figs. 6 and 7
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Number of sensing tasks `m`.
    pub num_tasks: usize,
    /// Number of legitimate users (one account, one device each).
    pub num_legit: usize,
    /// The Sybil attackers.
    pub attackers: Vec<AttackerSpec>,
    /// Activeness `α` of legitimate users.
    pub legit_activeness: f64,
    /// Activeness `α` of Sybil attackers.
    pub attacker_activeness: f64,
    /// Walking speed in m/s.
    pub walking_speed: f64,
    /// Fingerprint capture protocol.
    pub capture: CaptureConfig,
    /// RNG seed; every generated artifact is deterministic in it.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The paper's experimental setup (§V-A) at full activeness.
    pub fn paper_default() -> Self {
        Self {
            num_tasks: 10,
            num_legit: 8,
            attackers: vec![
                AttackerSpec::paper_attack_i(),
                AttackerSpec::paper_attack_ii(),
            ],
            legit_activeness: 1.0,
            attacker_activeness: 1.0,
            walking_speed: 1.4,
            capture: CaptureConfig::paper_default(),
            seed: 0,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces both activeness levels (the Fig. 6/7 sweep axes).
    ///
    /// # Panics
    ///
    /// Panics if either value is outside `(0, 1]`.
    pub fn with_activeness(mut self, legit: f64, attacker: f64) -> Self {
        assert!(
            legit > 0.0 && legit <= 1.0,
            "legit activeness must be in (0,1]"
        );
        assert!(
            attacker > 0.0 && attacker <= 1.0,
            "attacker activeness must be in (0,1]"
        );
        self.legit_activeness = legit;
        self.attacker_activeness = attacker;
        self
    }

    /// Replaces the attacker roster.
    pub fn with_attackers(mut self, attackers: Vec<AttackerSpec>) -> Self {
        self.attackers = attackers;
        self
    }

    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics if there are no tasks, no legitimate users, or an invalid
    /// attacker spec.
    pub fn validate(&self) {
        assert!(self.num_tasks > 0, "campaign needs at least one task");
        assert!(self.num_legit > 0, "campaign needs legitimate users");
        assert!(self.walking_speed > 0.0, "walking speed must be positive");
        for a in &self.attackers {
            a.validate();
        }
    }

    /// Tasks an account with activeness `alpha` performs:
    /// `max(2, round(α·m))` clamped to `m` (the paper requires at least two
    /// tasks per account).
    pub fn tasks_per_account(&self, alpha: f64) -> usize {
        let k = (alpha * self.num_tasks as f64).round() as usize;
        k.max(2.min(self.num_tasks)).min(self.num_tasks)
    }
}

/// A generated campaign with full ground truth for evaluation.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The report matrix handed to truth discovery.
    pub data: SensingData,
    /// Per-account 80-dimensional device fingerprint features.
    pub fingerprints: Vec<Vec<f64>>,
    /// Ground-truth value per task.
    pub ground_truth: Vec<f64>,
    /// True owner (physical user) of each account — the reference
    /// partition ARI scores grouping against.
    pub owners: Vec<usize>,
    /// Device instance index used by each account.
    pub devices: Vec<usize>,
    /// Whether each account belongs to a Sybil attacker.
    pub is_sybil: Vec<bool>,
    /// Per-attacker target task lists (sorted). Non-empty only for
    /// attackers using [`FabricationStrategy::Camouflaged`]; on every
    /// other task those attackers report inside the honest envelope.
    pub attack_targets: Vec<Vec<usize>>,
    /// The device fleet (indexed by [`Scenario::devices`]).
    pub fleet: Vec<DeviceInstance>,
    /// The campus map.
    pub map: PoiMap,
}

impl Scenario {
    /// Generates a campaign from a configuration.
    ///
    /// Deterministic in `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ScenarioConfig::validate`]).
    pub fn generate(config: &ScenarioConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let map = PoiMap::campus(config.num_tasks, config.seed);
        let world = WifiWorld::generate(&map, config.seed);

        let Fleet {
            devices: fleet,
            legit_pool,
            attack_i_pool,
            attack_ii_pool,
            mixed_pool,
        } = manufacture_fleet(config, &mut rng);

        let mut data = SensingData::new(config.num_tasks);
        // Captures are drawn inline (they consume the scenario RNG) but
        // feature extraction is pure, so it is deferred and fanned out over
        // the runtime's scoped threads once all accounts exist.
        let mut captures = Vec::new();
        let mut owners = Vec::new();
        let mut devices = Vec::new();
        let mut is_sybil = Vec::new();
        let mut next_account = 0usize;
        // Empirical task marginal of the honest population, the
        // distribution task-mimicry attackers sample from.
        let mut honest_task_counts = vec![0usize; config.num_tasks];

        // Legitimate users: one account, one device, one walk each.
        let mut legit_iter = legit_pool.into_iter();
        for user in 0..config.num_legit {
            let device = legit_iter
                .next()
                .expect("fleet sized to cover all legitimate users");
            let profile = MeasurementProfile::sample(&mut rng);
            let k = config.tasks_per_account(config.legit_activeness);
            let tasks = choose_tasks(config.num_tasks, k, &mut rng);
            for &t in &tasks {
                honest_task_counts[t] += 1;
            }
            let start = rng.gen_range(0.0..CAMPAIGN_WINDOW_S);
            // Legit users visit in their own preferred (shuffled) order.
            let walk = Walk::plan_in_order(&map, &tasks, start, config.walking_speed, &mut rng);
            for visit in walk.visits() {
                let value = world.measure(visit.task, &profile, &mut rng);
                let submit = visit.arrival + rng.gen_range(5.0..40.0);
                data.add_report(next_account, visit.task, value, submit);
            }
            captures.push(fleet[device].capture(&config.capture, &mut rng));
            owners.push(user);
            devices.push(device);
            is_sybil.push(false);
            next_account += 1;
        }

        // Sybil attackers: one physical walk; every account reports each
        // visited POI back to back (the Table III timestamp pattern),
        // unless the spec's evasion tactic says otherwise.
        let mut a1 = attack_i_pool.into_iter();
        let mut a2 = attack_ii_pool.into_iter();
        let mut mixed = mixed_pool.into_iter();
        let mut attack_targets = Vec::with_capacity(config.attackers.len());
        for (a_idx, spec) in config.attackers.iter().enumerate() {
            let owner = config.num_legit + a_idx;
            let device_ids: Vec<usize> = match spec.attack_type {
                AttackType::SingleDevice => {
                    vec![a1.next().expect("fleet covers Attack-I attackers")]
                }
                AttackType::MultiDevice { devices } => (0..devices)
                    .map(|_| a2.next().expect("fleet covers Attack-II attackers"))
                    .collect(),
                AttackType::MixedDevices { devices } => (0..devices)
                    .map(|_| mixed.next().expect("fleet covers mixed-device attackers"))
                    .collect(),
            };
            let profile = MeasurementProfile::sample(&mut rng);
            let k = config.tasks_per_account(config.attacker_activeness);
            // Mimicry draws each account's task set from the honest
            // marginal; the attacker walks the union once. Every other
            // tactic shares one uniform draw across all accounts.
            let (tasks, account_tasks): (Vec<usize>, Vec<Vec<usize>>) =
                if matches!(spec.evasion, EvasionTactic::TaskMimicry) {
                    let per_account: Vec<Vec<usize>> = (0..spec.accounts)
                        .map(|_| sample_weighted_tasks(&honest_task_counts, k, &mut rng))
                        .collect();
                    let mut union: Vec<usize> = per_account.iter().flatten().copied().collect();
                    union.sort_unstable();
                    union.dedup();
                    union.shuffle(&mut rng);
                    (union, per_account)
                } else {
                    (choose_tasks(config.num_tasks, k, &mut rng), Vec::new())
                };
            // Camouflaged attackers pick their lie targets up front.
            let targets: Vec<usize> = match spec.strategy {
                FabricationStrategy::Camouflaged {
                    target_fraction, ..
                } => {
                    let mut pool = tasks.clone();
                    pool.shuffle(&mut rng);
                    let n = ((target_fraction * tasks.len() as f64).ceil() as usize)
                        .clamp(1, tasks.len());
                    pool.truncate(n);
                    pool.sort_unstable();
                    pool
                }
                _ => Vec::new(),
            };
            let start = rng.gen_range(0.0..CAMPAIGN_WINDOW_S);
            // The attacker walks once, in its own preferred order; all of
            // its accounts will replay this one walk.
            let walk = Walk::plan_in_order(&map, &tasks, start, config.walking_speed, &mut rng);

            let account_base = next_account;
            for j in 0..spec.accounts {
                let device = device_ids[j % device_ids.len()];
                captures.push(fleet[device].capture(&config.capture, &mut rng));
                owners.push(owner);
                devices.push(device);
                is_sybil.push(true);
                next_account += 1;
            }
            let truths = world.ground_truths();
            let claim = |task: usize, honest: f64, rng: &mut StdRng| match spec.strategy {
                FabricationStrategy::Fabricate { value, jitter_std } => {
                    value + normal(rng, 0.0, jitter_std)
                }
                FabricationStrategy::DuplicateMeasurement { jitter_std } => {
                    honest + normal(rng, 0.0, jitter_std)
                }
                FabricationStrategy::Offset { delta, jitter_std } => {
                    honest + delta + normal(rng, 0.0, jitter_std)
                }
                FabricationStrategy::Camouflaged { delta, sigma, .. } => {
                    // Inside the honest envelope everywhere (truth ± 1.5σ
                    // hard bound); the lie rides on top only at targets.
                    let noise = normal(rng, 0.0, sigma).clamp(-1.5 * sigma, 1.5 * sigma);
                    let lie = if targets.binary_search(&task).is_ok() {
                        delta
                    } else {
                        0.0
                    };
                    truths[task] + lie + noise
                }
            };
            match spec.evasion {
                EvasionTactic::None => {
                    for visit in walk.visits() {
                        let honest = world.measure(visit.task, &profile, &mut rng);
                        // Account switching takes time: submissions are
                        // sequential with tens of seconds between them.
                        let mut offset = rng.gen_range(5.0..20.0);
                        for j in 0..spec.accounts {
                            let value = claim(visit.task, honest, &mut rng);
                            data.add_report(
                                account_base + j,
                                visit.task,
                                value,
                                visit.arrival + offset,
                            );
                            offset += rng.gen_range(20.0..55.0);
                        }
                    }
                }
                EvasionTactic::PerAccountWalks => {
                    // The attacker physically re-walks the task set once
                    // per account: trajectories become independent.
                    for j in 0..spec.accounts {
                        let mut order = tasks.clone();
                        order.shuffle(&mut rng);
                        let start_j = rng.gen_range(0.0..CAMPAIGN_WINDOW_S);
                        let walk_j = Walk::plan_in_order(
                            &map,
                            &order,
                            start_j,
                            config.walking_speed,
                            &mut rng,
                        );
                        for visit in walk_j.visits() {
                            let honest = world.measure(visit.task, &profile, &mut rng);
                            let value = claim(visit.task, honest, &mut rng);
                            let submit = visit.arrival + rng.gen_range(5.0..40.0);
                            data.add_report(account_base + j, visit.task, value, submit);
                        }
                    }
                }
                EvasionTactic::SubsetTasks { fraction } => {
                    // One walk, but each account reports only a random
                    // subset of the visited tasks, diversifying task sets.
                    let per_account = ((fraction * walk.visits().len() as f64).ceil() as usize)
                        .clamp(1, walk.visits().len());
                    for visit in walk.visits() {
                        let honest = world.measure(visit.task, &profile, &mut rng);
                        let mut offset = rng.gen_range(5.0..20.0);
                        let mut reporters: Vec<usize> = (0..spec.accounts).collect();
                        reporters.shuffle(&mut rng);
                        // Keep expected per-account coverage at `fraction`.
                        let quota = (spec.accounts as f64 * per_account as f64
                            / walk.visits().len() as f64)
                            .round()
                            .clamp(1.0, spec.accounts as f64)
                            as usize;
                        for &j in reporters.iter().take(quota) {
                            let value = claim(visit.task, honest, &mut rng);
                            data.add_report(
                                account_base + j,
                                visit.task,
                                value,
                                visit.arrival + offset,
                            );
                            offset += rng.gen_range(20.0..55.0);
                        }
                    }
                }
                EvasionTactic::JitteredReplay {
                    time_jitter_s,
                    order_flips,
                } => {
                    // One walk, measured once per POI; each account
                    // replays it on a private clock (offset drawn from
                    // N(0, jitter), floored so no timestamp goes
                    // negative) with a few transposed claim positions.
                    let visits = walk.visits();
                    let honest: Vec<f64> = visits
                        .iter()
                        .map(|v| world.measure(v.task, &profile, &mut rng))
                        .collect();
                    let floor = -visits.first().map_or(0.0, |v| v.arrival);
                    for j in 0..spec.accounts {
                        let offset = normal(&mut rng, 0.0, time_jitter_s).max(floor);
                        // `order[slot]` = which true visit this account
                        // claims at time slot `slot`.
                        let mut order: Vec<usize> = (0..visits.len()).collect();
                        for _ in 0..order_flips {
                            if visits.len() >= 2 {
                                let i = rng.gen_range(0..visits.len() - 1);
                                order.swap(i, i + 1);
                            }
                        }
                        for (slot, &vi) in order.iter().enumerate() {
                            let value = claim(visits[vi].task, honest[vi], &mut rng);
                            let submit = visits[slot].arrival + offset + rng.gen_range(5.0..40.0);
                            data.add_report(account_base + j, visits[vi].task, value, submit);
                        }
                    }
                }
                EvasionTactic::TaskMimicry => {
                    // One walk over the union of the mimicked task sets;
                    // each account reports only its own draw, back to
                    // back like the no-evasion attacker.
                    for visit in walk.visits() {
                        let honest = world.measure(visit.task, &profile, &mut rng);
                        let mut offset = rng.gen_range(5.0..20.0);
                        for (j, tasks) in account_tasks.iter().enumerate() {
                            if !tasks.contains(&visit.task) {
                                continue;
                            }
                            let value = claim(visit.task, honest, &mut rng);
                            data.add_report(
                                account_base + j,
                                visit.task,
                                value,
                                visit.arrival + offset,
                            );
                            offset += rng.gen_range(20.0..55.0);
                        }
                    }
                }
            }
            attack_targets.push(targets);
        }

        // Per-account fingerprint feature extraction (FFTs over ~600-sample
        // streams) is the heaviest pure stage of generation; parallelize it.
        let fingerprints = parallel_map(&captures, fingerprint_features);

        Self {
            data,
            fingerprints,
            ground_truth: world.ground_truths().to_vec(),
            owners,
            devices,
            is_sybil,
            attack_targets,
            fleet,
            map,
        }
    }

    /// Number of accounts in the campaign.
    pub fn num_accounts(&self) -> usize {
        self.owners.len()
    }

    /// The account→device labeling (ground truth for evaluating AG-FP as a
    /// *device* grouper).
    pub fn device_labels(&self) -> &[usize] {
        &self.devices
    }

    /// The account→owner labeling (ground truth for ARI in Figs. 6/7).
    pub fn owner_labels(&self) -> &[usize] {
        &self.owners
    }
}

/// The manufactured device fleet with its role pools (indices into
/// `devices`).
struct Fleet {
    devices: Vec<DeviceInstance>,
    legit_pool: Vec<usize>,
    attack_i_pool: Vec<usize>,
    attack_ii_pool: Vec<usize>,
    mixed_pool: Vec<usize>,
}

/// Manufactures the device fleet and splits it into role pools.
///
/// Follows Table IV for the paper-scale setup and extends it by cycling
/// through the catalog for larger configurations.
fn manufacture_fleet(config: &ScenarioConfig, rng: &mut StdRng) -> Fleet {
    let catalog = standard_catalog();
    let mut fleet = Vec::new();
    let mut legit_pool = Vec::new();
    let mut attack_i_pool = Vec::new();
    let mut attack_ii_pool = Vec::new();
    for entry in &catalog {
        for unit in 0..entry.quantity {
            let idx = fleet.len();
            fleet.push(entry.model.manufacture(rng));
            // Only the first unit of an attack-role model attacks; spare
            // units (e.g. the second iPhone 6S, Nexus 6P #2/#3) are carried
            // by legitimate users, matching Table IV quantities.
            match (entry.role, unit) {
                (DeviceRole::AttackI, 0) => attack_i_pool.push(idx),
                (DeviceRole::AttackII, 0) => attack_ii_pool.push(idx),
                _ => legit_pool.push(idx),
            }
        }
    }
    // Demand beyond Table IV: manufacture extra units round-robin.
    let need_legit = config.num_legit;
    let need_a1 = config
        .attackers
        .iter()
        .filter(|a| matches!(a.attack_type, crate::attack::AttackType::SingleDevice))
        .count();
    let need_a2: usize = config
        .attackers
        .iter()
        .map(|a| match a.attack_type {
            crate::attack::AttackType::MultiDevice { devices } => devices,
            _ => 0,
        })
        .sum();
    let need_mixed: usize = config
        .attackers
        .iter()
        .map(|a| match a.attack_type {
            crate::attack::AttackType::MixedDevices { devices } => devices,
            _ => 0,
        })
        .sum();
    let mut model_cycle = 0usize;
    let mut extend = |pool: &mut Vec<usize>, need: usize, fleet: &mut Vec<DeviceInstance>| {
        while pool.len() < need {
            let entry = &catalog[model_cycle % catalog.len()];
            model_cycle += 1;
            pool.push(fleet.len());
            fleet.push(entry.model.manufacture(rng));
        }
    };
    extend(&mut legit_pool, need_legit, &mut fleet);
    extend(&mut attack_i_pool, need_a1, &mut fleet);
    extend(&mut attack_ii_pool, need_a2, &mut fleet);
    // Mixed-device attackers buy devices of *distinct* models: cycle the
    // catalog from its start so each attacker's consecutive slice spans
    // as many different models as the catalog holds.
    let mut mixed_pool = Vec::with_capacity(need_mixed);
    for i in 0..need_mixed {
        let entry = &catalog[i % catalog.len()];
        mixed_pool.push(fleet.len());
        fleet.push(entry.model.manufacture(rng));
    }
    Fleet {
        devices: fleet,
        legit_pool,
        attack_i_pool,
        attack_ii_pool,
        mixed_pool,
    }
}

/// Chooses `k` distinct tasks uniformly, in random visiting order.
fn choose_tasks(num_tasks: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut all: Vec<usize> = (0..num_tasks).collect();
    all.shuffle(rng);
    all.truncate(k);
    all
}

/// Chooses up to `k` distinct tasks weighted by the honest population's
/// task counts (without replacement). Tasks no honest account performs
/// have weight zero and are only drawn — uniformly — once every weighted
/// task is exhausted, so a mimicking account's set stays inside the
/// honest support whenever that support is large enough.
fn sample_weighted_tasks(counts: &[usize], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut avail: Vec<usize> = (0..counts.len()).collect();
    let mut out = Vec::with_capacity(k);
    while out.len() < k && !avail.is_empty() {
        let total: usize = avail.iter().map(|&t| counts[t]).sum();
        let pick = if total == 0 {
            rng.gen_range(0..avail.len())
        } else {
            let mut x = rng.gen_range(0.0..total as f64);
            let mut pick = avail.len() - 1;
            for (i, &t) in avail.iter().enumerate() {
                let w = counts[t] as f64;
                if x < w {
                    pick = i;
                    break;
                }
                x -= w;
            }
            pick
        };
        out.push(avail.swap_remove(pick));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_scenario(seed: u64) -> Scenario {
        Scenario::generate(&ScenarioConfig::paper_default().with_seed(seed))
    }

    #[test]
    fn paper_shape_is_reproduced() {
        let s = paper_scenario(1);
        assert_eq!(s.data.num_tasks(), 10);
        assert_eq!(s.num_accounts(), 18);
        assert_eq!(s.fleet.len(), 11); // Table IV
        assert_eq!(s.fingerprints.len(), 18);
        assert!(s.fingerprints.iter().all(|f| f.len() == 80));
        assert_eq!(s.is_sybil.iter().filter(|&&x| x).count(), 10);
        // Owners: 8 legit users + 2 attackers = 10 physical users.
        let max_owner = *s.owners.iter().max().unwrap();
        assert_eq!(max_owner, 9);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = paper_scenario(5);
        let b = paper_scenario(5);
        assert_eq!(a.data, b.data);
        assert_eq!(a.fingerprints, b.fingerprints);
        let c = paper_scenario(6);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn sybil_accounts_share_their_attacker_task_set() {
        let s = paper_scenario(2);
        for owner in [8usize, 9] {
            let accounts: Vec<usize> = (0..s.num_accounts())
                .filter(|&a| s.owners[a] == owner)
                .collect();
            assert_eq!(accounts.len(), 5);
            let reference = s.data.tasks_of(accounts[0]);
            for &a in &accounts[1..] {
                assert_eq!(s.data.tasks_of(a), reference);
            }
        }
    }

    #[test]
    fn sybil_timestamps_are_sequential_at_each_task() {
        let s = paper_scenario(3);
        let accounts: Vec<usize> = (0..s.num_accounts())
            .filter(|&a| s.owners[a] == 8)
            .collect();
        for &task in &s.data.tasks_of(accounts[0]) {
            let mut times: Vec<f64> = accounts
                .iter()
                .flat_map(|&a| {
                    s.data
                        .account_reports(a)
                        .filter(|r| r.task == task)
                        .map(|r| r.timestamp)
                })
                .collect();
            times.sort_by(f64::total_cmp);
            assert_eq!(times.len(), 5);
            for w in times.windows(2) {
                let gap = w[1] - w[0];
                assert!((15.0..=70.0).contains(&gap), "gap {gap}");
            }
        }
    }

    #[test]
    fn fabricated_values_sit_near_minus_50() {
        let s = paper_scenario(4);
        for (a, &sybil) in s.is_sybil.iter().enumerate() {
            for r in s.data.account_reports(a) {
                if sybil {
                    assert!((r.value + 50.0).abs() < 2.0, "sybil claim {}", r.value);
                } else {
                    let truth = s.ground_truth[r.task];
                    assert!((r.value - truth).abs() < 15.0, "legit claim {}", r.value);
                }
            }
        }
    }

    #[test]
    fn attack_ii_accounts_span_two_devices() {
        let s = paper_scenario(7);
        let devices: std::collections::HashSet<usize> = (0..s.num_accounts())
            .filter(|&a| s.owners[a] == 9)
            .map(|a| s.devices[a])
            .collect();
        assert_eq!(devices.len(), 2);
        // And Attack-I stays on one device.
        let devices_a1: std::collections::HashSet<usize> = (0..s.num_accounts())
            .filter(|&a| s.owners[a] == 8)
            .map(|a| s.devices[a])
            .collect();
        assert_eq!(devices_a1.len(), 1);
    }

    #[test]
    fn activeness_controls_task_counts() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(8)
            .with_activeness(0.2, 0.5);
        let s = Scenario::generate(&cfg);
        for a in 0..s.num_accounts() {
            let k = s.data.tasks_of(a).len();
            if s.is_sybil[a] {
                assert_eq!(k, 5, "attacker accounts at α=0.5 over 10 tasks");
            } else {
                assert_eq!(k, 2, "legit accounts at α=0.2 over 10 tasks");
            }
        }
    }

    #[test]
    fn larger_than_table_iv_configs_extend_the_fleet() {
        let cfg = ScenarioConfig {
            num_legit: 20,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(9);
        let s = Scenario::generate(&cfg);
        assert_eq!(s.num_accounts(), 30);
        assert!(s.fleet.len() >= 23);
    }

    #[test]
    fn per_account_walks_diversify_trajectories() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(21)
            .with_attackers(vec![
                AttackerSpec::paper_attack_i().with_evasion(EvasionTactic::PerAccountWalks)
            ]);
        let s = Scenario::generate(&cfg);
        let accounts: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
        assert_eq!(accounts.len(), 5);
        // Task sets still coincide (same attacker task set)...
        let reference = s.data.tasks_of(accounts[0]);
        for &a in &accounts[1..] {
            assert_eq!(s.data.tasks_of(a), reference);
        }
        // ...but first-submission times are spread far beyond the ~55 s
        // account-switching gaps of the no-evasion attacker.
        let mut first_times: Vec<f64> = accounts
            .iter()
            .map(|&a| {
                s.data
                    .account_reports(a)
                    .map(|r| r.timestamp)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        first_times.sort_by(f64::total_cmp);
        let spread = first_times.last().unwrap() - first_times.first().unwrap();
        assert!(spread > 300.0, "walks not spread: {spread}");
    }

    #[test]
    fn subset_tasks_diversify_task_sets() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(22)
            .with_attackers(vec![AttackerSpec::paper_attack_ii()
                .with_evasion(EvasionTactic::SubsetTasks { fraction: 0.5 })]);
        let s = Scenario::generate(&cfg);
        let accounts: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
        // Accounts no longer share identical task sets.
        let sets: std::collections::HashSet<Vec<usize>> =
            accounts.iter().map(|&a| s.data.tasks_of(a)).collect();
        assert!(sets.len() > 1, "subset evasion produced identical sets");
        // And the attack is diluted: fewer than 5 reports per task.
        for t in 0..s.data.num_tasks() {
            let sybil_reports = s
                .data
                .task_reports(t)
                .filter(|r| s.is_sybil[r.account])
                .count();
            assert!(
                sybil_reports <= 4,
                "task {t} has {sybil_reports} sybil reports"
            );
        }
    }

    #[test]
    fn offset_strategy_shifts_by_delta() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(23)
            .with_attackers(vec![AttackerSpec::paper_attack_i().with_strategy(
                FabricationStrategy::Offset {
                    delta: -8.0,
                    jitter_std: 0.1,
                },
            )]);
        let s = Scenario::generate(&cfg);
        for (a, &sybil) in s.is_sybil.iter().enumerate() {
            if !sybil {
                continue;
            }
            for r in s.data.account_reports(a) {
                let shift = r.value - s.ground_truth[r.task];
                // Honest measurement noise (attacker profile) + delta.
                assert!(
                    (-8.0 - 9.0..=-8.0 + 9.0).contains(&shift),
                    "offset claim drifted: {shift}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "legit activeness")]
    fn zero_activeness_rejected() {
        ScenarioConfig::paper_default().with_activeness(0.0, 1.0);
    }

    #[test]
    fn jittered_replay_spreads_per_account_clocks() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(31)
            .with_attackers(vec![AttackerSpec::adaptive_jitter(900.0)]);
        let s = Scenario::generate(&cfg);
        let accounts: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
        assert_eq!(accounts.len(), 5);
        // Same task set (one walk)...
        let mut reference = s.data.tasks_of(accounts[0]);
        reference.sort_unstable();
        for &a in &accounts[1..] {
            let mut t = s.data.tasks_of(a);
            t.sort_unstable();
            assert_eq!(t, reference);
        }
        // ...but first-report times spread far beyond account-switching
        // gaps, and no timestamp went negative.
        let first_times: Vec<f64> = accounts
            .iter()
            .map(|&a| {
                s.data
                    .account_reports(a)
                    .map(|r| r.timestamp)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let lo = first_times.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = first_times
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo > 120.0, "clocks not spread: {}", hi - lo);
        for &a in &accounts {
            for r in s.data.account_reports(a) {
                assert!(r.timestamp >= 0.0, "negative timestamp {}", r.timestamp);
            }
        }
    }

    #[test]
    fn zero_jitter_replay_degenerates_to_replay() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(32)
            .with_attackers(vec![AttackerSpec::adaptive_jitter(0.0).with_evasion(
                EvasionTactic::JitteredReplay {
                    time_jitter_s: 0.0,
                    order_flips: 0,
                },
            )]);
        let s = Scenario::generate(&cfg);
        let accounts: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
        // All accounts report every task within the submit-lag window.
        for &task in &s.data.tasks_of(accounts[0]) {
            let times: Vec<f64> = accounts
                .iter()
                .flat_map(|&a| {
                    s.data
                        .account_reports(a)
                        .filter(|r| r.task == task)
                        .map(|r| r.timestamp)
                })
                .collect();
            assert_eq!(times.len(), 5);
            let lo = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(hi - lo < 40.0, "zero jitter spread {}", hi - lo);
        }
    }

    #[test]
    fn camouflaged_claims_stay_in_envelope_off_target() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(33)
            .with_attackers(vec![AttackerSpec::paper_attack_i()
                .with_strategy(FabricationStrategy::camouflaged_default())]);
        let s = Scenario::generate(&cfg);
        let targets = &s.attack_targets[0];
        assert!(!targets.is_empty());
        for (a, &sybil) in s.is_sybil.iter().enumerate() {
            if !sybil {
                continue;
            }
            for r in s.data.account_reports(a) {
                let truth = s.ground_truth[r.task];
                let dev = r.value - truth;
                if targets.binary_search(&r.task).is_ok() {
                    // Lied: shifted by delta ± the camouflage envelope.
                    assert!(
                        (-18.0 - 3.0..=-18.0 + 3.0).contains(&dev),
                        "target deviation {dev}"
                    );
                } else {
                    assert!(dev.abs() <= 3.0 + 1e-9, "off-target deviation {dev}");
                }
            }
        }
    }

    #[test]
    fn mimicry_task_sets_diverge_and_track_honest_support() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(34)
            .with_activeness(0.6, 0.5)
            .with_attackers(vec![AttackerSpec::adaptive_mimicry(3)]);
        let s = Scenario::generate(&cfg);
        let mut honest_support = std::collections::HashSet::new();
        let accounts: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
        for a in 0..s.num_accounts() {
            if !s.is_sybil[a] {
                honest_support.extend(s.data.tasks_of(a));
            }
        }
        // Honest support covers enough tasks for the mimicked sets to
        // stay inside it (8 users × 6 tasks over 10).
        assert!(honest_support.len() >= 5);
        let sets: std::collections::HashSet<Vec<usize>> = accounts
            .iter()
            .map(|&a| {
                let mut t = s.data.tasks_of(a);
                t.sort_unstable();
                t
            })
            .collect();
        assert!(sets.len() > 1, "mimicry produced identical task sets");
        for &a in &accounts {
            for t in s.data.tasks_of(a) {
                assert!(honest_support.contains(&t), "task {t} outside support");
            }
        }
    }

    #[test]
    fn mixed_devices_span_distinct_models() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(35)
            .with_attackers(vec![AttackerSpec::adaptive_mimicry(4)]);
        let s = Scenario::generate(&cfg);
        let devices: std::collections::HashSet<usize> = (0..s.num_accounts())
            .filter(|&a| s.is_sybil[a])
            .map(|a| s.devices[a])
            .collect();
        assert_eq!(devices.len(), 4, "accounts must span all mixed devices");
        let models: std::collections::HashSet<&str> = devices
            .iter()
            .map(|&d| s.fleet[d].model_name.as_str())
            .collect();
        assert_eq!(models.len(), 4, "mixed devices must be distinct models");
    }

    #[test]
    fn legacy_configs_generate_identical_campaigns() {
        // The adaptive extensions must not perturb the RNG schedule of
        // pre-existing configurations: the paper campaign at a fixed seed
        // keeps its exact report matrix.
        let s = paper_scenario(5);
        assert_eq!(s.attack_targets, vec![Vec::<usize>::new(); 2]);
        let t = paper_scenario(5);
        assert_eq!(s.data, t.data);
    }
}
