//! Magnitude spectra and spectral peak picking.

use crate::fft::fft_real;
use crate::window::Window;
use crate::Complex;

/// The single-sided magnitude spectrum of a real signal.
///
/// Bin `k` holds the magnitude at frequency `k · sample_rate / n_fft` for
/// `k = 0 ..= n_fft/2`. The DC bin is retained; shape features that should
/// ignore the DC offset skip bin 0 explicitly.
///
/// # Examples
///
/// ```
/// use srtd_signal::{Spectrum};
/// use srtd_signal::window::Window;
///
/// let tone: Vec<f64> = (0..128)
///     .map(|i| (2.0 * std::f64::consts::PI * 8.0 * i as f64 / 128.0).sin())
///     .collect();
/// let spec = Spectrum::from_signal(&tone, 128.0, Window::Rectangular);
/// assert_eq!(spec.peak_bin(), 8);
/// assert!((spec.frequency(8) - 8.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    magnitudes: Vec<f64>,
    bin_width: f64,
}

/// A spectral peak: a local magnitude maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Frequency of the peak in Hz.
    pub frequency: f64,
    /// Magnitude at the peak.
    pub magnitude: f64,
}

impl Spectrum {
    /// Computes the spectrum of `signal` sampled at `sample_rate` Hz.
    ///
    /// The signal is windowed, zero-padded to a power of two and passed
    /// through the FFT; only the non-redundant half is kept.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not finite and positive.
    pub fn from_signal(signal: &[f64], sample_rate: f64, window: Window) -> Self {
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample rate must be positive, got {sample_rate}"
        );
        let windowed = window.apply(signal);
        Self::from_fft(&fft_real(&windowed), sample_rate)
    }

    /// Builds the single-sided spectrum from a precomputed full FFT of a
    /// real signal (e.g. [`fft_real`] output or one half of
    /// [`crate::fft::fft_real_pair`]). The caller is responsible for any
    /// windowing.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not finite and positive or `spec` is
    /// empty.
    pub fn from_fft(spec: &[Complex], sample_rate: f64) -> Self {
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample rate must be positive, got {sample_rate}"
        );
        assert!(!spec.is_empty(), "spectrum needs at least one bin");
        let n_fft = spec.len();
        let half = n_fft / 2 + 1;
        let magnitudes: Vec<f64> = spec[..half.min(n_fft)].iter().map(|z| z.abs()).collect();
        Self {
            magnitudes,
            bin_width: sample_rate / n_fft as f64,
        }
    }

    /// [`Spectrum::from_fft`] writing into recycled magnitude storage:
    /// `storage` is cleared, refilled with the non-redundant half's
    /// magnitudes (identical bits to `from_fft`) and owned by the
    /// returned spectrum — reclaim it afterwards with
    /// [`Spectrum::into_magnitudes`]. This is what lets the batch
    /// feature path run allocation-free per stream: magnitude buffers
    /// cycle through the per-thread scratch arena instead of the heap.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not finite and positive or `spec` is
    /// empty.
    pub fn from_fft_into(spec: &[Complex], sample_rate: f64, mut storage: Vec<f64>) -> Self {
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample rate must be positive, got {sample_rate}"
        );
        assert!(!spec.is_empty(), "spectrum needs at least one bin");
        let n_fft = spec.len();
        let half = n_fft / 2 + 1;
        storage.clear();
        storage.extend(spec[..half.min(n_fft)].iter().map(|z| z.abs()));
        Self {
            magnitudes: storage,
            bin_width: sample_rate / n_fft as f64,
        }
    }

    /// Consumes the spectrum and returns its magnitude storage, so
    /// arena-backed callers can recycle the allocation for the next
    /// stream.
    pub fn into_magnitudes(self) -> Vec<f64> {
        self.magnitudes
    }

    /// Builds a spectrum directly from magnitudes — used by tests and by
    /// the batch feature path, whose pair-FFT split writes single-sided
    /// magnitudes straight into recycled arena storage.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not finite and positive or `magnitudes` is
    /// empty.
    pub fn from_magnitudes(magnitudes: Vec<f64>, bin_width: f64) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin width must be positive"
        );
        assert!(!magnitudes.is_empty(), "spectrum needs at least one bin");
        Self {
            magnitudes,
            bin_width,
        }
    }

    /// Magnitudes, one per bin, starting at DC.
    pub fn magnitudes(&self) -> &[f64] {
        &self.magnitudes
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.magnitudes.len()
    }

    /// Returns `true` if the spectrum has no bins (never the case for
    /// spectra produced by [`Spectrum::from_signal`]).
    pub fn is_empty(&self) -> bool {
        self.magnitudes.is_empty()
    }

    /// Width of one frequency bin in Hz.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Center frequency of bin `k` in Hz.
    pub fn frequency(&self, k: usize) -> f64 {
        k as f64 * self.bin_width
    }

    /// The Nyquist frequency covered by this spectrum.
    pub fn max_frequency(&self) -> f64 {
        self.frequency(self.magnitudes.len().saturating_sub(1))
    }

    /// Index of the largest-magnitude bin (DC included).
    pub fn peak_bin(&self) -> usize {
        self.magnitudes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    /// Local maxima above `threshold_ratio · max_magnitude`, DC excluded.
    ///
    /// Used by the spectral-roughness feature, which evaluates the
    /// Plomp–Levelt dissonance between all pairs of peaks.
    pub fn peaks(&self, threshold_ratio: f64) -> Vec<Peak> {
        self.peaks_with_max(threshold_ratio, None)
    }

    /// [`Spectrum::peaks`] with an optionally precomputed maximum non-DC
    /// magnitude, so callers that already scanned the body (the fused
    /// spectral-feature kernel) do not pay a second max fold.
    ///
    /// `max` must equal `m[1..].iter().cloned().fold(0.0, f64::max)` when
    /// provided; passing `None` computes it here.
    pub fn peaks_with_max(&self, threshold_ratio: f64, max: Option<f64>) -> Vec<Peak> {
        let m = &self.magnitudes;
        if m.len() < 3 {
            return Vec::new();
        }
        let max = max.unwrap_or_else(|| m[1..].iter().cloned().fold(0.0, f64::max));
        let thr = max * threshold_ratio.clamp(0.0, 1.0);
        let mut peaks = Vec::new();
        for k in 1..m.len() - 1 {
            if m[k] >= thr && m[k] > m[k - 1] && m[k] >= m[k + 1] && m[k] > 0.0 {
                peaks.push(Peak {
                    frequency: self.frequency(k),
                    magnitude: m[k],
                });
            }
        }
        peaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq_bin: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq_bin as f64 * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn spectrum_length_is_half_plus_one() {
        let spec = Spectrum::from_signal(&tone(4, 64), 64.0, Window::Rectangular);
        assert_eq!(spec.len(), 33);
        assert!((spec.bin_width() - 1.0).abs() < 1e-12);
        assert!((spec.max_frequency() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn peak_at_tone_frequency() {
        let spec = Spectrum::from_signal(&tone(10, 128), 256.0, Window::Rectangular);
        assert_eq!(spec.peak_bin(), 10);
        assert!((spec.frequency(10) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn two_tone_signal_yields_two_peaks() {
        let n = 256;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * 12.0 * t).sin()
                    + 0.8 * (2.0 * std::f64::consts::PI * 40.0 * t).sin()
            })
            .collect();
        let spec = Spectrum::from_signal(&x, n as f64, Window::Rectangular);
        let peaks = spec.peaks(0.5);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].frequency - 12.0).abs() < 1e-9);
        assert!((peaks[1].frequency - 40.0).abs() < 1e-9);
        assert!(peaks[0].magnitude > peaks[1].magnitude);
    }

    #[test]
    fn peaks_with_precomputed_max_matches_plain_peaks() {
        let n = 256;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * 12.0 * t).sin()
                    + 0.8 * (2.0 * std::f64::consts::PI * 40.0 * t).sin()
            })
            .collect();
        let spec = Spectrum::from_signal(&x, n as f64, Window::Rectangular);
        let max = spec.magnitudes()[1..].iter().cloned().fold(0.0, f64::max);
        assert_eq!(spec.peaks(0.1), spec.peaks_with_max(0.1, Some(max)));
        assert_eq!(spec.peaks(0.5), spec.peaks_with_max(0.5, Some(max)));
    }

    #[test]
    fn constant_signal_is_all_dc() {
        let spec = Spectrum::from_signal(&[5.0; 32], 32.0, Window::Rectangular);
        assert_eq!(spec.peak_bin(), 0);
        assert!(spec.peaks(0.1).is_empty());
    }

    #[test]
    fn empty_signal_produces_single_bin() {
        let spec = Spectrum::from_signal(&[], 10.0, Window::Hann);
        assert_eq!(spec.len(), 1);
        assert!(!spec.is_empty());
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_sample_rate_panics() {
        Spectrum::from_signal(&[1.0], 0.0, Window::Hann);
    }

    /// `from_fft_into` is bit-identical to `from_fft` and fully
    /// overwrites whatever garbage the recycled storage held, including
    /// storage longer than the output.
    #[test]
    fn from_fft_into_matches_from_fft_and_scrubs_storage() {
        for n in [1usize, 2, 8, 64] {
            let spec: Vec<Complex> = (0..n)
                .map(|k| Complex::new((k as f64 * 0.7).sin() * 5.0, (k as f64 * 1.1).cos()))
                .collect();
            let want = Spectrum::from_fft(&spec, 128.0);
            let dirty = vec![f64::NAN; 500];
            let got = Spectrum::from_fft_into(&spec, 128.0, dirty);
            assert_eq!(got.len(), want.len(), "n={n}");
            assert_eq!(got.bin_width().to_bits(), want.bin_width().to_bits());
            for (a, b) in got.magnitudes().iter().zip(want.magnitudes()) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
            let reclaimed = got.into_magnitudes();
            assert_eq!(reclaimed.len(), want.len());
        }
    }
}
