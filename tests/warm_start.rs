//! Warm-start contract on the 202-group sybil-replay campaign: an epoch
//! that re-runs Algorithm 2 on unchanged reports, seeded with the previous
//! epoch's group weights, must converge in ≤2 iterations (vs ~5 cold) and
//! land on the *same bits* as a cold run's fixed point.
//!
//! The bit-identity anchor: seeding line 7 with the cold run's final
//! weights reproduces its final truths bitwise (same Eq. 5 arithmetic the
//! cold run ended on), so the warm run's single iteration computes exactly
//! what cold iteration n+1 would — and a cold run capped at n+1 iterations
//! is the reference fixed point it must match bit-for-bit. (An exact
//! `delta == 0` fixed point is unreachable here: at 520 tasks the loop
//! settles into a 1–2 ulp limit cycle, so the anchor is the trajectory
//! iterate, not a zero-delta state.)

use sybil_td::core::{AgTr, FrameworkConfig, PerfectGrouping, SybilResistantTd};
use sybil_td::platform::{EpochConfig, EpochEngine};
use sybil_td::runtime::rng::{Rng, SeedableRng, StdRng};
use sybil_td::truth::{ConvergenceCriterion, SensingData};

/// The determinism suite's large-campaign shape: 220 accounts over 520
/// tasks at 20% density, 200 legit singleton groups plus the Sybil tail
/// collapsed into 2 replay groups → 202 groups.
fn sybil_replay_campaign(seed: u64) -> (SensingData, Vec<usize>) {
    const ACCOUNTS: usize = 220;
    const TASKS: usize = 520;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = SensingData::new(TASKS);
    let mut labels = Vec::with_capacity(ACCOUNTS);
    for a in 0..ACCOUNTS {
        labels.push(if a < 200 { a } else { 200 + (a - 200) / 10 });
        for t in 0..TASKS {
            if rng.gen_range(0f64..1.0) < 0.2 {
                let value = (t as f64 * 0.31).sin() * 15.0 + rng.gen_range(-2f64..2.0);
                data.add_report(a, t, value, t as f64 + a as f64 * 1e-3);
            }
        }
    }
    (data, labels)
}

fn bits(truths: &[Option<f64>]) -> Vec<Option<u64>> {
    truths.iter().map(|t| t.map(f64::to_bits)).collect()
}

fn weight_bits(weights: &[f64]) -> Vec<u64> {
    weights.iter().map(|w| w.to_bits()).collect()
}

#[test]
fn warm_started_epoch_reaches_the_cold_fixed_point_in_at_most_two_iterations() {
    let (data, labels) = sybil_replay_campaign(11);
    let framework = SybilResistantTd::new(PerfectGrouping::new(labels.clone()));

    // Epoch N: cold run at the default tolerance.
    let cold = framework.discover(&data, &[]);
    assert_eq!(cold.grouping.len(), 202);
    assert!(cold.converged);
    assert!(!cold.warm_started);
    assert!(
        cold.iterations >= 4,
        "cold start should need several iterations, took {}",
        cold.iterations
    );

    // Epoch N+1: unchanged reports, seeded with epoch N's weights.
    let warm = framework.discover_warm(&data, &[], Some(&cold.group_weights));
    assert!(warm.warm_started);
    assert!(warm.converged);
    assert!(
        warm.iterations <= 2,
        "warm start took {} iterations (cold took {})",
        warm.iterations,
        cold.iterations
    );

    // Reference fixed point: the cold trajectory run for exactly one more
    // iteration. Its first n deltas retrace the cold run; the warm run's
    // one iteration must be bit-identical to its last — truths, weights
    // and the convergence-trace entry alike.
    let capped = FrameworkConfig {
        convergence: ConvergenceCriterion::new(cold.iterations + 1, 0.0),
        ..FrameworkConfig::default()
    };
    let reference =
        SybilResistantTd::with_config(PerfectGrouping::new(labels), capped).discover(&data, &[]);
    assert_eq!(reference.iterations, cold.iterations + 1);
    assert_eq!(
        weight_bits(&reference.convergence_trace[..cold.iterations]),
        weight_bits(&cold.convergence_trace),
        "the capped run must retrace the cold trajectory"
    );
    assert_eq!(
        bits(&warm.truths),
        bits(&reference.truths),
        "warm truths must be bit-identical to the cold fixed point"
    );
    assert_eq!(
        weight_bits(&warm.group_weights),
        weight_bits(&reference.group_weights),
        "warm group weights must match the cold fixed point bitwise"
    );
    assert_eq!(
        warm.convergence_trace[0].to_bits(),
        reference.convergence_trace[cold.iterations].to_bits(),
        "the warm iteration is the cold run's next iteration, bit-for-bit"
    );

    // And semantically the two fixed points coincide: the warm epoch moves
    // no truth by more than the convergence tolerance.
    for (w, c) in warm.truths.iter().zip(&cold.truths) {
        let (w, c) = (w.unwrap(), c.unwrap());
        assert!((w - c).abs() <= 1e-6, "warm {w} vs cold {c}");
    }

    // A seed that no longer fits the grouping is ignored, not trusted:
    // the run falls back to the cold path.
    let stale = framework.discover_warm(&data, &[], Some(&cold.group_weights[..10]));
    assert!(!stale.warm_started);
    assert_eq!(stale.iterations, cold.iterations);
    assert_eq!(bits(&stale.truths), bits(&cold.truths));
}

#[test]
fn incremental_regrouping_keeps_the_steady_state_warm_path() {
    // The incremental epoch path must preserve the warm-start contract:
    // with no new reports the cached edges are all kept (zero fresh
    // distance evaluations), the grouping shape is unchanged, and the
    // seeded Algorithm 2 run settles in ≤2 iterations from the previous
    // epoch's weights.
    let (data, _) = sybil_replay_campaign(11);
    let mut engine = EpochEngine::new(
        SybilResistantTd::new(AgTr::default()),
        data.num_tasks(),
        EpochConfig::default(),
    );
    for r in data.reports() {
        engine
            .ingest(r.account, r.task, r.value, r.timestamp)
            .expect("ingest");
    }

    let first = engine.run_epoch_incremental();
    assert!(!first.warm_started, "epoch 1 has no seed");
    assert!(
        first.iterations >= 3,
        "cold epoch should need several iterations, took {}",
        first.iterations
    );

    let second = engine.run_epoch_incremental();
    assert!(
        second.warm_started,
        "steady-state epoch must reuse the seed"
    );
    assert!(second.converged);
    assert!(
        second.iterations <= 2,
        "steady-state warm epoch took {} iterations (cold took {})",
        second.iterations,
        first.iterations
    );
    // Nothing was dirty, so the regrouping is a pure republish.
    assert_eq!(second.labels, first.labels);
    assert_eq!(second.num_reports, first.num_reports);
    for (w, c) in second.truths.iter().zip(&first.truths) {
        let (w, c) = (w.unwrap(), c.unwrap());
        assert!(
            (w - c).abs() <= 1e-6,
            "steady-state truth moved: {w} vs {c}"
        );
    }
}
