//! Legitimate-user measurement quality.

use srtd_fingerprint::noise::normal;
use srtd_runtime::json::{Json, ToJson};
use srtd_runtime::rng::Rng;

/// How well a legitimate user measures: a systematic bias (device antenna,
/// holding style) plus random noise (environment, timing).
///
/// "In practice, the quality of sensing data from different users varies"
/// (§III-A) — truth discovery exists precisely because these profiles
/// differ and are unknown to the platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementProfile {
    /// Systematic offset added to every measurement (dBm).
    pub bias: f64,
    /// Standard deviation of per-measurement noise (dBm).
    pub noise_std: f64,
}

impl MeasurementProfile {
    /// Draws a random user profile: bias `~ N(0, 1.5)` dBm and noise σ
    /// `~ U(0.5, 3.5)` dBm, spanning careful to sloppy participants.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            bias: normal(rng, 0.0, 1.5),
            noise_std: rng.gen_range(0.5..3.5),
        }
    }

    /// A perfectly calibrated profile (tests and worked examples).
    pub fn exact() -> Self {
        Self {
            bias: 0.0,
            noise_std: 0.0,
        }
    }
}

impl ToJson for MeasurementProfile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bias", self.bias.to_json()),
            ("noise_std", self.noise_std.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::SeedableRng;
    use srtd_runtime::rng::StdRng;

    #[test]
    fn sampled_profiles_vary() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = MeasurementProfile::sample(&mut rng);
        let b = MeasurementProfile::sample(&mut rng);
        assert_ne!(a, b);
        assert!(a.noise_std >= 0.5 && a.noise_std < 3.5);
    }

    #[test]
    fn exact_profile_is_noise_free() {
        let p = MeasurementProfile::exact();
        assert_eq!(p.bias, 0.0);
        assert_eq!(p.noise_std, 0.0);
    }
}
