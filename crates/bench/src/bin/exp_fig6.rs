//! Experiment `fig6` — reproduces Fig. 6(a–c): ARI of the three account
//! grouping methods versus Sybil-attacker activeness, for legitimate
//! activeness 0.2 / 0.5 / 1.0.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_fig6 [seeds]`

use srtd_bench::runners::Grouper;
use srtd_bench::sweep::seed_average;
use srtd_bench::table::Table;
use srtd_bench::{ATTACKER_ACTIVENESS_GRID, DEFAULT_SEEDS, LEGIT_ACTIVENESS_SETTINGS};
use srtd_sensing::ScenarioConfig;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    println!("Fig. 6 — ARI of account grouping methods ({seeds} seeds per cell)\n");
    let base = ScenarioConfig::paper_default();

    let mut curves: Vec<Vec<Vec<f64>>> = Vec::new(); // [setting][grouper][alpha]
    for (i, &legit) in LEGIT_ACTIVENESS_SETTINGS.iter().enumerate() {
        println!(
            "({}) legitimate accounts' activeness = {legit}\n",
            ["a", "b", "c"][i]
        );
        let mut header = vec!["attacker activeness".to_string()];
        header.extend(Grouper::ALL.iter().map(|g| g.name().to_string()));
        let mut t = Table::new(header);
        let mut per_grouper: Vec<Vec<f64>> = vec![Vec::new(); Grouper::ALL.len()];
        for &attacker in &ATTACKER_ACTIVENESS_GRID {
            let mut row = vec![format!("{attacker:.1}")];
            for (gi, grouper) in Grouper::ALL.iter().enumerate() {
                let ari = seed_average(&base, legit, attacker, seeds, |s| grouper.ari_on(s));
                per_grouper[gi].push(ari);
                row.push(format!("{ari:.3}"));
            }
            t.add_row(row);
        }
        println!("{}", t.render());
        curves.push(per_grouper);
    }

    println!("expected shape (paper): AG-TR >= AG-TS at every setting; AG-TS");
    println!("and AG-TR improve (or hold) as activeness grows; AG-FP trails");
    println!("because same-model devices are near-indistinguishable.");

    // Shape checks on the averaged curves.
    let mut tr_wins = 0usize;
    let mut cells = 0usize;
    for per_grouper in &curves {
        for (tr, ts) in per_grouper[2].iter().zip(&per_grouper[1]) {
            cells += 1;
            if tr + 1e-9 >= *ts {
                tr_wins += 1;
            }
        }
    }
    assert!(
        tr_wins * 10 >= cells * 8,
        "AG-TR should dominate AG-TS in >=80% of cells: {tr_wins}/{cells}"
    );
    // AG-TR at full activeness should be strong in every setting.
    for per_grouper in &curves {
        let last = *per_grouper[2].last().expect("grid non-empty");
        assert!(last > 0.6, "AG-TR end-of-curve ARI too low: {last}");
    }
    println!("\n[shape checks passed]");
}
