//! Dynamic Time Warping (Berndt & Clifford 1994) with the path-length
//! normalization of Eq. 7 and an optional Sakoe–Chiba band.

/// DTW distance calculator.
///
/// The default configuration reproduces Eq. 7 of the paper: squared point
/// distances, unconstrained warping, and `sqrt(Σ ω_k / K)` normalization by
/// the warping-path length `K`. A Sakoe–Chiba band can be enabled with
/// [`Dtw::with_band`] to bound the warp for long series; the band is
/// automatically widened to `|m − n|` so a feasible path always exists.
///
/// # Examples
///
/// ```
/// use srtd_timeseries::Dtw;
///
/// let d = Dtw::new().distance(&[1.0, 2.0], &[1.0, 2.0, 2.0]);
/// assert!(d.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dtw {
    band: Option<usize>,
    raw: bool,
}

/// What one run of the shared dynamic program produced.
struct DpOutcome {
    /// Cumulative squared cost `r(m, n)` (infinite when abandoned or no
    /// feasible path exists).
    total: f64,
    /// Length `K` of the best warping path reaching `(m, n)`.
    steps: usize,
    /// Band cells actually evaluated before finishing or abandoning.
    visited: u64,
    /// `true` when every reachable cell of some row exceeded the budget.
    abandoned: bool,
}

impl Dtw {
    /// Unconstrained DTW with Eq. 7 normalization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts warping to a Sakoe–Chiba band of half-width `w`.
    pub fn with_band(mut self, w: usize) -> Self {
        self.band = Some(w);
        self
    }

    /// The configured Sakoe–Chiba half-width, if any.
    pub fn band(&self) -> Option<usize> {
        self.band
    }

    /// `true` when distances are reported as the raw cumulative cost
    /// rather than the Eq. 7 normalized form.
    pub fn is_raw(&self) -> bool {
        self.raw
    }

    /// Returns the raw cumulative squared cost `r(m, n)` instead of the
    /// Eq. 7 normalized form.
    ///
    /// The worked example in Fig. 4(a) of the paper tabulates exactly this
    /// quantity (e.g. `DTW(X_1, X_2) = 2` for the Table III task series),
    /// so the example-reproduction code uses raw mode.
    pub fn raw(mut self) -> Self {
        self.raw = true;
        self
    }

    /// The DTW distance between two series.
    ///
    /// Conventions for degenerate inputs: two empty series are identical
    /// (`0.0`); an empty series against a non-empty one is infinitely far
    /// (`f64::INFINITY`), so accounts with no submissions never group with
    /// active ones.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        let (m, n) = (a.len(), b.len());
        match (m, n) {
            (0, 0) => return 0.0,
            (0, _) | (_, 0) => return f64::INFINITY,
            _ => {}
        }
        // One DP table of m·n cells per call; cheap to count here, far too
        // hot to count per cell.
        srtd_runtime::obs::counter_add("timeseries.dtw.calls", 1);
        srtd_runtime::obs::counter_add("timeseries.dtw.cells", (m * n) as u64);
        self.finish(self.dp(a, b, f64::INFINITY))
    }

    /// [`Dtw::distance`], early-abandoned against an upper bound `ub` on
    /// the **raw cumulative cost** `r(m, n)`.
    ///
    /// The dynamic program abandons as soon as every reachable band cell
    /// of a row exceeds `ub` — the cumulative cost is non-decreasing along
    /// any warping path, so the final cost then provably exceeds `ub` too
    /// — and reports `f64::INFINITY`. Whenever the true raw cost is `≤ ub`
    /// the optimal path keeps at least one cell per row within budget, the
    /// program runs to completion over the identical cell sequence, and
    /// the result is **bit-identical** to [`Dtw::distance`].
    ///
    /// `ub` is always in raw-cost space, even for a normalized (non-raw)
    /// `Dtw` — callers converting a normalized threshold must over-
    /// approximate (e.g. `ub = t² · (m + n − 1)` bounds any path length).
    /// A negative `ub` abandons on the first row unless the series are
    /// degenerate. Degenerate inputs follow the [`Dtw::distance`]
    /// conventions regardless of `ub`.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtd_timeseries::Dtw;
    ///
    /// let dtw = Dtw::new().raw();
    /// let a = [0.0, 1.0, 2.0];
    /// let b = [5.0, 6.0, 7.0];
    /// let exact = dtw.distance(&a, &b);
    /// assert_eq!(dtw.distance_upper_bounded(&a, &b, exact), exact);
    /// assert_eq!(dtw.distance_upper_bounded(&a, &b, 1.0), f64::INFINITY);
    /// ```
    pub fn distance_upper_bounded(&self, a: &[f64], b: &[f64], ub: f64) -> f64 {
        match (a.len(), b.len()) {
            (0, 0) => return 0.0,
            (0, _) | (_, 0) => return f64::INFINITY,
            _ => {}
        }
        srtd_runtime::obs::counter_add("timeseries.dtw.bounded_calls", 1);
        let out = self.dp(a, b, ub);
        srtd_runtime::obs::counter_add("timeseries.dtw.cells", out.visited);
        if out.abandoned {
            srtd_runtime::obs::counter_add("timeseries.dtw.early_abandoned", 1);
            return f64::INFINITY;
        }
        self.finish(out)
    }

    /// The shared dynamic program: rolling-row cumulative cost with an
    /// optional Sakoe–Chiba band and a per-row abandon check against `ub`
    /// (pass `f64::INFINITY` to disable it — the check can then never
    /// fire, so [`Dtw::distance`] pays nothing for sharing this loop).
    fn dp(&self, a: &[f64], b: &[f64], ub: f64) -> DpOutcome {
        let (m, n) = (a.len(), b.len());
        // Effective band half-width: must be at least |m-n| for feasibility.
        let w = self
            .band
            .map(|w| w.max(m.abs_diff(n)))
            .unwrap_or(usize::MAX);

        // cost[j], steps[j] hold r(i, j) and the length K of the best path
        // reaching (i, j); rolling rows keep memory at O(n).
        const INF: f64 = f64::INFINITY;
        let mut prev_cost = vec![INF; n + 1];
        let mut prev_steps = vec![0usize; n + 1];
        let mut cur_cost = vec![INF; n + 1];
        let mut cur_steps = vec![0usize; n + 1];
        prev_cost[0] = 0.0;
        let mut visited = 0u64;

        for i in 1..=m {
            cur_cost.fill(INF);
            cur_cost[0] = INF;
            let lo = i.saturating_sub(w).max(1);
            // `w >= n` covers the whole row (and sidesteps `i + w`
            // overflow for huge explicit bands).
            let hi = if w >= n { n } else { (i + w).min(n) };
            let mut row_min = INF;
            for j in lo..=hi {
                let d = a[i - 1] - b[j - 1];
                let cost = d * d;
                // Predecessors: (i-1, j-1), (i-1, j), (i, j-1).
                let (mut best, mut steps) = (prev_cost[j - 1], prev_steps[j - 1]);
                if prev_cost[j] < best {
                    best = prev_cost[j];
                    steps = prev_steps[j];
                }
                if cur_cost[j - 1] < best {
                    best = cur_cost[j - 1];
                    steps = cur_steps[j - 1];
                }
                // The virtual origin (0,0) starts the path at (1,1).
                if i == 1 && j == 1 {
                    best = 0.0;
                    steps = 0;
                }
                if best.is_finite() {
                    cur_cost[j] = best + cost;
                    cur_steps[j] = steps + 1;
                }
                if cur_cost[j] < row_min {
                    row_min = cur_cost[j];
                }
            }
            visited += (hi + 1 - lo) as u64;
            if row_min > ub {
                return DpOutcome {
                    total: INF,
                    steps: 0,
                    visited,
                    abandoned: true,
                };
            }
            std::mem::swap(&mut prev_cost, &mut cur_cost);
            std::mem::swap(&mut prev_steps, &mut cur_steps);
        }
        DpOutcome {
            total: prev_cost[n],
            steps: prev_steps[n],
            visited,
            abandoned: false,
        }
    }

    /// Applies the Eq. 7 normalization (or not, in raw mode) to a
    /// completed DP run.
    fn finish(&self, out: DpOutcome) -> f64 {
        if !out.total.is_finite() || out.steps == 0 {
            return f64::INFINITY;
        }
        if self.raw {
            out.total
        } else {
            (out.total / out.steps as f64).sqrt()
        }
    }
}

/// Unconstrained DTW distance (Eq. 7), shorthand for
/// `Dtw::new().distance(a, b)`.
///
/// # Examples
///
/// ```
/// let d = srtd_timeseries::dtw(&[1.0, 3.0], &[2.0, 3.0]);
/// assert!(d > 0.0);
/// ```
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    Dtw::new().distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn identical_series_have_zero_distance() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(dtw(&xs, &xs), 0.0);
    }

    #[test]
    fn single_points() {
        assert_eq!(dtw(&[2.0], &[5.0]), 3.0); // sqrt(9/1)
        assert_eq!(dtw(&[2.0], &[2.0]), 0.0);
    }

    #[test]
    fn empty_series_conventions() {
        assert_eq!(dtw(&[], &[]), 0.0);
        assert_eq!(dtw(&[], &[1.0]), f64::INFINITY);
        assert_eq!(dtw(&[1.0], &[]), f64::INFINITY);
    }

    #[test]
    fn warping_absorbs_time_shift() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0]; // delayed copy
        let euclid_like = dtw(&[0.0, 1.0, 2.0], &[5.0, 6.0, 7.0]);
        assert!(dtw(&a, &b) < 1e-9);
        assert!(euclid_like > 1.0);
    }

    #[test]
    fn different_lengths_are_supported() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 1.5, 2.0, 2.5, 3.0];
        let d = dtw(&a, &b);
        assert!(d.is_finite());
        assert!(d < 0.5);
    }

    #[test]
    fn band_zero_equals_euclidean_for_equal_lengths() {
        let a = [1.0, 2.0, 5.0, 3.0];
        let b = [0.0, 2.0, 4.0, 3.0];
        let banded = Dtw::new().with_band(0).distance(&a, &b);
        // Band 0 forces the diagonal path: sqrt(mean of squared diffs).
        let want = ((1.0 + 0.0 + 1.0 + 0.0) / 4.0f64).sqrt();
        assert!((banded - want).abs() < 1e-12);
    }

    #[test]
    fn band_widens_for_unequal_lengths() {
        let a = [1.0, 2.0];
        let b = [1.0, 1.0, 1.0, 2.0];
        let d = Dtw::new().with_band(0).distance(&a, &b);
        assert!(d.is_finite());
    }

    #[test]
    fn paper_fig4_task_series_values() {
        // Table III task series (tasks indexed 1..4):
        // account 1 performs {1,2,3,4}; account 2 performs {2,3};
        // accounts 4', 4'', 4''' perform {1,3,4}.
        let x1 = [1.0, 2.0, 3.0, 4.0];
        let x2 = [2.0, 3.0];
        let x4 = [1.0, 3.0, 4.0];
        // Sybil accounts have identical task series: distance 0 (Fig. 4a).
        assert_eq!(dtw(&x4, &x4), 0.0);
        // Fig. 4(a) tabulates the raw cumulative cost: DTW(X_1, X_2) = 2
        // and DTW(X_1, X_4') = 1.
        let raw = Dtw::new().raw();
        assert!((raw.distance(&x1, &x2) - 2.0).abs() < 1e-12);
        assert!((raw.distance(&x1, &x4) - 1.0).abs() < 1e-12);
        assert!((raw.distance(&x2, &x4) - 2.0).abs() < 1e-12);
        assert!(dtw(&x1, &x4) < dtw(&x1, &x2));
    }

    fn vals(rng: &mut srtd_runtime::rng::StdRng, len: std::ops::Range<usize>) -> Vec<f64> {
        prop::vec_with(rng, len, |r| r.gen_range(-100f64..100.0))
    }

    #[test]
    fn nonnegative_and_symmetric() {
        prop::check(
            |rng| (vals(rng, 1..30), vals(rng, 1..30)),
            |(a, b)| {
                let ab = dtw(a, b);
                let ba = dtw(b, a);
                prop_assert!(ab >= 0.0);
                prop_assert!((ab - ba).abs() < 1e-9 * ab.max(1.0));
                Ok(())
            },
        );
    }

    #[test]
    fn identity_of_indiscernibles() {
        prop::check(
            |rng| vals(rng, 1..30),
            |a| {
                prop_assert!(dtw(a, a) < 1e-12);
                Ok(())
            },
        );
    }

    #[test]
    fn banded_at_least_unconstrained_raw() {
        prop::check(
            |rng| (vals(rng, 1..25), vals(rng, 1..25), rng.gen_range(0usize..5)),
            |(a, b, w)| {
                let w = *w;
                // In raw cumulative-cost mode a constrained minimum can never
                // beat the unconstrained one. (Under Eq. 7's path-length
                // normalization the inequality can flip — a longer banded path
                // may average lower — so the guarantee is raw-only.)
                let full = Dtw::new().raw().distance(a, b);
                let banded = Dtw::new().raw().with_band(w).distance(a, b);
                prop_assert!(banded + 1e-9 >= full);
                // Normalized banded distances stay well-defined regardless.
                let norm = Dtw::new().with_band(w).distance(a, b);
                prop_assert!(norm.is_finite() && norm >= 0.0);
                Ok(())
            },
        );
    }

    #[test]
    fn bounded_by_max_pointwise_distance() {
        prop::check(
            |rng| (vals(rng, 1..25), vals(rng, 1..25)),
            |(a, b)| {
                let d = dtw(a, b);
                let max_gap = a
                    .iter()
                    .flat_map(|x| b.iter().map(move |y| (x - y).abs()))
                    .fold(0.0, f64::max);
                prop_assert!(d <= max_gap + 1e-9);
                Ok(())
            },
        );
    }

    #[test]
    fn upper_bounded_degenerate_conventions_ignore_the_budget() {
        for ub in [f64::INFINITY, 1.0, 0.0, -1.0] {
            let dtw = Dtw::new().raw();
            assert_eq!(dtw.distance_upper_bounded(&[], &[], ub), 0.0);
            assert_eq!(dtw.distance_upper_bounded(&[], &[1.0], ub), f64::INFINITY);
            assert_eq!(dtw.distance_upper_bounded(&[1.0], &[], ub), f64::INFINITY);
        }
        // Length-1 series: exact within budget, infinite beyond it.
        let dtw = Dtw::new().raw();
        assert_eq!(dtw.distance_upper_bounded(&[2.0], &[5.0], 9.0), 9.0);
        assert_eq!(
            dtw.distance_upper_bounded(&[2.0], &[5.0], 8.9),
            f64::INFINITY
        );
        assert_eq!(dtw.distance_upper_bounded(&[2.0], &[2.0], 0.0), 0.0);
    }

    #[test]
    fn upper_bounded_huge_explicit_band_does_not_overflow() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 3.0];
        let dtw = Dtw::new().raw().with_band(usize::MAX - 1);
        assert_eq!(
            dtw.distance_upper_bounded(&a, &b, f64::INFINITY),
            Dtw::new().raw().distance(&a, &b)
        );
    }

    /// The early-abandoning DP is bit-identical to the plain one whenever
    /// the true raw cost fits the budget, and only ever reports `∞`
    /// (never a wrong finite value) when it does not — in raw and
    /// normalized mode, banded and not, including empty/len-1 series.
    #[test]
    fn upper_bounded_is_exact_within_budget() {
        prop::check(
            |rng| {
                (
                    vals(rng, 0..20),
                    vals(rng, 0..20),
                    rng.gen_range(0usize..4), // 0 ⇒ unbanded
                    rng.gen_range(0f64..1.5),
                )
            },
            |(a, b, band, ub_frac)| {
                for dtw in [Dtw::new().raw(), Dtw::new()] {
                    let dtw = if *band == 0 {
                        dtw
                    } else {
                        dtw.with_band(band - 1)
                    };
                    let exact = dtw.distance(a, b);
                    let raw_exact = Dtw { raw: true, ..dtw }.distance(a, b);
                    // A budget at least the true raw cost: bit-identical.
                    if raw_exact.is_finite() {
                        let got = dtw.distance_upper_bounded(a, b, raw_exact);
                        prop_assert!(
                            got.to_bits() == exact.to_bits(),
                            "within budget must be exact: {got} vs {exact}"
                        );
                    }
                    // An arbitrary budget: either the exact value (and the
                    // raw cost really fit) or ∞ (and it really did not).
                    let ub = raw_exact * ub_frac;
                    let got = dtw.distance_upper_bounded(a, b, ub);
                    if got.is_finite() || exact.is_infinite() {
                        prop_assert!(got.to_bits() == exact.to_bits());
                    } else {
                        prop_assert!(raw_exact > ub, "abandoned though {raw_exact} <= {ub}");
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn wide_band_matches_unconstrained() {
        prop::check(
            |rng| (vals(rng, 1..20), vals(rng, 1..20)),
            |(a, b)| {
                let full = dtw(a, b);
                let wide = Dtw::new().with_band(50).distance(a, b);
                prop_assert!((full - wide).abs() < 1e-9);
                Ok(())
            },
        );
    }
}
