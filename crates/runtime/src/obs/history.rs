//! The epoch-scoped telemetry timeline: windowed delta reports and
//! per-window trace trees.
//!
//! A *window* brackets one unit of service work (an epoch, a CLI seed
//! sweep iteration). [`super::window_begin`] opens trace collection;
//! [`super::window_end`] closes the window by computing a **delta
//! [`Report`]** against the registry state at the previous window end
//! (counter and histogram-bucket deltas, the events emitted since, the
//! current gauge values) and pushing the result into a bounded in-memory
//! ring buffer served by [`super::history`].
//!
//! Because every delta is taken against the *previous* window boundary —
//! not against `window_begin` — consecutive windows tile the timeline
//! without gaps: summing the counter deltas of all retained windows
//! recovers the cumulative totals as of the last boundary. The golden
//! test suite pins exactly that identity.
//!
//! The trace tree upgrades [`super::span`] guards into a hierarchy: a
//! thread-local parent stack gives each span its ancestry, and completed
//! spans on the window-opening thread are folded into a name-keyed tree.
//! Node structure and per-node counts depend only on which stages ran
//! (worker-thread spans and spans inside an inlined `parallel_map`
//! fallback are excluded symmetrically), so they are part of the
//! deterministic export; per-node wall-clock totals are not, exactly as
//! with flat spans today.

use super::report::{histograms_json, Report};
use super::store::{Store, TraceBuild};
use crate::json::{Json, ToJson};

/// One node of a completed window's trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Span name of this stage.
    pub name: &'static str,
    /// Completed guards of this exact stage path within the window. An
    /// ancestor that never closed inside the window reports 0.
    pub count: u64,
    /// Total wall-clock nanoseconds across those guards (excluded from
    /// the deterministic export).
    pub total_ns: u64,
    /// Child stages, sorted by name.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    fn from_build(name: &'static str, build: &TraceBuild) -> Self {
        Self {
            name,
            count: build.count,
            total_ns: build.total_ns,
            children: build
                .children
                .iter()
                .map(|(&child, b)| TraceNode::from_build(child, b))
                .collect(),
        }
    }

    /// Full JSON (names, counts, wall-clock totals).
    fn node_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name)),
            ("count", self.count.to_json()),
            ("total_ns", self.total_ns.to_json()),
            (
                "children",
                Json::arr(self.children.iter().map(Self::node_json)),
            ),
        ])
    }

    /// Deterministic JSON (names and counts only — no wall clock).
    fn deterministic_node_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name)),
            ("count", self.count.to_json()),
            (
                "children",
                Json::arr(self.children.iter().map(Self::deterministic_node_json)),
            ),
        ])
    }

    /// Depth-first iteration over this node and every descendant's name.
    pub fn stage_names(&self) -> Vec<&'static str> {
        let mut out = vec![self.name];
        for child in &self.children {
            out.extend(child.stage_names());
        }
        out
    }
}

impl ToJson for TraceNode {
    fn to_json(&self) -> Json {
        self.node_json()
    }
}

/// One completed telemetry window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecord {
    /// 1-based window index since the last [`super::reset`].
    pub index: u64,
    /// Caller-supplied label (e.g. `epoch-3`).
    pub label: String,
    /// The windowed delta: counters and histograms as deltas against the
    /// previous window boundary, events emitted within the window, the
    /// gauge values at the window end. Spans are empty — the [`Self::trace`]
    /// tree replaces the flat aggregates inside a window.
    pub report: Report,
    /// Top-level stages of the window's trace tree.
    pub trace: Vec<TraceNode>,
}

impl WindowRecord {
    /// JSON of the **deterministic** subset: counter/histogram deltas,
    /// events, and the trace tree's structure and counts. Byte-identical
    /// across runs and worker-thread counts for deterministic workloads.
    pub fn deterministic_json(&self) -> String {
        Json::obj([
            ("window", self.index.to_json()),
            ("label", Json::str(self.label.as_str())),
            ("counters", counters_json(&self.report.counters)),
            (
                "histograms",
                histograms_json(&self.report.histograms, false),
            ),
            ("events", super::report::events_json(&self.report.events)),
            (
                "trace",
                Json::arr(self.trace.iter().map(TraceNode::deterministic_node_json)),
            ),
        ])
        .render()
    }

    /// Every stage name in the trace tree, depth-first.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.trace.iter().flat_map(TraceNode::stage_names).collect()
    }
}

impl ToJson for WindowRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("window", self.index.to_json()),
            ("label", Json::str(self.label.as_str())),
            ("counters", counters_json(&self.report.counters)),
            (
                "gauges",
                Json::Obj(
                    self.report
                        .gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "histograms",
                histograms_json(&self.report.histograms, false),
            ),
            ("events", super::report::events_json(&self.report.events)),
            (
                "trace",
                Json::arr(self.trace.iter().map(TraceNode::node_json)),
            ),
        ])
    }
}

fn counters_json(counters: &[(String, u64)]) -> Json {
    Json::Obj(
        counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect(),
    )
}

/// Closes the open window against `store`, advancing the baseline to the
/// current registry state and pushing the record into the ring buffer
/// (evicting the oldest beyond `capacity`). Returns `None` when no window
/// is open.
pub(super) fn end_window(store: &mut Store, label: &str, capacity: usize) -> Option<WindowRecord> {
    let open = store.window.open.take()?;

    let counters: Vec<(String, u64)> = store
        .counters
        .iter()
        .filter_map(|(k, &v)| {
            let base = store.window.base_counters.get(k).copied().unwrap_or(0);
            (v > base).then(|| (k.clone(), v - base))
        })
        .collect();
    let histograms = store
        .histograms
        .iter()
        .filter_map(|(name, h)| {
            let base = store.window.base_histograms.get(name);
            let delta_count = h.count - base.map_or(0, |b| b.count);
            if delta_count == 0 {
                return None;
            }
            let mut delta = super::store::Histogram {
                count: delta_count,
                sum: h.sum - base.map_or(0.0, |b| b.sum),
                ..Default::default()
            };
            for (slot, &c) in h.buckets.iter().enumerate() {
                delta.buckets[slot] = c - base.map_or(0, |b| b.buckets[slot]);
            }
            Some((name.clone(), delta))
        })
        .collect();
    let events = store.events[store.window.base_events..].to_vec();
    let gauges = store.gauges.clone();

    let delta_store = Store {
        counters: counters.into_iter().collect(),
        gauges,
        histograms,
        spans: Default::default(),
        events,
        window: Default::default(),
    };
    let report = Report::from_store(&delta_store);

    // Advance the baseline: the next window's deltas start here.
    store.window.base_counters = store.counters.clone();
    store.window.base_histograms = store.histograms.clone();
    store.window.base_events = store.events.len();
    store.window.ended += 1;

    let record = WindowRecord {
        index: store.window.ended,
        label: label.to_string(),
        report,
        trace: open
            .trace
            .children
            .iter()
            .map(|(&name, build)| TraceNode::from_build(name, build))
            .collect(),
    };
    store.window.history.push_back(record.clone());
    while store.window.history.len() > capacity.max(1) {
        store.window.history.pop_front();
    }
    Some(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &'static str, count: u64) -> TraceNode {
        TraceNode {
            name,
            count,
            total_ns: 500,
            children: Vec::new(),
        }
    }

    #[test]
    fn trace_json_shapes() {
        let node = TraceNode {
            name: "epoch",
            count: 1,
            total_ns: 1_000,
            children: vec![leaf("epoch.fold", 1), leaf("epoch.swap", 1)],
        };
        assert_eq!(
            node.to_json().render(),
            concat!(
                r#"{"name":"epoch","count":1,"total_ns":1000,"children":["#,
                r#"{"name":"epoch.fold","count":1,"total_ns":500,"children":[]},"#,
                r#"{"name":"epoch.swap","count":1,"total_ns":500,"children":[]}]}"#
            )
        );
        assert_eq!(
            node.deterministic_node_json().render(),
            concat!(
                r#"{"name":"epoch","count":1,"children":["#,
                r#"{"name":"epoch.fold","count":1,"children":[]},"#,
                r#"{"name":"epoch.swap","count":1,"children":[]}]}"#
            )
        );
        assert_eq!(
            node.stage_names(),
            vec!["epoch", "epoch.fold", "epoch.swap"]
        );
    }

    #[test]
    fn window_deterministic_json_excludes_gauges_and_wall_clock() {
        let record = WindowRecord {
            index: 2,
            label: "epoch-2".into(),
            report: Report {
                counters: vec![("c".into(), 3)],
                gauges: vec![("g".into(), 1.5)],
                histograms: vec![],
                spans: vec![],
                events: vec![],
            },
            trace: vec![leaf("stage", 1)],
        };
        let det = record.deterministic_json();
        assert!(det.contains(r#""window":2"#));
        assert!(det.contains(r#""label":"epoch-2""#));
        assert!(det.contains(r#""c":3"#));
        assert!(!det.contains("total_ns"));
        assert!(!det.contains("gauges"));
        let full = record.to_json().render();
        assert!(full.contains("total_ns"));
        assert!(full.contains(r#""g":1.5"#));
    }
}
