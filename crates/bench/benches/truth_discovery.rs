//! Truth discovery algorithm cost on growing campaigns.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_truth::{Catd, Crh, Gtm, MedianVote, SensingData, TruthDiscovery};

fn campaign(num_legit: usize) -> SensingData {
    let cfg = ScenarioConfig {
        num_legit,
        num_tasks: 20,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(99);
    Scenario::generate(&cfg).data
}

fn bench_truth_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("truth_discovery");
    for &n in &[8usize, 32, 128] {
        let data = campaign(n);
        group.bench_with_input(BenchmarkId::new("crh", n), &data, |b, d| {
            b.iter(|| Crh::default().discover(black_box(d)));
        });
        group.bench_with_input(BenchmarkId::new("catd", n), &data, |b, d| {
            b.iter(|| Catd::default().discover(black_box(d)));
        });
        group.bench_with_input(BenchmarkId::new("gtm", n), &data, |b, d| {
            b.iter(|| Gtm::default().discover(black_box(d)));
        });
        group.bench_with_input(BenchmarkId::new("median", n), &data, |b, d| {
            b.iter(|| MedianVote.discover(black_box(d)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_truth_discovery);
criterion_main!(benches);
