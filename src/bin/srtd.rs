//! `srtd` — command-line front end for the Sybil-resistant truth
//! discovery stack.
//!
//! ```text
//! srtd simulate --seed 7 --out campaign/     # generate a campaign as CSV
//! srtd evaluate --seed 7                     # MAE of all methods
//! srtd evaluate --from campaign/             # ... on exported CSV data
//! srtd group --seed 7 --method ag-tr         # print the grouping + ARI
//! ```
//!
//! Arguments are parsed by hand (the approved dependency set has no CLI
//! parser); every flag has a default so each subcommand runs bare.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sybil_td::core::{AccountGrouping, AgFp, AgTr, AgTs, AgVal, SybilResistantTd};
use sybil_td::metrics::{adjusted_rand_index, mae};
use sybil_td::runtime::obs;
use sybil_td::sensing::{Scenario, ScenarioConfig};
use sybil_td::truth::{Crh, SensingData, TruthDiscovery};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if flags.contains_key("obs") {
        obs::set_enabled(true);
    }
    match flag_parse(&flags, "obs-history", 0usize) {
        // 0 (the default) leaves the SRTD_OBS_HISTORY / built-in default
        // resolution untouched.
        Ok(0) => {}
        Ok(n) => obs::set_history_capacity(n),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "group" => cmd_group(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if result.is_ok() {
        if obs::enabled() {
            let report = obs::snapshot();
            if !report.is_empty() && flags.contains_key("obs") {
                println!("\n{}", report.render_table());
            }
        }
        match obs::export_json_if_requested() {
            Ok(Some(path)) => eprintln!("obs: wrote {}", path.display()),
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: writing SRTD_OBS_JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
srtd — Sybil-resistant truth discovery for mobile crowdsensing

USAGE:
  srtd simulate [--seed N] [--legit N] [--tasks N] [--activeness L,A] [--out DIR]
  srtd evaluate [--seed N] [--seeds N] [--activeness L,A] [--from DIR] [--obs]
                [--obs-history N]
  srtd group    [--seed N] [--method ag-fp|ag-ts|ag-tr|ag-val] [--activeness L,A] [--obs]
  srtd help

simulate  generate a campaign and write reports.csv, fingerprints.csv,
          ground_truth.csv, owners.csv into --out (default: campaign/)
evaluate  print the MAE of CRH and TD-FP/TD-TS/TD-TR, either on generated
          campaigns (averaged over --seeds) or on CSV data from --from
group     run one grouping method and print groups plus ARI vs. owners

--obs enables the observability layer (spans, counters, events) and prints
a report after the run; SRTD_OBS=1 in the environment does the same, and
SRTD_OBS_JSON=<path> additionally writes the report as JSON (including the
retained telemetry windows — evaluate opens one per seed). --obs-history N
overrides how many windows are retained (default SRTD_OBS_HISTORY or 64).";

/// Flags that take no value; their presence alone is the signal.
const BOOLEAN_FLAGS: &[&str] = &["obs"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_string(), String::from("1"));
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} got unparseable value `{v}`")),
    }
}

fn activeness(flags: &HashMap<String, String>) -> Result<(f64, f64), String> {
    match flags.get("activeness") {
        None => Ok((1.0, 1.0)),
        Some(v) => {
            let (l, a) = v
                .split_once(',')
                .ok_or_else(|| "--activeness wants L,A (e.g. 0.5,1.0)".to_string())?;
            let l: f64 = l.trim().parse().map_err(|_| "bad legit activeness")?;
            let a: f64 = a.trim().parse().map_err(|_| "bad attacker activeness")?;
            Ok((l, a))
        }
    }
}

fn config_from(flags: &HashMap<String, String>) -> Result<ScenarioConfig, String> {
    let (legit_alpha, attacker_alpha) = activeness(flags)?;
    let cfg = ScenarioConfig {
        num_tasks: flag_parse(flags, "tasks", 10usize)?,
        num_legit: flag_parse(flags, "legit", 8usize)?,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(flag_parse(flags, "seed", 0u64)?)
    .with_activeness(legit_alpha, attacker_alpha);
    Ok(cfg)
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let cfg = config_from(flags)?;
    let out: PathBuf = flag_parse(flags, "out", PathBuf::from("campaign"))?;
    let s = Scenario::generate(&cfg);
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {out:?}: {e}"))?;

    let mut reports = String::from("account,task,value,timestamp\n");
    for r in s.data.reports() {
        writeln!(
            reports,
            "{},{},{},{}",
            r.account, r.task, r.value, r.timestamp
        )
        .expect("string write");
    }
    write_file(&out.join("reports.csv"), &reports)?;

    let mut prints = String::new();
    for (a, f) in s.fingerprints.iter().enumerate() {
        let cells: Vec<String> = f.iter().map(f64::to_string).collect();
        writeln!(prints, "{a},{}", cells.join(",")).expect("string write");
    }
    write_file(&out.join("fingerprints.csv"), &prints)?;

    let mut truths = String::from("task,value\n");
    for (t, v) in s.ground_truth.iter().enumerate() {
        writeln!(truths, "{t},{v}").expect("string write");
    }
    write_file(&out.join("ground_truth.csv"), &truths)?;

    let mut owners = String::from("account,owner,is_sybil\n");
    for a in 0..s.num_accounts() {
        writeln!(owners, "{a},{},{}", s.owners[a], s.is_sybil[a]).expect("string write");
    }
    write_file(&out.join("owners.csv"), &owners)?;

    println!(
        "wrote campaign (seed {}, {} accounts, {} reports) to {}",
        cfg.seed,
        s.num_accounts(),
        s.data.num_reports(),
        out.display()
    );
    Ok(())
}

fn write_file(path: &Path, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {path:?}: {e}"))
}

/// A campaign loaded back from `simulate` CSV output.
struct LoadedCampaign {
    data: SensingData,
    fingerprints: Vec<Vec<f64>>,
    ground_truth: Vec<f64>,
}

fn load_campaign(dir: &Path) -> Result<LoadedCampaign, String> {
    let read = |name: &str| -> Result<String, String> {
        std::fs::read_to_string(dir.join(name))
            .map_err(|e| format!("reading {name} in {dir:?}: {e}"))
    };
    let truths_csv = read("ground_truth.csv")?;
    let mut ground_truth = Vec::new();
    for line in truths_csv.lines().skip(1).filter(|l| !l.trim().is_empty()) {
        let (_, v) = line.split_once(',').ok_or("malformed ground_truth.csv")?;
        ground_truth.push(v.trim().parse::<f64>().map_err(|e| e.to_string())?);
    }
    let mut data = SensingData::new(ground_truth.len());
    let reports_csv = read("reports.csv")?;
    for line in reports_csv.lines().skip(1).filter(|l| !l.trim().is_empty()) {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != 4 {
            return Err(format!("malformed reports.csv line: {line}"));
        }
        data.add_report(
            cells[0]
                .trim()
                .parse()
                .map_err(|e: std::num::ParseIntError| e.to_string())?,
            cells[1]
                .trim()
                .parse()
                .map_err(|e: std::num::ParseIntError| e.to_string())?,
            cells[2]
                .trim()
                .parse()
                .map_err(|e: std::num::ParseFloatError| e.to_string())?,
            cells[3]
                .trim()
                .parse()
                .map_err(|e: std::num::ParseFloatError| e.to_string())?,
        );
    }
    let prints_csv = read("fingerprints.csv")?;
    let mut fingerprints = vec![Vec::new(); data.num_accounts()];
    for line in prints_csv.lines().filter(|l| !l.trim().is_empty()) {
        let mut cells = line.split(',');
        let account: usize = cells
            .next()
            .ok_or("malformed fingerprints.csv")?
            .trim()
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())?;
        let features: Result<Vec<f64>, _> = cells.map(|c| c.trim().parse::<f64>()).collect();
        if account >= fingerprints.len() {
            fingerprints.resize(account + 1, Vec::new());
        }
        fingerprints[account] = features.map_err(|e| e.to_string())?;
    }
    Ok(LoadedCampaign {
        data,
        fingerprints,
        ground_truth,
    })
}

fn evaluate_one(
    data: &SensingData,
    fingerprints: &[Vec<f64>],
    ground_truth: &[f64],
) -> Vec<(&'static str, f64)> {
    let mut rows = Vec::new();
    let crh = Crh::default().discover(data).truths_or(0.0);
    rows.push(("CRH", mae(&crh, ground_truth).expect("lengths")));
    let fp = SybilResistantTd::new(AgFp::default())
        .discover(data, fingerprints)
        .truths_or(0.0);
    rows.push(("TD-FP", mae(&fp, ground_truth).expect("lengths")));
    let ts = SybilResistantTd::new(AgTs::default())
        .discover(data, fingerprints)
        .truths_or(0.0);
    rows.push(("TD-TS", mae(&ts, ground_truth).expect("lengths")));
    let tr = SybilResistantTd::new(AgTr::default())
        .discover(data, fingerprints)
        .truths_or(0.0);
    rows.push(("TD-TR", mae(&tr, ground_truth).expect("lengths")));
    rows
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(dir) = flags.get("from") {
        let campaign = load_campaign(Path::new(dir))?;
        println!("method  MAE (from {dir})");
        for (name, err) in evaluate_one(
            &campaign.data,
            &campaign.fingerprints,
            &campaign.ground_truth,
        ) {
            println!("{name:6}  {err:.2}");
        }
        return Ok(());
    }
    let seeds: u64 = flag_parse(flags, "seeds", 1u64)?;
    let base = config_from(flags)?;
    let mut totals: Vec<(&'static str, f64)> = Vec::new();
    for seed in 0..seeds.max(1) {
        // One telemetry window per seed: the exported history then shows
        // each campaign's cost as a delta, not one cumulative blob.
        obs::window_begin();
        let s = Scenario::generate(&base.clone().with_seed(base.seed + seed));
        for (i, (name, err)) in evaluate_one(&s.data, &s.fingerprints, &s.ground_truth)
            .into_iter()
            .enumerate()
        {
            if totals.len() <= i {
                totals.push((name, 0.0));
            }
            totals[i].1 += err;
        }
        obs::window_end(&format!("seed-{}", base.seed + seed));
    }
    println!("method  MAE (avg over {} seed(s))", seeds.max(1));
    for (name, sum) in totals {
        println!("{name:6}  {:.2}", sum / seeds.max(1) as f64);
    }
    Ok(())
}

fn cmd_group(flags: &HashMap<String, String>) -> Result<(), String> {
    let method = flags.get("method").map(String::as_str).unwrap_or("ag-tr");
    let cfg = config_from(flags)?;
    let s = Scenario::generate(&cfg);
    let grouping = match method {
        "ag-fp" => AgFp::default().group(&s.data, &s.fingerprints),
        "ag-ts" => AgTs::default().group(&s.data, &s.fingerprints),
        "ag-tr" => AgTr::default().group(&s.data, &s.fingerprints),
        "ag-val" => AgVal::default().group(&s.data, &s.fingerprints),
        other => {
            return Err(format!(
                "unknown method `{other}` (ag-fp|ag-ts|ag-tr|ag-val)"
            ))
        }
    };
    println!(
        "{method} on seed {} -> {} groups:",
        cfg.seed,
        grouping.len()
    );
    for (k, group) in grouping.groups().iter().enumerate() {
        let marks: Vec<String> = group
            .iter()
            .map(|&a| format!("{a}{}", if s.is_sybil[a] { "*" } else { "" }))
            .collect();
        println!("  g{k}: {{{}}}", marks.join(", "));
    }
    println!("(* = Sybil account)");
    println!(
        "ARI vs. true owners: {:.3}",
        adjusted_rand_index(grouping.labels(), &s.owners)
    );
    Ok(())
}
