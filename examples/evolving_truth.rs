//! Streaming truth discovery under drift.
//!
//! Wi-Fi signal strength at a POI changes through the day (congestion,
//! doors, weather). Batch truth discovery fits a single static value;
//! [`StreamingCrh`] forgets old claims with a configurable half-life and
//! tracks the drift. This example simulates a truth that jumps mid-stream
//! and compares the batch and streaming estimates, with an unreliable
//! source thrown in.
//!
//! Run with: `cargo run --example evolving_truth`

use sybil_td::truth::{Crh, Report, SensingData, StreamingConfig, StreamingCrh, TruthDiscovery};

fn main() {
    // One task; its truth drifts from -82 dBm to -64 dBm at t = 3600 s.
    let truth_at = |t: f64| if t < 3600.0 { -82.0 } else { -64.0 };

    // Three reliable sources sample every 4 minutes with small personal
    // noise; source 3 is unreliable (wild readings).
    let mut reports = Vec::new();
    let mut batch = SensingData::new(1);
    let mut t = 0.0;
    let mut i = 0;
    while t < 7200.0 {
        for (source, bias) in [(0usize, 0.4), (1, -0.3), (2, 0.1)] {
            let value = truth_at(t) + bias + ((i + source) as f64 * 0.7).sin();
            reports.push(Report {
                account: source,
                task: 0,
                value,
                timestamp: t + source as f64 * 11.0,
            });
        }
        let wild = truth_at(t) + 14.0 * ((i as f64) * 1.3).cos();
        reports.push(Report {
            account: 3,
            task: 0,
            value: wild,
            timestamp: t + 45.0,
        });
        t += 240.0;
        i += 1;
    }
    // Batch data set contains only the latest claim per (account, task) —
    // the paper's one-report rule — so feed it means per source instead.
    for source in 0..4usize {
        let vals: Vec<f64> = reports
            .iter()
            .filter(|r| r.account == source)
            .map(|r| r.value)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        batch.add_report(source, 0, mean, 0.0);
    }

    let batch_estimate = Crh::default().discover(&batch).truths[0].expect("reported");

    let mut stream = StreamingCrh::new(1, StreamingConfig::with_half_life(900.0));
    reports.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
    println!("   time |  truth | streaming estimate");
    println!("--------+--------+-------------------");
    let mut next_print = 0.0;
    for r in &reports {
        stream.observe(*r);
        if r.timestamp >= next_print {
            println!(
                "{:7.0} | {:6.1} | {:18.1}",
                r.timestamp,
                truth_at(r.timestamp),
                stream.truth(0).expect("reported"),
            );
            next_print += 720.0;
        }
    }
    let final_truth = truth_at(7200.0);
    let streaming_estimate = stream.truth(0).expect("reported");
    println!();
    println!("truth at end of stream : {final_truth:8.1}");
    println!("streaming estimate     : {streaming_estimate:8.1}");
    println!("batch CRH estimate     : {batch_estimate:8.1}  (fits one static value)");
    println!(
        "unreliable source weight: {:.2} vs reliable {:.2}",
        stream.account_weight(3),
        stream.account_weight(0)
    );
    assert!(
        (streaming_estimate - final_truth).abs() < (batch_estimate - final_truth).abs(),
        "streaming should track the drift better than batch"
    );
    println!("\nthe streaming estimator follows the drift; batch CRH cannot.");
}
