//! Quickstart: aggregate crowdsensed data with and without Sybil
//! resistance.
//!
//! Builds a tiny campaign by hand — three honest volunteers measuring Wi-Fi
//! signal strength at two spots, plus one Sybil attacker submitting a
//! fabricated −50 dBm reading through three accounts — and compares plain
//! CRH truth discovery against the Sybil-resistant framework with
//! trajectory grouping (TD-TR).
//!
//! Run with: `cargo run --example quickstart`

use sybil_td::core::{AgTr, SybilResistantTd};
use sybil_td::truth::{Crh, SensingData, TruthDiscovery};

fn main() {
    // Ground truth the volunteers are trying to measure (dBm).
    let truth = [-82.0, -71.0];

    let mut data = SensingData::new(2);
    // Three honest volunteers, each walking their own route at their own
    // time, reporting truth plus personal noise.
    data.add_report(0, 0, -83.1, 600.0);
    data.add_report(0, 1, -70.4, 1_150.0);
    data.add_report(1, 0, -81.2, 4_300.0);
    data.add_report(1, 1, -72.0, 4_975.0);
    data.add_report(2, 0, -82.6, 8_050.0);
    data.add_report(2, 1, -70.9, 8_660.0);
    // One attacker performs the walk once and submits -50 dBm through
    // three accounts (3, 4, 5), switching accounts every ~30 s. Their
    // reports dominate both tasks by headcount: 3 of 6 claims.
    for (account, offset) in [(3, 0.0), (4, 31.0), (5, 64.0)] {
        data.add_report(account, 0, -50.0, 12_000.0 + offset);
        data.add_report(account, 1, -50.2, 12_700.0 + offset);
    }

    // Plain truth discovery trusts the coordinated majority.
    let crh = Crh::default().discover(&data);

    // The framework groups the three same-walk accounts into one voice.
    let framework = SybilResistantTd::new(AgTr::default());
    let resistant = framework.discover(&data, &[]);

    println!("task | ground truth |    CRH   |  TD-TR");
    println!("-----+--------------+----------+--------");
    for (task, &expected) in truth.iter().enumerate() {
        println!(
            "  T{} |      {:6.1}  |  {:6.1}  | {:6.1}",
            task + 1,
            expected,
            crh.truths[task].expect("task has reports"),
            resistant.truths[task].expect("task has reports"),
        );
    }
    println!();
    println!(
        "AG-TR found {} groups over {} accounts: {:?}",
        resistant.grouping.len(),
        data.num_accounts(),
        resistant.grouping.groups(),
    );
    println!("CRH is dragged toward the fabricated -50 dBm; TD-TR recovers.");
}
