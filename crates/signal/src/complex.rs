//! Minimal complex arithmetic for the FFT.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// Only the operations the FFT needs are provided; this is not a general
/// complex-math library.
///
/// # Examples
///
/// ```
/// use srtd_signal::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular coordinates.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}` — a unit phasor at angle `theta` radians.
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`, cheaper than [`Complex::abs`].
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scales both components by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert!((z * z.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn phasor_lies_on_unit_circle() {
        for k in 0..8 {
            let z = Complex::from_angle(k as f64 * std::f64::consts::FRAC_PI_4);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn from_real() {
        let z: Complex = 2.5.into();
        assert_eq!(z, Complex::new(2.5, 0.0));
    }
}
