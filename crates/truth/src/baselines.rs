//! Unweighted aggregation baselines: mean and median voting.

use crate::data::SensingData;
use crate::traits::{TruthDiscovery, TruthDiscoveryResult};

/// Plain per-task arithmetic mean of all reports (no reliability model).
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanVote;

impl TruthDiscovery for MeanVote {
    fn discover(&self, data: &SensingData) -> TruthDiscoveryResult {
        TruthDiscoveryResult {
            truths: data.task_means(),
            weights: vec![1.0; data.num_accounts()],
            iterations: 1,
            converged: true,
        }
    }

    fn name(&self) -> &'static str {
        "Mean"
    }
}

/// Per-task median of all reports — robust to up to 50% outliers per task,
/// but still defeated once Sybil accounts hold the majority.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianVote;

impl TruthDiscovery for MedianVote {
    fn discover(&self, data: &SensingData) -> TruthDiscoveryResult {
        let truths = (0..data.num_tasks())
            .map(|t| {
                let mut vals: Vec<f64> = data.task_reports(t).map(|r| r.value).collect();
                if vals.is_empty() {
                    return None;
                }
                vals.sort_by(f64::total_cmp);
                let mid = vals.len() / 2;
                Some(if vals.len() % 2 == 1 {
                    vals[mid]
                } else {
                    0.5 * (vals[mid - 1] + vals[mid])
                })
            })
            .collect();
        TruthDiscoveryResult {
            truths,
            weights: vec![1.0; data.num_accounts()],
            iterations: 1,
            converged: true,
        }
    }

    fn name(&self) -> &'static str {
        "Median"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    fn data_from(values: &[&[f64]]) -> SensingData {
        let mut d = SensingData::new(values.len());
        for (t, vals) in values.iter().enumerate() {
            for (a, &v) in vals.iter().enumerate() {
                d.add_report(a, t, v, t as f64);
            }
        }
        d
    }

    #[test]
    fn mean_vote_averages() {
        let d = data_from(&[&[1.0, 3.0], &[10.0, 20.0]]);
        let r = MeanVote.discover(&d);
        assert_eq!(r.truths[0], Some(2.0));
        assert_eq!(r.truths[1], Some(15.0));
    }

    #[test]
    fn median_vote_odd_and_even() {
        let d = data_from(&[&[1.0, 100.0, 2.0], &[1.0, 2.0]]);
        let r = MedianVote.discover(&d);
        assert_eq!(r.truths[0], Some(2.0));
        assert_eq!(r.truths[1], Some(1.5));
    }

    #[test]
    fn median_resists_minority_outliers_mean_does_not() {
        let d = data_from(&[&[10.0, 10.2, 9.8, 100.0]]);
        let mean = MeanVote.discover(&d).truths[0].unwrap();
        let median = MedianVote.discover(&d).truths[0].unwrap();
        assert!(mean > 30.0);
        assert!((median - 10.1).abs() < 0.2);
    }

    #[test]
    fn empty_task_is_none() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 1.0, 0.0);
        assert_eq!(MeanVote.discover(&d).truths[1], None);
        assert_eq!(MedianVote.discover(&d).truths[1], None);
    }

    /// Both baselines stay inside the convex hull of per-task reports.
    #[test]
    fn estimates_in_hull() {
        prop::check(
            |rng| prop::vec_with(rng, 1..20, |r| r.gen_range(-100f64..100.0)),
            |vals| {
                let refs: Vec<&[f64]> = vec![vals];
                let d = data_from(&refs);
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for algo in [&MeanVote as &dyn TruthDiscovery, &MedianVote] {
                    let v = algo.discover(&d).truths[0].unwrap();
                    prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
                }
                Ok(())
            },
        );
    }

    /// Median is permutation-invariant.
    #[test]
    fn median_permutation_invariant() {
        prop::check(
            |rng| prop::vec_with(rng, 2..15, |r| r.gen_range(-100f64..100.0)),
            |vals| {
                let refs: Vec<&[f64]> = vec![vals.as_slice()];
                let d1 = data_from(&refs);
                let a = MedianVote.discover(&d1).truths[0].unwrap();
                let mut reversed = vals.clone();
                reversed.reverse();
                let refs: Vec<&[f64]> = vec![&reversed];
                let d2 = data_from(&refs);
                let b = MedianVote.discover(&d2).truths[0].unwrap();
                prop_assert!((a - b).abs() < 1e-12);
                Ok(())
            },
        );
    }
}
