//! The platform service object.

use crate::audit::AuditReport;
use crate::error::{EnrollError, SubmitError};
use srtd_core::{AccountGrouping, FrameworkResult, SybilResistantTd};
use srtd_truth::{SensingData, TruthDiscovery, TruthDiscoveryResult};

/// Handle to an enrolled account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountId(usize);

impl AccountId {
    /// The dense account index (used to join against grouping labels).
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for AccountId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "account#{}", self.0)
    }
}

/// Platform policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Required fingerprint dimensionality (80 for the Table-II pipeline).
    pub fingerprint_dims: usize,
    /// Allowed clock skew when checking "timestamp is not in the future"
    /// (seconds): devices and the platform are never perfectly synced.
    pub clock_tolerance_s: f64,
    /// Plausible value band for submitted data, inclusive. Reports outside
    /// it are rejected outright (e.g. a Wi-Fi RSSI of +20 dBm is physical
    /// nonsense regardless of who submits it).
    pub value_band: (f64, f64),
    /// Require each account's submissions to carry non-decreasing
    /// timestamps.
    pub enforce_monotone_timestamps: bool,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            fingerprint_dims: srtd_fingerprint::FINGERPRINT_DIMENSIONS,
            clock_tolerance_s: 30.0,
            value_band: (-120.0, 0.0),
            enforce_monotone_timestamps: true,
        }
    }
}

/// The cloud platform: tasks, accounts, validated reports, fingerprints.
///
/// Time is explicit — the embedding application drives the platform clock
/// with [`Platform::advance_clock`] — so every behaviour is deterministic
/// and testable.
#[derive(Debug, Clone)]
pub struct Platform {
    config: PlatformConfig,
    num_tasks: Option<usize>,
    data: SensingData,
    fingerprints: Vec<Vec<f64>>,
    enrolled_at: Vec<f64>,
    last_submission: Vec<f64>,
    clock: f64,
    rejected: usize,
}

impl Platform {
    /// Creates an idle platform (no campaign yet) at clock 0.
    pub fn new(config: PlatformConfig) -> Self {
        Self {
            config,
            num_tasks: None,
            data: SensingData::new(0),
            fingerprints: Vec::new(),
            enrolled_at: Vec::new(),
            last_submission: Vec::new(),
            clock: 0.0,
            rejected: 0,
        }
    }

    /// Publishes a campaign of `num_tasks` sensing tasks, replacing any
    /// previous campaign's reports (enrollments persist — users keep
    /// their accounts between campaigns).
    ///
    /// # Panics
    ///
    /// Panics if `num_tasks == 0`.
    pub fn publish_tasks(&mut self, num_tasks: usize) {
        assert!(num_tasks > 0, "a campaign needs at least one task");
        self.num_tasks = Some(num_tasks);
        self.data = SensingData::new(num_tasks);
        self.data.reserve_accounts(self.fingerprints.len());
        self.last_submission.fill(f64::NEG_INFINITY);
    }

    /// Advances the platform clock to `t` (monotone).
    ///
    /// # Panics
    ///
    /// Panics if `t` would move the clock backwards or is not finite.
    pub fn advance_clock(&mut self, t: f64) {
        assert!(t.is_finite(), "clock must be finite");
        assert!(t >= self.clock, "clock cannot move backwards");
        self.clock = t;
    }

    /// Current platform clock (seconds).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Number of enrolled accounts.
    pub fn num_accounts(&self) -> usize {
        self.fingerprints.len()
    }

    /// Number of submissions rejected so far.
    pub fn rejected_submissions(&self) -> usize {
        self.rejected
    }

    /// A read-only view of the accepted reports.
    pub fn data(&self) -> &SensingData {
        &self.data
    }

    /// A read-only view of the enrolled fingerprints.
    pub fn fingerprints(&self) -> &[Vec<f64>] {
        &self.fingerprints
    }

    /// Enrolls an account: stores its sign-in fingerprint features.
    ///
    /// # Errors
    ///
    /// Rejects fingerprints of the wrong dimensionality or containing
    /// non-finite values.
    pub fn enroll(&mut self, fingerprint: Vec<f64>, at: f64) -> Result<AccountId, EnrollError> {
        if fingerprint.len() != self.config.fingerprint_dims {
            return Err(EnrollError::BadFingerprint {
                got: fingerprint.len(),
                want: self.config.fingerprint_dims,
            });
        }
        if fingerprint.iter().any(|v| !v.is_finite()) {
            return Err(EnrollError::NonFiniteFingerprint);
        }
        let id = AccountId(self.fingerprints.len());
        self.fingerprints.push(fingerprint);
        self.enrolled_at.push(at);
        self.last_submission.push(f64::NEG_INFINITY);
        self.data.reserve_accounts(self.fingerprints.len());
        Ok(id)
    }

    /// Accepts or rejects one report.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`] for each rejection rule; rejected submissions
    /// are counted but otherwise ignored.
    pub fn submit(
        &mut self,
        account: AccountId,
        task: usize,
        value: f64,
        timestamp: f64,
    ) -> Result<(), SubmitError> {
        let outcome = self.validate(account, task, value, timestamp);
        match outcome {
            Ok(()) => {
                self.data.add_report(account.0, task, value, timestamp);
                self.last_submission[account.0] = timestamp;
                Ok(())
            }
            Err(e) => {
                self.rejected += 1;
                Err(e)
            }
        }
    }

    fn validate(
        &self,
        account: AccountId,
        task: usize,
        value: f64,
        timestamp: f64,
    ) -> Result<(), SubmitError> {
        let Some(num_tasks) = self.num_tasks else {
            return Err(SubmitError::NoCampaign);
        };
        if account.0 >= self.fingerprints.len() {
            return Err(SubmitError::UnknownAccount);
        }
        if task >= num_tasks {
            return Err(SubmitError::UnknownTask);
        }
        if !value.is_finite() {
            return Err(SubmitError::NonFiniteValue);
        }
        if !timestamp.is_finite() {
            return Err(SubmitError::FutureTimestamp {
                claimed: timestamp,
                clock: self.clock,
            });
        }
        if self.data.tasks_of(account.0).contains(&task) {
            return Err(SubmitError::DuplicateReport);
        }
        if timestamp > self.clock + self.config.clock_tolerance_s {
            return Err(SubmitError::FutureTimestamp {
                claimed: timestamp,
                clock: self.clock,
            });
        }
        if timestamp < self.enrolled_at[account.0] {
            return Err(SubmitError::BeforeEnrollment);
        }
        if self.config.enforce_monotone_timestamps && timestamp < self.last_submission[account.0] {
            return Err(SubmitError::NonMonotoneTimestamp);
        }
        let (lo, hi) = self.config.value_band;
        if value < lo || value > hi {
            return Err(SubmitError::ImplausibleValue { value });
        }
        Ok(())
    }

    /// Runs a plain truth discovery algorithm over the accepted reports.
    pub fn aggregate(&self, algorithm: &dyn TruthDiscovery) -> TruthDiscoveryResult {
        algorithm.discover(&self.data)
    }

    /// Runs the Sybil-resistant framework over the accepted reports with
    /// the given grouping method.
    pub fn aggregate_resistant<G: AccountGrouping>(
        &self,
        framework: &SybilResistantTd<G>,
    ) -> FrameworkResult {
        let _span = srtd_runtime::obs::span("platform.aggregate_resistant");
        framework.discover(&self.data, &self.fingerprints)
    }

    /// Audits the account base with a grouping method, flagging groups of
    /// `min_group_size` or more accounts as suspected Sybil clusters.
    pub fn audit<G: AccountGrouping>(&self, grouping: &G, min_group_size: usize) -> AuditReport {
        let _span = srtd_runtime::obs::span("platform.audit");
        AuditReport::build(
            grouping.group(&self.data, &self.fingerprints),
            grouping.name(),
            min_group_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_truth::Crh;

    fn fp() -> Vec<f64> {
        vec![0.5; 80]
    }

    fn platform_with_campaign() -> (Platform, AccountId) {
        let mut p = Platform::new(PlatformConfig::default());
        p.publish_tasks(3);
        let a = p.enroll(fp(), 0.0).expect("valid fingerprint");
        p.advance_clock(1_000.0);
        (p, a)
    }

    #[test]
    fn happy_path_submission_is_accepted() {
        let (mut p, a) = platform_with_campaign();
        p.submit(a, 0, -70.0, 500.0).expect("valid report");
        assert_eq!(p.data().num_reports(), 1);
        assert_eq!(p.rejected_submissions(), 0);
    }

    #[test]
    fn submission_without_campaign_is_rejected() {
        let mut p = Platform::new(PlatformConfig::default());
        let a = p.enroll(fp(), 0.0).expect("valid fingerprint");
        assert_eq!(p.submit(a, 0, -70.0, 0.0), Err(SubmitError::NoCampaign));
    }

    #[test]
    fn future_timestamps_are_rejected() {
        let (mut p, a) = platform_with_campaign();
        let err = p.submit(a, 0, -70.0, 2_000.0).unwrap_err();
        assert!(matches!(err, SubmitError::FutureTimestamp { .. }));
        // Within clock tolerance is fine.
        p.submit(a, 0, -70.0, 1_020.0).expect("within tolerance");
        assert_eq!(p.rejected_submissions(), 1);
    }

    #[test]
    fn timestamps_before_enrollment_are_rejected() {
        let mut p = Platform::new(PlatformConfig::default());
        p.publish_tasks(1);
        p.advance_clock(500.0);
        let late = p.enroll(fp(), 400.0).expect("valid");
        assert_eq!(
            p.submit(late, 0, -70.0, 100.0),
            Err(SubmitError::BeforeEnrollment)
        );
    }

    #[test]
    fn per_account_timestamps_must_be_monotone() {
        let (mut p, a) = platform_with_campaign();
        p.submit(a, 0, -70.0, 600.0).expect("first");
        assert_eq!(
            p.submit(a, 1, -71.0, 550.0),
            Err(SubmitError::NonMonotoneTimestamp)
        );
        p.submit(a, 1, -71.0, 650.0).expect("forward in time");
    }

    #[test]
    fn duplicate_and_unknown_are_rejected() {
        let (mut p, a) = platform_with_campaign();
        p.submit(a, 0, -70.0, 500.0).expect("first");
        assert_eq!(
            p.submit(a, 0, -71.0, 600.0),
            Err(SubmitError::DuplicateReport)
        );
        assert_eq!(p.submit(a, 9, -71.0, 600.0), Err(SubmitError::UnknownTask));
        assert_eq!(
            p.submit(AccountId(99), 0, -71.0, 600.0),
            Err(SubmitError::UnknownAccount)
        );
    }

    #[test]
    fn implausible_values_are_rejected() {
        let (mut p, a) = platform_with_campaign();
        assert!(matches!(
            p.submit(a, 0, 25.0, 500.0),
            Err(SubmitError::ImplausibleValue { .. })
        ));
        assert_eq!(
            p.submit(a, 0, f64::NAN, 500.0),
            Err(SubmitError::NonFiniteValue)
        );
    }

    #[test]
    fn enrollment_validates_fingerprints() {
        let mut p = Platform::new(PlatformConfig::default());
        assert!(matches!(
            p.enroll(vec![1.0; 3], 0.0),
            Err(EnrollError::BadFingerprint { got: 3, want: 80 })
        ));
        assert_eq!(
            p.enroll(vec![f64::NAN; 80], 0.0),
            Err(EnrollError::NonFiniteFingerprint)
        );
    }

    #[test]
    fn aggregate_runs_over_accepted_reports_only() {
        let (mut p, a) = platform_with_campaign();
        let b = p.enroll(fp(), 0.0).expect("valid");
        p.submit(a, 0, -70.0, 500.0).expect("ok");
        let _ = p.submit(b, 0, -10_000.0, 500.0); // rejected: implausible
        let r = p.aggregate(&Crh::default());
        assert_eq!(r.truths[0], Some(-70.0));
    }

    #[test]
    fn republishing_clears_reports_but_keeps_accounts() {
        let (mut p, a) = platform_with_campaign();
        p.submit(a, 0, -70.0, 500.0).expect("ok");
        p.publish_tasks(2);
        assert_eq!(p.data().num_reports(), 0);
        assert_eq!(p.num_accounts(), 1);
        p.submit(a, 1, -72.0, 900.0).expect("new campaign accepts");
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_is_monotone() {
        let mut p = Platform::new(PlatformConfig::default());
        p.advance_clock(10.0);
        p.advance_clock(5.0);
    }
}
