//! The platform lifecycle, end to end.
//!
//! Plays the cloud platform's role from §III-A: publish a campaign,
//! enroll accounts with their sign-in fingerprints, accept (and reject!)
//! submissions, audit the account base for Sybil clusters, and aggregate
//! with and without the resistant framework.
//!
//! Run with: `cargo run --example platform_service`

use sybil_td::core::{AgTr, SybilResistantTd};
use sybil_td::metrics::mae;
use sybil_td::platform::{Platform, PlatformConfig};
use sybil_td::sensing::{Scenario, ScenarioConfig};
use sybil_td::truth::Crh;

fn main() {
    // The volunteers' behaviour comes from the simulator; the platform
    // sees only what a real one would: fingerprints and submissions.
    let scenario = Scenario::generate(&ScenarioConfig::paper_default().with_seed(11));

    let mut platform = Platform::new(PlatformConfig::default());
    platform.publish_tasks(scenario.data.num_tasks());
    println!(
        "published {} Wi-Fi measurement tasks",
        scenario.data.num_tasks()
    );

    let ids: Vec<_> = scenario
        .fingerprints
        .iter()
        .map(|fp| platform.enroll(fp.clone(), 0.0).expect("valid fingerprint"))
        .collect();
    println!(
        "enrolled {} accounts (fingerprints captured at sign-in)",
        ids.len()
    );

    let mut reports: Vec<_> = scenario.data.reports().to_vec();
    reports.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
    for r in &reports {
        platform.advance_clock(platform.clock().max(r.timestamp));
        platform
            .submit(ids[r.account], r.task, r.value, r.timestamp)
            .expect("simulated reports are plausible");
    }
    // Tampered submissions from a late-joining account bounce off the
    // validator.
    let late = platform
        .enroll(scenario.fingerprints[0].clone(), platform.clock())
        .expect("valid fingerprint");
    let future = platform
        .submit(late, 0, -70.0, platform.clock() + 9_999.0)
        .unwrap_err();
    let implausible = platform
        .submit(late, 1, 45.0, platform.clock())
        .unwrap_err();
    println!(
        "accepted {} reports, rejected {} ({future}; {implausible})",
        platform.data().num_reports(),
        platform.rejected_submissions(),
    );

    let audit = platform.audit(&AgTr::default(), 3);
    println!("\naudit via {}:", audit.method());
    for suspect in audit.suspects() {
        println!(
            "  suspected Sybil cluster g{}: accounts {:?}",
            suspect.group, suspect.accounts
        );
    }
    println!(
        "  {:.0}% of accounts flagged (paper policy: down-weight, don't ban)",
        100.0 * audit.suspect_share()
    );

    let plain = platform.aggregate(&Crh::default());
    let resistant = platform.aggregate_resistant(&SybilResistantTd::new(AgTr::default()));
    let crh_mae = mae(&plain.truths_or(0.0), &scenario.ground_truth).expect("lengths");
    let ours_mae = mae(&resistant.truths_or(0.0), &scenario.ground_truth).expect("lengths");
    println!("\naggregation MAE: CRH {crh_mae:.2} dBm vs TD-TR {ours_mae:.2} dBm");
    assert!(ours_mae < crh_mae);
}
