//! Deterministic, order-preserving data parallelism.
//!
//! Each call splits its input into one contiguous chunk per worker and
//! concatenates the chunk outputs in input order, so the result of every
//! function is **independent of the worker count** — byte-identical on 1
//! thread and on 64. Two execution backends share that contract:
//!
//! * [`Backend::Pool`] (the default) dispatches chunks to the persistent
//!   worker pool in [`crate::pool`] — parked threads woken per batch, no
//!   spawn cost, and thread-local scratch that survives across batches;
//! * [`Backend::Scoped`] spawns a fresh [`std::thread::scope`] per call
//!   — no shared state whatsoever, kept as the fallback for nested or
//!   concurrent parallel regions and as the equivalence oracle in tests.
//!
//! Chunk boundaries depend only on the input length and [`max_threads`],
//! never on the backend, so the two produce identical bytes
//! (`tests/pool_equivalence.rs` pins this).
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be overridden process-wide with [`set_max_threads`] (the
//! determinism tests pin it to 1 and N and compare outputs).
//!
//! # Examples
//!
//! ```
//! use srtd_runtime::parallel::parallel_map;
//!
//! let squares = parallel_map(&[1, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker cap; 0 means "ask the OS".
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Which execution backend runs parallel chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The persistent worker pool ([`crate::pool`]); the default.
    Pool,
    /// A fresh `std::thread::scope` per call; fallback and test oracle.
    Scoped,
}

/// Backend selector: 0 = unresolved (consult `SRTD_PARALLEL_BACKEND` on
/// first use), 1 = pool, 2 = scoped.
static BACKEND: AtomicUsize = AtomicUsize::new(0);

/// Overrides the execution backend process-wide. Outputs are identical
/// either way; only dispatch cost changes.
pub fn set_backend(backend: Backend) {
    let code = match backend {
        Backend::Pool => 1,
        Backend::Scoped => 2,
    };
    BACKEND.store(code, Ordering::Relaxed);
}

/// The current execution backend: the [`set_backend`] override if set,
/// otherwise `SRTD_PARALLEL_BACKEND=scoped|pool` from the environment,
/// otherwise [`Backend::Pool`].
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        1 => Backend::Pool,
        2 => Backend::Scoped,
        _ => {
            let resolved = match std::env::var("SRTD_PARALLEL_BACKEND").as_deref() {
                Ok("scoped") => Backend::Scoped,
                _ => Backend::Pool,
            };
            set_backend(resolved);
            resolved
        }
    }
}

/// Overrides the worker count used by every function in this module.
///
/// `0` restores the default (one worker per available core). Results are
/// identical for every setting; only wall-clock time changes.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The current worker count: the [`set_max_threads`] override if set,
/// otherwise [`std::thread::available_parallelism`] (falling back to 1).
pub fn max_threads() -> usize {
    match MAX_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on up to [`max_threads`] workers, returning
/// outputs in input order.
///
/// Falls back to a sequential loop when only one worker is available or
/// the input has fewer than two items. Panics in `f` propagate to the
/// caller. Chunks run on the persistent pool by default and on scoped
/// threads when the pool is busy (nested or concurrent parallel regions)
/// or [`Backend::Scoped`] is selected — the output bytes are identical
/// either way.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    // Deterministic telemetry (call/item counters) is worker-independent;
    // the worker gauge and per-worker spans are wall-clock facts and stay
    // out of the deterministic export.
    crate::obs::counter_add("runtime.parallel.calls", 1);
    crate::obs::counter_add("runtime.parallel.items", items.len() as u64);
    let _map_span = crate::obs::span("runtime.parallel.map");
    let workers = max_threads().min(items.len());
    crate::obs::gauge_set("runtime.parallel.workers", workers.max(1) as f64);
    if workers <= 1 {
        // Trace-tree parity with the threaded branch: there the item
        // closures run on worker threads, whose spans never enter the
        // window trace; suppress recording here so the inline fallback
        // excludes exactly the same spans at 1 worker.
        let _flat_only = crate::obs::suppress_trace();
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    if backend() == Backend::Pool {
        if let Some(token) = crate::pool::try_dispatch() {
            return pool_map(items, chunk_len, &f, token);
        }
    }
    scoped_map(items, chunk_len, &f)
}

/// The scoped-thread execution path: one spawned thread per chunk,
/// joined in chunk order.
fn scoped_map<T, U, F>(items: &[T], chunk_len: usize, f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let _worker_span = crate::obs::span("runtime.parallel.worker");
                    chunk.iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel_map worker panicked"));
        }
    });
    out
}

/// The pool execution path: each chunk is one pool job writing into its
/// own slot; slots are drained in chunk order, so the concatenation is
/// byte-identical to [`scoped_map`]. The dispatching thread claims
/// chunks alongside the pool workers, which is why its per-chunk spans
/// are trace-suppressed — on the scoped path item closures never run on
/// the opener thread, and the trace tree must not depend on the backend.
fn pool_map<T, U, F>(items: &[T], chunk_len: usize, f: &F, token: crate::pool::Dispatch) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    let slots: Vec<Mutex<Option<Vec<U>>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    crate::pool::run(
        chunks.len(),
        &|idx| {
            let _flat_only = crate::obs::suppress_trace();
            let _worker_span = crate::obs::span("runtime.parallel.worker");
            let produced = chunks[idx].iter().map(f).collect::<Vec<U>>();
            *slots[idx].lock().expect("chunk slot poisoned") = Some(produced);
        },
        token,
    );
    crate::pool::publish_gauges();
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        out.extend(
            slot.into_inner()
                .expect("chunk slot poisoned")
                .expect("every chunk completed"),
        );
    }
    out
}

/// Deterministic parallel reduction: folds `items` chunk by chunk, then
/// merges the per-chunk partials **in fixed chunk order**.
///
/// The chunk boundaries depend only on `items.len()` and `chunk_len` —
/// never on the worker count — so every fold happens over the same
/// elements in the same order and every merge happens in the same
/// left-to-right sequence whether the chunks ran on 1 thread or 64.
/// Floating-point accumulation is therefore **byte-identical across
/// thread counts**, which is what lets the framework's loss accumulation
/// go parallel without breaking the determinism contract.
///
/// Note the chunked grouping is *not* the same floating-point order as a
/// plain sequential fold over `items` (the partials regroup the
/// additions); callers that gate between this and a sequential fast path
/// must gate on input size alone, never on the thread count.
///
/// * `chunk_len` is clamped to at least 1.
/// * An empty input returns `init()`.
/// * Panics in `fold`/`merge` propagate to the caller.
///
/// # Examples
///
/// ```
/// use srtd_runtime::parallel::parallel_reduce;
///
/// let items: Vec<u64> = (1..=100).collect();
/// let sum = parallel_reduce(&items, 16, || 0u64, |acc, &x| acc + x, |a, b| a + b);
/// assert_eq!(sum, 5050);
/// ```
pub fn parallel_reduce<T, A, I, F, M>(
    items: &[T],
    chunk_len: usize,
    init: I,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let chunk_len = chunk_len.max(1);
    if items.is_empty() {
        return init();
    }
    crate::obs::counter_add("runtime.parallel.reduce_calls", 1);
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    let partials = parallel_map(&chunks, |chunk| chunk.iter().fold(init(), &fold));
    partials
        .into_iter()
        .reduce(merge)
        .expect("non-empty input yields at least one partial")
}

/// [`parallel_map`] that stays sequential below `min_len` items.
///
/// For per-item work too small to amortize a thread spawn — e.g. the
/// k-means assignment step, which runs once per Lloyd iteration — the
/// caller states the break-even point and small inputs skip the scope
/// entirely. Output is identical either way.
pub fn parallel_map_min<T, U, F>(items: &[T], min_len: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() < min_len {
        items.iter().map(f).collect()
    } else {
        parallel_map(items, f)
    }
}

/// Maps `f` over `0..n` in parallel, returning outputs in index order.
pub fn parallel_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    parallel_map(&indices, |&i| f(i))
}

/// All unordered index pairs `(i, j)` with `i < j < n`, row-major.
///
/// The work list for symmetric pairwise computations (DTW dissimilarity
/// matrices): flattening the triangle before [`parallel_map`] keeps the
/// per-worker load balanced, which contiguous row chunks would not.
pub fn triangle_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for i in 0..n {
        for j in i + 1..n {
            pairs.push((i, j));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let f = |&x: &u64| x.wrapping_mul(x).rotate_left(7) as f64 * 0.5;
        let sequential: Vec<f64> = items.iter().map(f).collect();
        assert_eq!(parallel_map(&items, f), sequential);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let items: Vec<u64> = (0..5_000).collect();
        let f = |&x: &u64| x * 3 + 1;
        set_max_threads(1);
        let one = parallel_map(&items, f);
        set_max_threads(7);
        let seven = parallel_map(&items, f);
        set_max_threads(0);
        let auto = parallel_map(&items, f);
        assert_eq!(one, seven);
        assert_eq!(one, auto);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn min_len_gate_is_output_invariant() {
        let items: Vec<u64> = (0..300).collect();
        let f = |&x: &u64| x ^ 0xabcd;
        assert_eq!(
            parallel_map_min(&items, 1_000, f),
            parallel_map_min(&items, 0, f)
        );
    }

    #[test]
    fn min_len_boundary_is_inclusive_on_the_parallel_side() {
        // len == min_len takes the parallel path, len == min_len - 1 the
        // sequential one; both must agree exactly.
        let f = |&x: &u64| x.wrapping_mul(31);
        for len in [0usize, 1, 7, 8, 9] {
            let items: Vec<u64> = (0..len as u64).collect();
            let expected: Vec<u64> = items.iter().map(f).collect();
            assert_eq!(parallel_map_min(&items, 8, f), expected, "len {len}");
        }
    }

    #[test]
    fn min_len_degenerate_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map_min(&empty, 0, |&x| x).is_empty());
        assert!(parallel_map_min(&empty, 100, |&x| x).is_empty());
        assert_eq!(parallel_map_min(&[3u64], 0, |&x| x + 1), vec![4]);
        assert_eq!(parallel_map_min(&[3u64], 1, |&x| x + 1), vec![4]);
    }

    #[test]
    fn map_range_of_zero_is_empty() {
        assert!(parallel_map_range(0, |i| i).is_empty());
        assert_eq!(parallel_map_range(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn triangle_pairs_tiny_inputs_and_counts() {
        assert!(triangle_pairs(0).is_empty());
        assert!(triangle_pairs(1).is_empty());
        assert_eq!(triangle_pairs(2), vec![(0, 1)]);
        assert_eq!(triangle_pairs(3), vec![(0, 1), (0, 2), (1, 2)]);
        // The count matches n(n-1)/2 and every pair is unique.
        for n in [5usize, 16, 33] {
            let pairs = triangle_pairs(n);
            assert_eq!(pairs.len(), n * (n - 1) / 2);
            let unique: std::collections::HashSet<_> = pairs.iter().collect();
            assert_eq!(unique.len(), pairs.len());
        }
    }

    #[test]
    fn map_range_is_in_index_order() {
        assert_eq!(parallel_map_range(5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn triangle_pairs_cover_the_strict_upper_triangle() {
        assert_eq!(triangle_pairs(0), Vec::<(usize, usize)>::new());
        assert_eq!(triangle_pairs(1), Vec::<(usize, usize)>::new());
        let pairs = triangle_pairs(4);
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0], (0, 1));
        assert_eq!(pairs[5], (2, 3));
        assert!(pairs.iter().all(|&(i, j)| i < j && j < 4));
    }

    #[test]
    fn reduce_empty_input_returns_init() {
        let empty: Vec<u64> = Vec::new();
        assert_eq!(
            parallel_reduce(&empty, 8, || 41u64, |a, &x| a + x, |a, b| a + b),
            41
        );
    }

    #[test]
    fn reduce_single_item() {
        assert_eq!(
            parallel_reduce(&[7u64], 8, || 0u64, |a, &x| a + x, |a, b| a + b),
            7
        );
        // chunk_len 0 is clamped to 1 rather than looping forever.
        assert_eq!(
            parallel_reduce(&[7u64], 0, || 0u64, |a, &x| a + x, |a, b| a + b),
            7
        );
    }

    #[test]
    fn reduce_merges_in_fixed_chunk_order() {
        // A non-commutative merge (list concatenation) exposes the merge
        // order: the result must be the chunks in input order, regardless
        // of the worker count.
        let items: Vec<u32> = (0..10).collect();
        let expected: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8], vec![9]];
        let concat = |items: &[u32]| {
            parallel_reduce(
                items,
                3,
                Vec::<Vec<u32>>::new,
                |mut acc: Vec<Vec<u32>>, &x| {
                    match acc.last_mut() {
                        Some(chunk) => chunk.push(x),
                        None => acc.push(vec![x]),
                    }
                    acc
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
        };
        set_max_threads(1);
        let one = concat(&items);
        set_max_threads(4);
        let four = concat(&items);
        set_max_threads(0);
        assert_eq!(one, expected);
        assert_eq!(four, expected);
    }

    #[test]
    fn reduce_float_accumulation_is_thread_count_invariant() {
        // Bit-level check on the exact use case the framework relies on:
        // chunked f64 partial sums merged in fixed order.
        let items: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.73).sin()).collect();
        let sum =
            |items: &[f64]| parallel_reduce(items, 64, || 0.0f64, |a, &x| a + x, |a, b| a + b);
        set_max_threads(1);
        let one = sum(&items);
        set_max_threads(5);
        let five = sum(&items);
        set_max_threads(0);
        assert_eq!(one.to_bits(), five.to_bits());
    }

    #[test]
    fn reduce_matches_sequential_fold_for_associative_ops() {
        // Property test: for an exactly associative operation (wrapping
        // integer add) the chunked reduction equals the plain fold, for
        // arbitrary inputs and chunk lengths.
        crate::prop::check(
            |rng| {
                use crate::rng::Rng;
                (
                    crate::prop::vec_with(rng, 0..200, |r| r.gen_range(0u64..u64::MAX)),
                    rng.gen_range(1usize..40),
                )
            },
            |(items, chunk_len)| {
                let sequential = items.iter().fold(0u64, |a, &x| a.wrapping_add(x));
                let chunked = parallel_reduce(
                    items,
                    *chunk_len,
                    || 0u64,
                    |a, &x| a.wrapping_add(x),
                    |a, b| a.wrapping_add(b),
                );
                crate::prop_assert!(chunked == sequential);
                Ok(())
            },
        );
    }

    #[test]
    fn reduce_panics_propagate() {
        set_max_threads(4);
        let result = std::panic::catch_unwind(|| {
            let items: Vec<u64> = (0..100).collect();
            parallel_reduce(
                &items,
                8,
                || 0u64,
                |a, &x| {
                    assert!(x != 57, "boom");
                    a + x
                },
                |a, b| a + b,
            )
        });
        set_max_threads(0);
        assert!(result.is_err());
    }

    #[test]
    fn worker_panics_propagate() {
        set_max_threads(4);
        let result = std::panic::catch_unwind(|| {
            let items: Vec<u64> = (0..100).collect();
            parallel_map(&items, |&x| {
                assert!(x != 57, "boom");
                x
            })
        });
        set_max_threads(0);
        assert!(result.is_err());
    }
}
