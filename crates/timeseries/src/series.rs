//! Series utilities: trajectory pairs and normalization.

use crate::Dtw;

/// An account trajectory as the paper defines it: the task-index series
/// `X` and the timestamp series `Y`, both ordered by submission time.
///
/// # Examples
///
/// ```
/// use srtd_timeseries::TimeSeriesPair;
///
/// let a = TimeSeriesPair::new(vec![1.0, 3.0, 4.0], vec![70.0, 924.0, 1206.0]);
/// let b = TimeSeriesPair::new(vec![1.0, 3.0, 4.0], vec![94.0, 968.0, 1285.0]);
/// // Eq. 8: dissimilarity is the sum of the two DTW distances.
/// assert!(a.dissimilarity(&b) < 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeriesPair {
    tasks: Vec<f64>,
    timestamps: Vec<f64>,
}

impl TimeSeriesPair {
    /// Creates a trajectory from parallel task and timestamp series.
    ///
    /// # Panics
    ///
    /// Panics if the series lengths differ (each submission has exactly one
    /// task and one timestamp).
    pub fn new(tasks: Vec<f64>, timestamps: Vec<f64>) -> Self {
        assert_eq!(
            tasks.len(),
            timestamps.len(),
            "task and timestamp series must be parallel"
        );
        Self { tasks, timestamps }
    }

    /// The task-index series `X`.
    pub fn tasks(&self) -> &[f64] {
        &self.tasks
    }

    /// The timestamp series `Y`.
    pub fn timestamps(&self) -> &[f64] {
        &self.timestamps
    }

    /// Number of submissions in the trajectory.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` for an account with no submissions.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Eq. 8: `D_ij = DTW(X_i, X_j) + DTW(Y_i, Y_j)`.
    pub fn dissimilarity(&self, other: &Self) -> f64 {
        self.dissimilarity_with(other, Dtw::new())
    }

    /// Eq. 8 with a configured DTW (e.g. banded for long trajectories).
    pub fn dissimilarity_with(&self, other: &Self, dtw: Dtw) -> f64 {
        dtw.distance(&self.tasks, &other.tasks) + dtw.distance(&self.timestamps, &other.timestamps)
    }
}

/// Z-normalizes a series to zero mean and unit variance.
///
/// Timestamp series from different sessions differ by large offsets that
/// carry no trajectory-shape information; normalizing before DTW makes the
/// comparison shift- and scale-invariant. Constant series map to all-zeros.
pub fn z_normalize(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let sd = var.sqrt();
    if sd <= 1e3 * f64::EPSILON * mean.abs().max(1.0) {
        return vec![0.0; n];
    }
    xs.iter().map(|x| (x - mean) / sd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn dissimilarity_of_identical_trajectories_is_zero() {
        let t = TimeSeriesPair::new(vec![1.0, 2.0], vec![10.0, 20.0]);
        assert_eq!(t.dissimilarity(&t), 0.0);
    }

    #[test]
    fn dissimilarity_adds_both_components() {
        let a = TimeSeriesPair::new(vec![1.0], vec![0.0]);
        let b = TimeSeriesPair::new(vec![4.0], vec![3.0]);
        // DTW of singletons is |diff|: 3 + 3.
        assert!((a.dissimilarity(&b) - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_series_panic() {
        TimeSeriesPair::new(vec![1.0], vec![]);
    }

    #[test]
    fn z_normalize_basics() {
        let z = z_normalize(&[1.0, 2.0, 3.0]);
        assert!(z.iter().sum::<f64>().abs() < 1e-12);
        assert_eq!(z_normalize(&[5.0, 5.0]), vec![0.0, 0.0]);
        assert!(z_normalize(&[]).is_empty());
    }

    #[test]
    fn empty_trajectory_far_from_active_one() {
        let empty = TimeSeriesPair::default();
        let active = TimeSeriesPair::new(vec![1.0], vec![0.0]);
        assert!(empty.is_empty());
        assert_eq!(empty.dissimilarity(&active), f64::INFINITY);
        assert_eq!(empty.dissimilarity(&empty), 0.0);
    }

    #[test]
    fn z_normalized_is_shift_scale_invariant() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 2..40, |r| r.gen_range(-1e3f64..1e3)),
                    rng.gen_range(-1e4f64..1e4),
                    rng.gen_range(0.1f64..50.0),
                )
            },
            |(xs, shift, scale)| {
                let moved: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
                let za = z_normalize(xs);
                let zb = z_normalize(&moved);
                for (a, b) in za.iter().zip(&zb) {
                    prop_assert!((a - b).abs() < 1e-6);
                }
                Ok(())
            },
        );
    }

    #[test]
    fn dissimilarity_symmetric() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 1..15, |r| r.gen_range(0f64..10.0)),
                    prop::vec_with(rng, 1..15, |r| r.gen_range(0f64..10.0)),
                )
            },
            |(ta, tb)| {
                let ya: Vec<f64> = (0..ta.len()).map(|i| i as f64).collect();
                let yb: Vec<f64> = (0..tb.len()).map(|i| i as f64 * 1.1).collect();
                let a = TimeSeriesPair::new(ta.clone(), ya);
                let b = TimeSeriesPair::new(tb.clone(), yb);
                let ab = a.dissimilarity(&b);
                prop_assert!((ab - b.dissimilarity(&a)).abs() < 1e-9);
                prop_assert!(ab >= 0.0);
                Ok(())
            },
        );
    }
}
