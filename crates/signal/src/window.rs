//! Window functions applied before spectral analysis.

/// The window applied to a signal frame before the FFT.
///
/// Fingerprint captures are short stationary recordings, so a [`Window::Hann`]
/// window (the default) suppresses the spectral leakage that would otherwise
/// swamp the subtle per-chip resonance differences AG-FP relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Window {
    /// No windowing (all-ones).
    Rectangular,
    /// Hann (raised cosine) window.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
}

impl Window {
    /// Window coefficient at sample `i` of an `n`-sample frame.
    ///
    /// Returns `1.0` for frames shorter than 2 samples.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        if n < 2 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x).cos(),
        }
    }

    /// Applies the window to a signal, returning the windowed copy.
    pub fn apply(self, xs: &[f64]) -> Vec<f64> {
        let n = xs.len();
        xs.iter()
            .enumerate()
            .map(|(i, &x)| x * self.coefficient(i, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_identity() {
        let xs = [1.0, -2.0, 3.5];
        assert_eq!(Window::Rectangular.apply(&xs), xs.to_vec());
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let n = 101;
        assert!(Window::Hann.coefficient(0, n).abs() < 1e-12);
        assert!(Window::Hann.coefficient(n - 1, n).abs() < 1e-12);
        assert!((Window::Hann.coefficient(50, n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_are_small_but_nonzero() {
        let n = 64;
        let edge = Window::Hamming.coefficient(0, n);
        assert!((edge - 0.08).abs() < 1e-12);
    }

    #[test]
    fn coefficients_bounded_by_one() {
        for w in [Window::Rectangular, Window::Hann, Window::Hamming] {
            for i in 0..32 {
                let c = w.coefficient(i, 32);
                assert!((0.0..=1.0).contains(&c), "{w:?} at {i}: {c}");
            }
        }
    }

    #[test]
    fn tiny_frames_are_passed_through() {
        assert_eq!(Window::Hann.coefficient(0, 1), 1.0);
        assert_eq!(Window::Hann.apply(&[7.0]), vec![7.0]);
        assert_eq!(Window::Hann.apply(&[]), Vec::<f64>::new());
    }
}
