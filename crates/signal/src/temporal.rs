//! The 9 time-domain features of Table II.

use crate::stats;

/// The time-domain half of the Table-II feature set (features 1–9).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TemporalFeatures {
    /// (1) Arithmetic mean of the signal.
    pub mean: f64,
    /// (2) Standard deviation of the signal.
    pub std_dev: f64,
    /// (3) Skewness — asymmetry about the mean.
    pub skewness: f64,
    /// (4) Kurtosis — flatness/spikiness of the distribution.
    pub kurtosis: f64,
    /// (5) Root mean square of the signal.
    pub rms: f64,
    /// (6) Maximum sample value.
    pub max: f64,
    /// (7) Minimum sample value.
    pub min: f64,
    /// (8) Zero-crossing rate — sign changes per sample transition.
    pub zcr: f64,
    /// (9) Fraction of non-negative samples.
    ///
    /// The paper lists the raw *count*; we normalize by length so the
    /// feature is comparable across capture durations. The normalization is
    /// monotone for a fixed duration, so clustering behaviour is unchanged.
    pub non_negative_fraction: f64,
}

impl TemporalFeatures {
    /// Extracts all 9 features from a signal.
    ///
    /// All nine come out of one [`stats::Moments`] accumulation — two
    /// passes over the signal instead of the ~12 the per-feature helpers
    /// take, with bit-identical results (each quantity keeps its own
    /// left-to-right accumulator; the min/max folds and sign-change count
    /// ride along in pass 1).
    ///
    /// Degenerate inputs (empty or constant) produce finite values: moments
    /// fall back as documented in [`crate::stats`], `max`/`min` are `0.0`
    /// for empty input, and rates are `0.0`.
    pub fn extract(signal: &[f64]) -> Self {
        let m = stats::Moments::of(signal);
        Self {
            mean: m.mean(),
            std_dev: m.std_dev(),
            skewness: m.skewness(),
            kurtosis: m.kurtosis(),
            rms: m.rms(),
            max: m.max(),
            min: m.min(),
            zcr: m.zero_crossing_rate(),
            non_negative_fraction: m.non_negative_fraction(),
        }
    }

    /// The features as a fixed-order vector (Table II order).
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.mean,
            self.std_dev,
            self.skewness,
            self.kurtosis,
            self.rms,
            self.max,
            self.min,
            self.zcr,
            self.non_negative_fraction,
        ]
    }
}

/// Rate at which the signal changes sign, per sample transition.
///
/// Zero samples are treated as non-negative, matching the common
/// `sign(x) >= 0` convention. Returns `0.0` for signals shorter than 2.
pub fn zero_crossing_rate(signal: &[f64]) -> f64 {
    if signal.len() < 2 {
        return 0.0;
    }
    let crossings = signal
        .windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count();
    crossings as f64 / (signal.len() - 1) as f64
}

/// Fraction of samples that are `>= 0`; `0.0` for empty input.
pub fn non_negative_fraction(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().filter(|&&x| x >= 0.0).count() as f64 / signal.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn known_signal_features() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        let f = TemporalFeatures::extract(&xs);
        assert_eq!(f.mean, 0.0);
        assert_eq!(f.rms, 1.0);
        assert_eq!(f.max, 1.0);
        assert_eq!(f.min, -1.0);
        assert_eq!(f.zcr, 1.0);
        assert_eq!(f.non_negative_fraction, 0.5);
    }

    #[test]
    fn empty_signal_is_all_finite() {
        let f = TemporalFeatures::extract(&[]);
        assert!(f.to_vec().iter().all(|v| v.is_finite()));
        assert_eq!(f.max, 0.0);
        assert_eq!(f.min, 0.0);
    }

    #[test]
    fn constant_positive_signal() {
        let f = TemporalFeatures::extract(&[9.8; 50]);
        assert!((f.mean - 9.8).abs() < 1e-12);
        assert!(f.std_dev < 1e-9);
        assert_eq!(f.zcr, 0.0);
        assert_eq!(f.non_negative_fraction, 1.0);
        assert_eq!(f.kurtosis, 3.0);
    }

    #[test]
    fn zcr_counts_transitions_not_samples() {
        assert_eq!(zero_crossing_rate(&[1.0, -1.0]), 1.0);
        assert_eq!(zero_crossing_rate(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(zero_crossing_rate(&[1.0]), 0.0);
        // Zero counted as non-negative: (0, -1) is a crossing.
        assert_eq!(zero_crossing_rate(&[0.0, -1.0]), 1.0);
    }

    #[test]
    fn feature_vector_order_matches_table_ii() {
        let f = TemporalFeatures {
            mean: 1.0,
            std_dev: 2.0,
            skewness: 3.0,
            kurtosis: 4.0,
            rms: 5.0,
            max: 6.0,
            min: 7.0,
            zcr: 8.0,
            non_negative_fraction: 9.0,
        };
        assert_eq!(
            f.to_vec(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]
        );
    }

    /// The straight-line (per-feature, many-pass) reference the fused
    /// extraction replaced: one independent helper call / fold per
    /// feature. Kept here so the property test below pins the fused
    /// kernel against it forever.
    fn reference_extract(signal: &[f64]) -> TemporalFeatures {
        let (max, min) = if signal.is_empty() {
            (0.0, 0.0)
        } else {
            (
                signal.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                signal.iter().cloned().fold(f64::INFINITY, f64::min),
            )
        };
        TemporalFeatures {
            mean: stats::mean(signal),
            std_dev: stats::std_dev(signal),
            skewness: stats::skewness(signal),
            kurtosis: stats::kurtosis(signal),
            rms: stats::rms(signal),
            max,
            min,
            zcr: zero_crossing_rate(signal),
            non_negative_fraction: non_negative_fraction(signal),
        }
    }

    /// Fused extraction is bit-identical to the straight-line reference
    /// (which is stronger than the required ≤1e-12 relative agreement),
    /// on random signals and every degenerate shape.
    #[test]
    fn fused_extract_matches_straight_line_reference() {
        let degenerate: [&[f64]; 5] = [&[], &[0.0], &[7.25; 64], &[-3.0, -3.0], &[0.0, -0.0, 0.0]];
        for signal in degenerate {
            assert_eq!(TemporalFeatures::extract(signal), reference_extract(signal));
        }
        prop::check(
            |rng| prop::vec_with(rng, 0..300, |r| r.gen_range(-1e4f64..1e4)),
            |xs| {
                let fused = TemporalFeatures::extract(xs).to_vec();
                let reference = reference_extract(xs).to_vec();
                for (a, b) in fused.iter().zip(&reference) {
                    prop_assert!(a.to_bits() == b.to_bits(), "{a} vs {b}");
                }
                Ok(())
            },
        );
    }

    #[test]
    fn all_features_finite() {
        prop::check(
            |rng| prop::vec_with(rng, 0..300, |r| r.gen_range(-1e4f64..1e4)),
            |xs| {
                let f = TemporalFeatures::extract(xs);
                prop_assert!(f.to_vec().iter().all(|v| v.is_finite()));
                Ok(())
            },
        );
    }

    #[test]
    fn min_le_mean_le_max() {
        prop::check(
            |rng| prop::vec_with(rng, 1..300, |r| r.gen_range(-1e4f64..1e4)),
            |xs| {
                let f = TemporalFeatures::extract(xs);
                prop_assert!(f.min <= f.mean + 1e-9);
                prop_assert!(f.mean <= f.max + 1e-9);
                Ok(())
            },
        );
    }

    #[test]
    fn rates_are_unit_bounded() {
        prop::check(
            |rng| prop::vec_with(rng, 0..100, |r| r.gen_range(-10f64..10.0)),
            |xs| {
                let f = TemporalFeatures::extract(xs);
                prop_assert!((0.0..=1.0).contains(&f.zcr));
                prop_assert!((0.0..=1.0).contains(&f.non_negative_fraction));
                Ok(())
            },
        );
    }
}
