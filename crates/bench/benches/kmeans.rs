//! k-means and elbow-method cost on fingerprint-dimensional data.

use srtd_cluster::{elbow, KMeans, KMeansConfig};
use srtd_runtime::bench::{black_box, Bench};
use srtd_runtime::rng::StdRng;
use srtd_runtime::rng::{Rng, SeedableRng};

fn blobs(n_points: usize, dim: usize, clusters: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_points)
        .map(|i| {
            let center = (i % clusters) as f64 * 10.0;
            (0..dim)
                .map(|_| center + rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect()
}

fn main() {
    let mut group = Bench::new("kmeans");
    for &n in &[20usize, 100, 400] {
        let points = blobs(n, 80, 5, 42);
        group.run(&format!("fit_k5/{n}"), || {
            KMeans::new(KMeansConfig::new(5)).fit(black_box(&points))
        });
    }
    // Elbow on the paper-scale problem: 18 fingerprints, k = 1..18.
    let points = blobs(18, 80, 13, 7);
    group.run("elbow_paper_scale", || {
        elbow(black_box(&points), 18, KMeansConfig::new(1))
    });
}
