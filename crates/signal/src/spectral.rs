//! The 11 frequency-domain features of Table II (features 10–20).
//!
//! All shape features treat the magnitude spectrum (DC bin excluded) as a
//! distribution over frequency, following the MIRtoolbox / Peeters (2004)
//! definitions the paper references.

use crate::spectrum::{Peak, Spectrum};

/// Default roll-off threshold: the paper specifies "the frequency below
/// which 85% of the distribution magnitude is concentrated".
pub const ROLLOFF_FRACTION: f64 = 0.85;

/// Peak-picking threshold for the roughness feature, relative to the
/// largest non-DC magnitude.
pub const ROUGHNESS_PEAK_THRESHOLD: f64 = 0.1;

/// The frequency-domain half of the Table-II feature set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpectralFeatures {
    /// (10) Spectral centroid — center of mass of the spectrum (Hz).
    pub centroid: f64,
    /// (11) Spectral spread — dispersion around the centroid (Hz).
    pub spread: f64,
    /// (12) Spectral skewness of the magnitude distribution.
    pub skewness: f64,
    /// (13) Spectral kurtosis of the magnitude distribution.
    pub kurtosis: f64,
    /// (14) Spectral flatness — geometric / arithmetic mean ratio in `[0,1]`.
    pub flatness: f64,
    /// (15) Spectral irregularity — variation between successive bins.
    pub irregularity: f64,
    /// (16) Spectral entropy, normalized to `[0,1]`.
    pub entropy: f64,
    /// (17) Spectral roll-off — frequency below which 85% of magnitude lies.
    pub rolloff: f64,
    /// (18) Spectral brightness — energy fraction above the cut-off.
    pub brightness: f64,
    /// (19) Spectral RMS over bins.
    pub rms: f64,
    /// (20) Spectral roughness — mean Plomp–Levelt dissonance over peak pairs.
    pub roughness: f64,
}

impl SpectralFeatures {
    /// Extracts all 11 features from a magnitude spectrum.
    ///
    /// `brightness_cutoff_hz` is the cut-off for the brightness feature
    /// (MIRtoolbox defaults to 1500 Hz for audio; motion-sensor captures use
    /// a cut-off proportional to their much lower Nyquist — see
    /// [`crate::features::FeatureConfig`]).
    ///
    /// Degenerate spectra (all-zero or single-bin) yield all-zero shape
    /// features rather than NaN.
    ///
    /// The 11 features come out of **two fused passes** over the magnitude
    /// body plus one peak scan, instead of the ~12 independent passes the
    /// per-feature helpers take together. Pass 1 gathers every uncentered
    /// quantity (total, centroid numerator, squared sum for RMS and the
    /// irregularity denominator, flatness log-sum, irregularity numerator,
    /// max magnitude); pass 2 — once the centroid and total are known —
    /// gathers the centered moments, the entropy sum, the cumulative-mass
    /// scan that yields the roll-off, and the brightness tail sum from a
    /// precomputed first-bin index. The peak list reuses pass 1's max and
    /// is shared with roughness. Each quantity keeps its own left-to-right
    /// accumulator with the exact expressions of the straight-line
    /// helpers, so results are bit-identical to extracting every feature
    /// independently.
    pub fn extract(spectrum: &Spectrum, brightness_cutoff_hz: f64) -> Self {
        let mags = spectrum.magnitudes();
        // Skip DC: the mean of the raw signal is already a temporal feature,
        // and a large DC bin (gravity!) would mask every shape feature.
        let body = if mags.len() > 1 { &mags[1..] } else { &[][..] };
        if body.is_empty() {
            return Self::default();
        }

        // ---- Pass 1: uncentered accumulators ----
        // Sum accumulators start at -0.0 because `Iterator::sum::<f64>()`
        // (which the per-feature helpers used) folds from -0.0; starting at
        // +0.0 would flip the sign of an all-negative-zero or empty sum and
        // break bit-identity with the straight-line reference.
        let mut total = -0.0; // Σ m — centroid denominator, entropy, flatness
        let mut weighted = -0.0; // Σ f·m — centroid numerator
        let mut sum_sq = -0.0; // Σ m² — spectral RMS and irregularity denominator
        let mut log_sum = -0.0; // Σ ln m — flatness geometric mean
        let mut any_nonpositive = false;
        let mut max_mag = 0.0f64; // matches the peak picker's fold(0.0, f64::max)
        let mut irr_num = -0.0; // Σ (mₖ − mₖ₊₁)²
        let mut prev = 0.0;
        for (k, &m) in body.iter().enumerate() {
            total += m;
            weighted += spectrum.frequency(k + 1) * m;
            sum_sq += m * m;
            if m <= 0.0 {
                any_nonpositive = true;
            } else {
                log_sum += m.ln();
            }
            max_mag = f64::max(max_mag, m);
            if k > 0 {
                irr_num += (prev - m).powi(2);
            }
            prev = m;
        }
        if total <= 0.0 {
            return Self::default();
        }
        let n = body.len() as f64;
        let centroid = weighted / total;
        let target = ROLLOFF_FRACTION.clamp(0.0, 1.0) * total;
        let first_bright = first_bin_at_or_above(spectrum, brightness_cutoff_hz);

        // ---- Pass 2: centered moments + cumulative-mass scan ----
        // Sums start at -0.0 (see pass 1); `mass` stays +0.0 because the
        // roll-off helper used a plain `acc = 0.0` loop, not `.sum()`.
        let mut m2 = -0.0;
        let mut m3 = -0.0;
        let mut m4 = -0.0;
        let mut entropy_sum = -0.0;
        let mut mass = 0.0;
        let mut rolloff_freq = None;
        let mut high = -0.0; // Σ m over bins at or above the brightness cut-off
        for (k, &m) in body.iter().enumerate() {
            let f = spectrum.frequency(k + 1);
            m2 += (f - centroid).powi(2) * m;
            m3 += (f - centroid).powi(3) * m;
            m4 += (f - centroid).powi(4) * m;
            if m > 0.0 {
                let p = m / total;
                entropy_sum += -p * p.ln();
            }
            mass += m;
            if rolloff_freq.is_none() && mass >= target {
                rolloff_freq = Some(f);
            }
            if k + 1 >= first_bright {
                high += m;
            }
        }
        let spread = (m2 / total).sqrt();
        let (skewness, kurtosis) = if spread > 0.0 {
            ((m3 / total) / spread.powi(3), (m4 / total) / spread.powi(4))
        } else {
            (0.0, 0.0)
        };
        let flatness = if any_nonpositive {
            0.0
        } else {
            ((log_sum / n).exp() / (total / n)).clamp(0.0, 1.0)
        };

        // ---- Peak scan (shared with roughness), reusing pass 1's max ----
        let peaks = spectrum.peaks_with_max(ROUGHNESS_PEAK_THRESHOLD, Some(max_mag));

        Self {
            centroid,
            spread,
            skewness,
            kurtosis,
            flatness,
            irregularity: if body.len() < 2 {
                0.0
            } else {
                irr_num / sum_sq
            },
            entropy: if body.len() < 2 {
                0.0
            } else {
                (entropy_sum / n.ln()).clamp(0.0, 1.0)
            },
            rolloff: rolloff_freq.unwrap_or_else(|| spectrum.max_frequency()),
            brightness: (high / total).clamp(0.0, 1.0),
            rms: (sum_sq / n).sqrt(),
            roughness: roughness_of_peaks(&peaks),
        }
    }

    /// The features as a fixed-order vector (Table II order).
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.centroid,
            self.spread,
            self.skewness,
            self.kurtosis,
            self.flatness,
            self.irregularity,
            self.entropy,
            self.rolloff,
            self.brightness,
            self.rms,
            self.roughness,
        ]
    }
}

/// Smallest bin index `k >= 1` with `spectrum.frequency(k) >= cutoff_hz`,
/// or `spectrum.len()` when no bin qualifies.
///
/// `frequency(k) = k · bin_width` is nondecreasing in `k`, so the per-bin
/// predicate the brightness feature used to evaluate for every bin has a
/// single switch point; a binary search over the *same* comparison finds
/// it exactly (a NaN cut-off compares false everywhere, exactly as the
/// per-bin filter did).
fn first_bin_at_or_above(spectrum: &Spectrum, cutoff_hz: f64) -> usize {
    let len = spectrum.len();
    let mut lo = 1usize;
    let mut hi = len;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if spectrum.frequency(mid) >= cutoff_hz {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Frequency below which `fraction` of the total magnitude (DC excluded)
/// is concentrated.
pub fn rolloff(spectrum: &Spectrum, fraction: f64) -> f64 {
    let mags = spectrum.magnitudes();
    if mags.len() <= 1 {
        return 0.0;
    }
    let total: f64 = mags[1..].iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let target = fraction.clamp(0.0, 1.0) * total;
    let mut acc = 0.0;
    for (k, &m) in mags.iter().enumerate().skip(1) {
        acc += m;
        if acc >= target {
            return spectrum.frequency(k);
        }
    }
    spectrum.max_frequency()
}

/// Fraction of (DC-excluded) magnitude at frequencies `>= cutoff_hz`.
pub fn brightness(spectrum: &Spectrum, cutoff_hz: f64) -> f64 {
    let mags = spectrum.magnitudes();
    if mags.len() <= 1 {
        return 0.0;
    }
    let total: f64 = mags[1..].iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let high: f64 = mags
        .iter()
        .enumerate()
        .skip(1)
        .filter(|&(k, _)| spectrum.frequency(k) >= cutoff_hz)
        .map(|(_, &m)| m)
        .sum();
    (high / total).clamp(0.0, 1.0)
}

/// Mean Plomp–Levelt dissonance over all pairs of spectral peaks.
///
/// Uses the Sethares parameterization of the Plomp–Levelt curve. Returns
/// `0.0` when fewer than two peaks exist.
pub fn roughness(spectrum: &Spectrum) -> f64 {
    roughness_of_peaks(&spectrum.peaks(ROUGHNESS_PEAK_THRESHOLD))
}

/// [`roughness`] over an already-picked peak list, so the fused extraction
/// shares one peak scan between the peak list and the roughness feature.
///
/// The `signal.spectral.peak_pairs` counter records how many Plomp–Levelt
/// pair evaluations ran — this O(P²) term is the only superlinear piece of
/// Table-II extraction, so exports make it visible.
fn roughness_of_peaks(peaks: &[Peak]) -> f64 {
    if peaks.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..peaks.len() {
        for j in i + 1..peaks.len() {
            sum += plomp_levelt(
                peaks[i].frequency,
                peaks[i].magnitude,
                peaks[j].frequency,
                peaks[j].magnitude,
            );
            pairs += 1;
        }
    }
    srtd_runtime::obs::counter_add("signal.spectral.peak_pairs", pairs as u64);
    sum / pairs as f64
}

/// Plomp–Levelt dissonance between two partials (Sethares 1993 constants).
fn plomp_levelt(f1: f64, a1: f64, f2: f64, a2: f64) -> f64 {
    const B1: f64 = 3.5;
    const B2: f64 = 5.75;
    let (flo, fhi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
    let s = 0.24 / (0.0207 * flo + 18.96);
    let d = fhi - flo;
    a1 * a2 * ((-B1 * s * d).exp() - (-B2 * s * d).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::Window;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    fn spec(mags: &[f64]) -> Spectrum {
        Spectrum::from_magnitudes(mags.to_vec(), 1.0)
    }

    /// The straight-line (one-pass-per-feature) reference the fused
    /// extraction replaced, kept verbatim so the property test below pins
    /// the fused kernel against it forever.
    mod reference {
        use super::super::*;

        fn flatness(body: &[f64]) -> f64 {
            let n = body.len() as f64;
            let arith = body.iter().sum::<f64>() / n;
            if arith <= 0.0 {
                return 0.0;
            }
            if body.iter().any(|&m| m <= 0.0) {
                return 0.0;
            }
            let log_geo = body.iter().map(|&m| m.ln()).sum::<f64>() / n;
            (log_geo.exp() / arith).clamp(0.0, 1.0)
        }

        fn irregularity(body: &[f64]) -> f64 {
            let denom: f64 = body.iter().map(|&m| m * m).sum();
            if denom <= 0.0 || body.len() < 2 {
                return 0.0;
            }
            let num: f64 = body.windows(2).map(|w| (w[0] - w[1]).powi(2)).sum();
            num / denom
        }

        fn entropy(body: &[f64], total: f64) -> f64 {
            if body.len() < 2 {
                return 0.0;
            }
            let h: f64 = body
                .iter()
                .filter(|&&m| m > 0.0)
                .map(|&m| {
                    let p = m / total;
                    -p * p.ln()
                })
                .sum();
            (h / (body.len() as f64).ln()).clamp(0.0, 1.0)
        }

        fn brightness(spectrum: &Spectrum, cutoff_hz: f64) -> f64 {
            let mags = spectrum.magnitudes();
            if mags.len() <= 1 {
                return 0.0;
            }
            let total: f64 = mags[1..].iter().sum();
            if total <= 0.0 {
                return 0.0;
            }
            let high: f64 = mags
                .iter()
                .enumerate()
                .skip(1)
                .filter(|&(k, _)| spectrum.frequency(k) >= cutoff_hz)
                .map(|(_, &m)| m)
                .sum();
            (high / total).clamp(0.0, 1.0)
        }

        pub fn extract(spectrum: &Spectrum, brightness_cutoff_hz: f64) -> SpectralFeatures {
            let mags = spectrum.magnitudes();
            let body = if mags.len() > 1 { &mags[1..] } else { &[][..] };
            let total: f64 = body.iter().sum();
            if body.is_empty() || total <= 0.0 {
                return SpectralFeatures::default();
            }
            let freq = |k: usize| spectrum.frequency(k + 1);
            let centroid: f64 = body
                .iter()
                .enumerate()
                .map(|(k, &m)| freq(k) * m)
                .sum::<f64>()
                / total;
            let var: f64 = body
                .iter()
                .enumerate()
                .map(|(k, &m)| (freq(k) - centroid).powi(2) * m)
                .sum::<f64>()
                / total;
            let spread = var.sqrt();
            let (skewness, kurtosis) = if spread > 0.0 {
                let m3: f64 = body
                    .iter()
                    .enumerate()
                    .map(|(k, &m)| (freq(k) - centroid).powi(3) * m)
                    .sum::<f64>()
                    / total;
                let m4: f64 = body
                    .iter()
                    .enumerate()
                    .map(|(k, &m)| (freq(k) - centroid).powi(4) * m)
                    .sum::<f64>()
                    / total;
                (m3 / spread.powi(3), m4 / spread.powi(4))
            } else {
                (0.0, 0.0)
            };
            SpectralFeatures {
                centroid,
                spread,
                skewness,
                kurtosis,
                flatness: flatness(body),
                irregularity: irregularity(body),
                entropy: entropy(body, total),
                rolloff: rolloff(spectrum, ROLLOFF_FRACTION),
                brightness: brightness(spectrum, brightness_cutoff_hz),
                rms: crate::stats::rms(body),
                roughness: roughness(spectrum),
            }
        }
    }

    /// Fused extraction is bit-identical to the straight-line reference
    /// (which is stronger than the required ≤1e-12 relative agreement) on
    /// random spectra, random cut-offs and every degenerate shape:
    /// single-bin, all-zero, constant, negative-magnitude test spectra,
    /// and cut-offs below/above the frequency range.
    #[test]
    fn fused_extract_matches_straight_line_reference() {
        let degenerate: [&[f64]; 6] = [
            &[0.0],
            &[5.0],
            &[0.0, 0.0, 0.0],
            &[3.0, 1.0],
            &[9.0, 2.0, 2.0, 2.0, 2.0],
            &[0.0, -1.0, 3.0, -0.5],
        ];
        for mags in degenerate {
            for cutoff in [-1.0, 0.0, 1.5, 1e6, f64::NAN] {
                let s = spec(mags);
                let fused = SpectralFeatures::extract(&s, cutoff).to_vec();
                let want = reference::extract(&s, cutoff).to_vec();
                // Bit comparison: negative-magnitude test spectra yield NaN
                // spread in both paths, and NaN != NaN under `==`.
                for (a, b) in fused.iter().zip(&want) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "mags {mags:?} cutoff {cutoff}: {a} vs {b}"
                    );
                }
            }
        }
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 1..150, |r| r.gen_range(0.0f64..1e4)),
                    rng.gen_range(-5.0f64..200.0),
                )
            },
            |(mags, cutoff)| {
                let s = spec(mags);
                let fused = SpectralFeatures::extract(&s, *cutoff).to_vec();
                let want = reference::extract(&s, *cutoff).to_vec();
                for (a, b) in fused.iter().zip(&want) {
                    prop_assert!(a.to_bits() == b.to_bits(), "{a} vs {b}");
                }
                Ok(())
            },
        );
    }

    #[test]
    fn single_tone_centroid_is_its_frequency() {
        // Bins: DC, then bins 1..=4; all mass at bin 3.
        let s = spec(&[0.0, 0.0, 0.0, 5.0, 0.0]);
        let f = SpectralFeatures::extract(&s, 2.0);
        assert!((f.centroid - 3.0).abs() < 1e-12);
        assert_eq!(f.spread, 0.0);
        assert_eq!(f.skewness, 0.0);
        assert!((f.rolloff - 3.0).abs() < 1e-12);
        assert_eq!(f.entropy, 0.0);
        assert_eq!(f.flatness, 0.0); // zero bins elsewhere
        assert!((f.brightness - 1.0).abs() < 1e-12); // all mass >= 2 Hz
    }

    #[test]
    fn flat_spectrum_has_max_flatness_and_entropy() {
        let s = spec(&[0.0, 1.0, 1.0, 1.0, 1.0]);
        let f = SpectralFeatures::extract(&s, 100.0);
        assert!((f.flatness - 1.0).abs() < 1e-12);
        assert!((f.entropy - 1.0).abs() < 1e-12);
        assert_eq!(f.irregularity, 0.0);
        assert_eq!(f.brightness, 0.0); // cutoff above Nyquist
    }

    #[test]
    fn zero_spectrum_is_all_defaults() {
        let s = spec(&[0.0, 0.0, 0.0]);
        let f = SpectralFeatures::extract(&s, 1.0);
        assert_eq!(f, SpectralFeatures::default());
    }

    #[test]
    fn dc_bin_is_ignored() {
        let a = spec(&[1000.0, 1.0, 2.0, 1.0]);
        let b = spec(&[0.0, 1.0, 2.0, 1.0]);
        let fa = SpectralFeatures::extract(&a, 1.0);
        let fb = SpectralFeatures::extract(&b, 1.0);
        assert!((fa.centroid - fb.centroid).abs() < 1e-12);
        assert!((fa.entropy - fb.entropy).abs() < 1e-12);
    }

    #[test]
    fn rolloff_is_monotone_in_fraction() {
        let s = spec(&[0.0, 4.0, 3.0, 2.0, 1.0]);
        assert!(rolloff(&s, 0.3) <= rolloff(&s, 0.85));
        assert!(rolloff(&s, 0.85) <= rolloff(&s, 1.0));
    }

    #[test]
    fn brightness_decreases_with_cutoff() {
        let s = spec(&[0.0, 1.0, 1.0, 1.0, 1.0]);
        let b1 = brightness(&s, 1.0);
        let b3 = brightness(&s, 3.0);
        assert!(b1 >= b3);
        assert!((b1 - 1.0).abs() < 1e-12);
        assert!((b3 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roughness_zero_for_single_peak_positive_for_close_pair() {
        let single = spec(&[0.0, 0.0, 5.0, 0.0, 0.0, 0.0]);
        assert_eq!(roughness(&single), 0.0);
        let pair = spec(&[0.0, 0.0, 5.0, 0.0, 4.0, 0.0]);
        assert!(roughness(&pair) > 0.0);
    }

    #[test]
    fn plomp_levelt_vanishes_at_unison_and_far_apart() {
        assert!(plomp_levelt(100.0, 1.0, 100.0, 1.0).abs() < 1e-12);
        assert!(plomp_levelt(100.0, 1.0, 10_000.0, 1.0) < 1e-3);
        // Maximum dissonance is at a small positive separation.
        let near = plomp_levelt(100.0, 1.0, 102.0, 1.0);
        assert!(near > 0.0);
    }

    #[test]
    fn real_signal_pipeline_features_are_finite() {
        let x: Vec<f64> = (0..512)
            .map(|i| {
                let t = i as f64 / 100.0;
                9.81 + 0.02 * (2.0 * std::f64::consts::PI * 13.0 * t).sin()
                    + 0.01 * (2.0 * std::f64::consts::PI * 27.0 * t).sin()
            })
            .collect();
        let s = Spectrum::from_signal(&x, 100.0, Window::Hann);
        let f = SpectralFeatures::extract(&s, 15.0);
        assert!(f.to_vec().iter().all(|v| v.is_finite()));
        assert!(f.centroid > 0.0);
    }

    #[test]
    fn features_finite_and_bounded() {
        prop::check(
            |rng| prop::vec_with(rng, 2..120, |r| r.gen_range(0.0f64..1e4)),
            |mags| {
                let s = spec(mags);
                let f = SpectralFeatures::extract(&s, 5.0);
                prop_assert!(f.to_vec().iter().all(|v| v.is_finite()));
                prop_assert!((0.0..=1.0).contains(&f.flatness));
                prop_assert!((0.0..=1.0).contains(&f.entropy));
                prop_assert!((0.0..=1.0).contains(&f.brightness));
                prop_assert!((0.0..=2.0 + 1e-9).contains(&f.irregularity));
                prop_assert!(f.spread >= 0.0);
                Ok(())
            },
        );
    }

    #[test]
    fn centroid_within_frequency_range() {
        prop::check(
            |rng| prop::vec_with(rng, 3..60, |r| r.gen_range(0.0f64..1e3)),
            |mags| {
                let s = spec(mags);
                let f = SpectralFeatures::extract(&s, 5.0);
                prop_assert!(f.centroid >= 0.0);
                prop_assert!(f.centroid <= s.max_frequency() + 1e-9);
                prop_assert!(f.rolloff <= s.max_frequency() + 1e-9);
                Ok(())
            },
        );
    }

    #[test]
    fn magnitude_scaling_leaves_shape_features_unchanged() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 3..60, |r| r.gen_range(0.01f64..1e3)),
                    rng.gen_range(0.1f64..100.0),
                )
            },
            |(mags, scale)| {
                let s1 = spec(mags);
                let scaled: Vec<f64> = mags.iter().map(|m| m * scale).collect();
                let s2 = spec(&scaled);
                let f1 = SpectralFeatures::extract(&s1, 5.0);
                let f2 = SpectralFeatures::extract(&s2, 5.0);
                prop_assert!((f1.centroid - f2.centroid).abs() < 1e-6);
                prop_assert!((f1.entropy - f2.entropy).abs() < 1e-6);
                prop_assert!((f1.flatness - f2.flatness).abs() < 1e-6);
                prop_assert!((f1.brightness - f2.brightness).abs() < 1e-6);
                prop_assert!((f1.irregularity - f2.irregularity).abs() < 1e-6);
                Ok(())
            },
        );
    }
}
