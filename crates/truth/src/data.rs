//! The account × task report matrix.

use srtd_runtime::json::{Json, ToJson};
use std::collections::HashSet;
use std::sync::OnceLock;

/// One sensing report: account `account` claims `value` for task `task`
/// at time `timestamp` (seconds from the campaign start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Reporting account index.
    pub account: usize,
    /// Task index.
    pub task: usize,
    /// Claimed numeric value (e.g. Wi-Fi RSSI in dBm).
    pub value: f64,
    /// Submission timestamp in seconds.
    pub timestamp: f64,
}

/// A compressed-sparse-row view over the flat report list: `offsets` has
/// one entry per bucket plus a sentinel, `indices` holds report indices
/// grouped by bucket in insertion order.
///
/// Built in one counting-sort pass (O(reports + buckets)) and cached
/// lazily; the campaign's read paths hand out `&[usize]` slices into it,
/// so per-task and per-account iteration never allocates.
///
/// The index is **incremental**: [`CsrIndex::fold`] merges a batch of
/// appended reports into the existing arrays in place (one run shift per
/// bucket, new indices appended at the end of their bucket's run), which
/// is what lets a long-running campaign admit new reports without
/// rebuilding from scratch. A fold produces arrays bit-identical to a
/// [`CsrIndex::build`] over the concatenated key stream, because both
/// group indices by bucket in ascending flat-index order.
#[derive(Debug, Clone, Default)]
struct CsrIndex {
    offsets: Vec<usize>,
    indices: Vec<usize>,
}

impl CsrIndex {
    fn build(buckets: usize, keys: impl Iterator<Item = usize> + Clone) -> Self {
        let mut offsets = vec![0usize; buckets + 1];
        for key in keys.clone() {
            offsets[key + 1] += 1;
        }
        for b in 0..buckets {
            offsets[b + 1] += offsets[b];
        }
        let mut cursor = offsets.clone();
        let mut indices = vec![0usize; offsets[buckets]];
        for (report, key) in keys.enumerate() {
            indices[cursor[key]] = report;
            cursor[key] += 1;
        }
        Self { offsets, indices }
    }

    fn slice(&self, bucket: usize) -> &[usize] {
        &self.indices[self.offsets[bucket]..self.offsets[bucket + 1]]
    }

    /// Extends the bucket space to `buckets`, appending empty trailing
    /// runs (new accounts enter mid-campaign with no reports yet).
    fn grow_buckets(&mut self, buckets: usize) {
        let total = *self.offsets.last().expect("built index has a sentinel");
        if self.offsets.len() < buckets + 1 {
            self.offsets.resize(buckets + 1, total);
        }
    }

    /// Folds a batch of appended reports into the index in place.
    ///
    /// `keys` are the bucket keys of the new reports, whose flat indices
    /// are `base..base + keys.len()` (they were appended to the report
    /// list, so every new flat index is larger than every existing one —
    /// appending at the end of each bucket run preserves the grouped
    /// insertion order [`CsrIndex::build`] produces).
    ///
    /// Runs shift right by the number of insertions below them; buckets
    /// are relocated from the highest down, so every `copy_within` lands
    /// on vacated (or self-overlapping, which `copy_within` handles)
    /// space. O(buckets + existing + batch), no reallocation beyond the
    /// `indices` growth itself.
    fn fold(&mut self, buckets: usize, keys: impl Iterator<Item = usize> + Clone, base: usize) {
        self.grow_buckets(buckets);
        debug_assert_eq!(self.offsets.len(), buckets + 1);
        let mut added = vec![0usize; buckets];
        let mut batch_len = 0usize;
        for key in keys.clone() {
            added[key] += 1;
            batch_len += 1;
        }
        if batch_len == 0 {
            return;
        }
        let old_total = self.indices.len();
        self.indices.resize(old_total + batch_len, 0);
        // prefix[b] = insertions into buckets strictly below b = how far
        // bucket b's run shifts right.
        let mut prefix = vec![0usize; buckets + 1];
        for b in 0..buckets {
            prefix[b + 1] = prefix[b] + added[b];
        }
        for b in (0..buckets).rev() {
            let old_start = self.offsets[b];
            let old_end = self.offsets[b + 1];
            if prefix[b] > 0 && old_end > old_start {
                self.indices
                    .copy_within(old_start..old_end, old_start + prefix[b]);
            }
            self.offsets[b + 1] = old_end + prefix[b + 1];
        }
        // Each bucket's new indices occupy the tail of its shifted run;
        // walking the batch in order keeps them ascending.
        let mut cursor: Vec<usize> = (0..buckets)
            .map(|b| self.offsets[b + 1] - added[b])
            .collect();
        for (i, key) in keys.enumerate() {
            self.indices[cursor[key]] = base + i;
            cursor[key] += 1;
        }
    }
}

/// Derived per-task statistics, cached until the next mutation: claim
/// means and standard deviations in one shared computation (the std pass
/// needs the means anyway).
#[derive(Debug, Clone)]
struct TaskStats {
    means: Vec<Option<f64>>,
    stds: Vec<Option<f64>>,
}

/// All reports of a sensing campaign, indexed both by account and by task.
///
/// Matches the paper's model: `m` tasks, accounts `0..n`, and at most one
/// report per (account, task) pair ("each account is allowed to submit at
/// most one data for one task").
///
/// Reports live in one flat insertion-ordered `Vec`; the per-task and
/// per-account views are flat CSR offset+index arrays built lazily on
/// first read, so the hot read paths ([`SensingData::task_reports`],
/// [`SensingData::account_reports`]) are allocation-free index-slice
/// walks.
///
/// The campaign is **generation-stamped and incremental**: every
/// mutation bumps [`SensingData::generation`] and folds the new reports
/// into any already-built CSR arrays in place (per-bucket run merge)
/// instead of discarding them, so a long-running service can admit
/// report batches mid-campaign ([`SensingData::fold_batch`]) without
/// ever paying a from-scratch re-index. Derived value statistics
/// ([`SensingData::task_means`], [`SensingData::task_value_std`]) are
/// cached per generation and invalidated by the bump. The folded index
/// and statistics are bit-identical to a from-scratch rebuild over the
/// same report list (regression-pinned by `tests/incremental_fold.rs`).
///
/// # Examples
///
/// ```
/// use srtd_truth::SensingData;
///
/// let mut data = SensingData::new(2);
/// data.add_report(0, 0, -80.0, 12.0);
/// data.add_report(0, 1, -75.0, 60.0);
/// data.add_report(1, 1, -74.0, 30.0);
/// assert_eq!(data.num_accounts(), 2);
/// assert_eq!(data.tasks_of(0), &[0, 1]);
/// assert_eq!(data.task_reports(1).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SensingData {
    num_tasks: usize,
    num_accounts: usize,
    reports: Vec<Report>,
    /// Duplicate-report guard: one entry per (account, task) pair. Makes
    /// `add_report` O(1) instead of O(|T_i|) per insertion.
    seen: HashSet<(usize, usize)>,
    /// Mutation counter: bumped by every content change so derived
    /// structures (epoch snapshots, caches) can tell stale from fresh.
    generation: u64,
    by_task: OnceLock<CsrIndex>,
    by_account: OnceLock<CsrIndex>,
    stats: OnceLock<TaskStats>,
}

impl PartialEq for SensingData {
    /// Compares the semantic content — task count, account count and the
    /// report list. The CSR indexes are derived caches and excluded.
    fn eq(&self, other: &Self) -> bool {
        self.num_tasks == other.num_tasks
            && self.num_accounts == other.num_accounts
            && self.reports == other.reports
    }
}

impl SensingData {
    /// Creates an empty campaign with `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        Self {
            num_tasks,
            ..Self::default()
        }
    }

    /// Number of tasks `m`.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Number of accounts (highest account index seen + 1).
    pub fn num_accounts(&self) -> usize {
        self.num_accounts
    }

    /// Total number of reports.
    pub fn num_reports(&self) -> usize {
        self.reports.len()
    }

    /// Returns `true` if no report has been added.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The campaign's generation stamp: starts at 0 and increases with
    /// every mutation ([`SensingData::add_report`],
    /// [`SensingData::fold_batch`], [`SensingData::reserve_accounts`]).
    ///
    /// Derived structures — epoch snapshots, external caches — record the
    /// generation they were computed at and compare against the current
    /// one to tell stale from fresh.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Returns `true` if `account` has already reported `task` — the O(1)
    /// probe ingestion paths use to reject duplicates gracefully instead
    /// of tripping [`SensingData::add_report`]'s panic.
    pub fn has_report(&self, account: usize, task: usize) -> bool {
        self.seen.contains(&(account, task))
    }

    /// Ensures the campaign tracks at least `n` accounts, adding trailing
    /// report-less accounts if needed.
    ///
    /// Filtering operations (e.g. budgeted selection) may drop every
    /// report of the highest-indexed accounts; this keeps account-indexed
    /// structures (fingerprints, owner labels) aligned. An already-built
    /// account index grows in place (empty trailing runs).
    pub fn reserve_accounts(&mut self, n: usize) {
        if n > self.num_accounts {
            self.num_accounts = n;
            if let Some(csr) = self.by_account.get_mut() {
                csr.grow_buckets(n);
            }
            self.generation += 1;
        }
    }

    /// Adds a report.
    ///
    /// Equivalent to [`SensingData::fold_batch`] with a single-report
    /// batch: already-built indexes are updated in place, never
    /// discarded.
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`, if the value or timestamp is not
    /// finite, or if the account already reported this task (the paper's
    /// one-report-per-task rule).
    pub fn add_report(&mut self, account: usize, task: usize, value: f64, timestamp: f64) {
        self.fold_batch(&[Report {
            account,
            task,
            value,
            timestamp,
        }]);
    }

    /// Folds a batch of new reports (and any new accounts they introduce)
    /// into the campaign incrementally.
    ///
    /// Reports append to the flat list in batch order; already-built CSR
    /// indexes are merged in place — one run shift per bucket plus the
    /// new indices at each run's tail — rather than rebuilt, so the
    /// resulting arrays are bit-identical to a from-scratch rebuild over
    /// the same report list while existing accessors stay warm. The
    /// derived statistics cache is invalidated and the generation bumps
    /// once per non-empty batch.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`SensingData::add_report`]
    /// (out-of-range task, non-finite value/timestamp, duplicate
    /// (account, task) pair — including duplicates within the batch).
    /// Callers that need graceful rejection validate first with
    /// [`SensingData::has_report`] and friends.
    pub fn fold_batch(&mut self, batch: &[Report]) {
        if batch.is_empty() {
            return;
        }
        let base = self.reports.len();
        for r in batch {
            assert!(
                r.task < self.num_tasks,
                "task {} out of range for {} tasks",
                r.task,
                self.num_tasks
            );
            assert!(r.value.is_finite(), "report value must be finite");
            assert!(r.timestamp.is_finite(), "timestamp must be finite");
            assert!(
                self.seen.insert((r.account, r.task)),
                "account {} already reported task {}",
                r.account,
                r.task
            );
            self.num_accounts = self.num_accounts.max(r.account + 1);
            self.reports.push(*r);
        }
        if let Some(csr) = self.by_task.get_mut() {
            csr.fold(self.num_tasks, batch.iter().map(|r| r.task), base);
        }
        if let Some(csr) = self.by_account.get_mut() {
            csr.fold(self.num_accounts, batch.iter().map(|r| r.account), base);
        }
        self.stats.take();
        self.generation += 1;
    }

    fn task_csr(&self) -> &CsrIndex {
        self.by_task
            .get_or_init(|| CsrIndex::build(self.num_tasks, self.reports.iter().map(|r| r.task)))
    }

    fn account_csr(&self) -> &CsrIndex {
        self.by_account.get_or_init(|| {
            CsrIndex::build(self.num_accounts, self.reports.iter().map(|r| r.account))
        })
    }

    /// All reports in insertion order.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// The reports account `account` submitted, in insertion order.
    ///
    /// Accounts that never reported return an empty iterator.
    pub fn account_reports(
        &self,
        account: usize,
    ) -> impl ExactSizeIterator<Item = &Report> + Clone {
        let indices = if account < self.num_accounts {
            self.account_csr().slice(account)
        } else {
            &[]
        };
        indices.iter().map(|&i| &self.reports[i])
    }

    /// The sorted task indices account `account` accomplished (its `T_i`).
    pub fn tasks_of(&self, account: usize) -> Vec<usize> {
        let mut tasks: Vec<usize> = self.account_reports(account).map(|r| r.task).collect();
        tasks.sort_unstable();
        tasks
    }

    /// Indices (into [`SensingData::reports`]) of the reports submitted
    /// for `task`, in insertion order — a borrowed slice of the CSR
    /// index, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`.
    pub fn task_report_indices(&self, task: usize) -> &[usize] {
        assert!(task < self.num_tasks, "task {task} out of range");
        self.task_csr().slice(task)
    }

    /// Indices (into [`SensingData::reports`]) of the reports account
    /// `account` submitted, in insertion order — the per-account
    /// counterpart of [`SensingData::task_report_indices`]. Accounts
    /// beyond the tracked range return an empty slice.
    pub fn account_report_indices(&self, account: usize) -> &[usize] {
        if account < self.num_accounts {
            self.account_csr().slice(account)
        } else {
            &[]
        }
    }

    /// The reports submitted for `task` (the paper's `U_j` with values),
    /// as a non-allocating iterator over the CSR index.
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`.
    pub fn task_reports(&self, task: usize) -> impl ExactSizeIterator<Item = &Report> + Clone {
        self.task_report_indices(task)
            .iter()
            .map(|&i| &self.reports[i])
    }

    /// The reports submitted for `task`, collected into a vector.
    ///
    /// Allocating compatibility shim over [`SensingData::task_reports`] —
    /// hot paths should iterate the CSR slice instead.
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`.
    pub fn reports_for_task(&self, task: usize) -> Vec<&Report> {
        self.task_reports(task).collect()
    }

    /// The account's reports ordered by timestamp — its trajectory, as
    /// AG-TR consumes it.
    pub fn trajectory_of(&self, account: usize) -> Vec<Report> {
        let mut reports: Vec<Report> = self.account_reports(account).copied().collect();
        reports.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
        reports
    }

    /// Computes (or returns the cached) derived per-task statistics. The
    /// cache is taken by every mutation, so a fresh generation recomputes
    /// on first read — the generation bump *is* the invalidation.
    fn task_stats(&self) -> &TaskStats {
        self.stats.get_or_init(|| {
            let mut sums = vec![0.0f64; self.num_tasks];
            let mut counts = vec![0usize; self.num_tasks];
            for r in &self.reports {
                sums[r.task] += r.value;
                counts[r.task] += 1;
            }
            let means: Vec<Option<f64>> = (0..self.num_tasks)
                .map(|t| (counts[t] > 0).then(|| sums[t] / counts[t] as f64))
                .collect();
            let mut sq = vec![0.0f64; self.num_tasks];
            for r in &self.reports {
                let mean = means[r.task].expect("reported task has a mean");
                sq[r.task] += (r.value - mean) * (r.value - mean);
            }
            let stds = (0..self.num_tasks)
                .map(|t| (counts[t] > 0).then(|| (sq[t] / counts[t] as f64).sqrt()))
                .collect();
            TaskStats { means, stds }
        })
    }

    /// Per-task mean of claimed values in one flat pass over the report
    /// list; `None` for tasks with no reports.
    ///
    /// The summation order per task matches per-task iteration (additions
    /// happen in increasing report-index order either way), so the means
    /// are bit-identical to a grouped computation. Cached until the next
    /// mutation.
    pub fn task_means(&self) -> Vec<Option<f64>> {
        self.task_stats().means.clone()
    }

    /// Per-task standard deviation of claimed values (used by CRH's loss
    /// normalization); `None` for tasks with no reports.
    ///
    /// Flat passes over the report list — no per-task value buffers.
    /// Cached until the next mutation.
    pub fn task_value_std(&self) -> Vec<Option<f64>> {
        self.task_stats().stds.clone()
    }

    /// Splits the campaign into per-task centers (the claim means) and a
    /// copy whose values are residuals from those centers.
    ///
    /// Iterative algorithms run on the residuals and add the centers back:
    /// the fixed points are unchanged, but the arithmetic becomes
    /// independent of a global offset (useful both numerically — dBm
    /// values around −80 waste mantissa on the offset — and for exact
    /// translation equivariance).
    ///
    /// One flat pass computes the centers and the residual copy shares
    /// this campaign's CSR caches (the index structure is position-based
    /// and value-independent), so no re-indexing or re-validation runs.
    /// The value-dependent statistics cache is dropped from the copy —
    /// residuals have their own means/stds.
    pub fn centered(&self) -> (SensingData, Vec<Option<f64>>) {
        let centers = self.task_means();
        let mut centered = self.clone();
        for r in &mut centered.reports {
            let c = centers[r.task].expect("reported task has a center");
            r.value -= c;
        }
        centered.stats.take();
        (centered, centers)
    }

    /// The activeness `α_i = |T_i| / m` of an account (Eq. 9).
    pub fn activeness(&self, account: usize) -> f64 {
        if self.num_tasks == 0 {
            return 0.0;
        }
        self.account_reports(account).len() as f64 / self.num_tasks as f64
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("account", self.account.to_json()),
            ("task", self.task.to_json()),
            ("value", self.value.to_json()),
            ("timestamp", self.timestamp.to_json()),
        ])
    }
}

impl ToJson for SensingData {
    /// Encodes the semantic content — task count and the report list; the
    /// per-account and per-task indexes are derivable and omitted.
    fn to_json(&self) -> Json {
        Json::obj([
            ("num_tasks", self.num_tasks.to_json()),
            ("reports", self.reports.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_stay_consistent() {
        let mut d = SensingData::new(3);
        d.add_report(2, 1, 5.0, 10.0);
        d.add_report(0, 1, 6.0, 11.0);
        d.add_report(0, 2, 7.0, 12.0);
        assert_eq!(d.num_accounts(), 3);
        assert_eq!(d.num_reports(), 3);
        assert_eq!(d.tasks_of(0), vec![1, 2]);
        assert_eq!(d.tasks_of(1), Vec::<usize>::new());
        assert_eq!(d.task_reports(1).len(), 2);
        assert_eq!(d.task_reports(0).len(), 0);
        assert_eq!(d.reports_for_task(1).len(), 2);
    }

    #[test]
    fn csr_index_survives_interleaved_reads_and_writes() {
        // Reads build the cache; the next write must invalidate it.
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 1.0, 0.0);
        assert_eq!(d.task_reports(0).len(), 1);
        assert_eq!(d.account_reports(0).len(), 1);
        d.add_report(1, 0, 2.0, 1.0);
        d.add_report(1, 1, 3.0, 2.0);
        assert_eq!(d.task_reports(0).len(), 2);
        assert_eq!(d.task_report_indices(1), &[2]);
        assert_eq!(d.account_reports(1).len(), 2);
    }

    #[test]
    fn task_reports_preserve_insertion_order() {
        let mut d = SensingData::new(1);
        for (a, v) in [(3usize, 30.0), (0, 0.0), (2, 20.0)] {
            d.add_report(a, 0, v, 0.0);
        }
        let accounts: Vec<usize> = d.task_reports(0).map(|r| r.account).collect();
        assert_eq!(accounts, vec![3, 0, 2]);
    }

    #[test]
    fn reserve_accounts_extends_and_invalidates() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 1.0, 0.0);
        assert_eq!(d.account_reports(0).len(), 1); // builds the cache
        d.reserve_accounts(5);
        assert_eq!(d.num_accounts(), 5);
        assert_eq!(d.account_reports(4).len(), 0);
        assert_eq!(d.account_reports(7).len(), 0); // beyond reserve: empty
    }

    #[test]
    fn equality_ignores_index_caches() {
        let mut a = SensingData::new(2);
        a.add_report(0, 0, 1.0, 0.0);
        let mut b = SensingData::new(2);
        b.add_report(0, 0, 1.0, 0.0);
        let _ = a.task_reports(0).len(); // a has a built cache, b has not
        assert_eq!(a, b);
        b.reserve_accounts(3);
        assert_ne!(a, b);
    }

    #[test]
    fn trajectory_sorted_by_time() {
        let mut d = SensingData::new(3);
        d.add_report(0, 2, 1.0, 30.0);
        d.add_report(0, 0, 2.0, 10.0);
        d.add_report(0, 1, 3.0, 20.0);
        let traj = d.trajectory_of(0);
        let tasks: Vec<usize> = traj.iter().map(|r| r.task).collect();
        assert_eq!(tasks, vec![0, 1, 2]);
    }

    #[test]
    fn activeness_matches_eq9() {
        let mut d = SensingData::new(4);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(0, 3, 1.0, 1.0);
        assert_eq!(d.activeness(0), 0.5);
        assert_eq!(d.activeness(7), 0.0);
    }

    #[test]
    fn task_value_std_handles_empty_tasks() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 2.0, 0.0);
        d.add_report(1, 0, 4.0, 0.0);
        let stds = d.task_value_std();
        assert!((stds[0].unwrap() - 1.0).abs() < 1e-12);
        assert!(stds[1].is_none());
    }

    #[test]
    fn task_means_flat_pass_matches_grouped() {
        let mut d = SensingData::new(3);
        d.add_report(0, 0, 1.5, 0.0);
        d.add_report(1, 2, -4.0, 0.0);
        d.add_report(2, 0, 2.5, 0.0);
        d.add_report(3, 2, -6.0, 0.0);
        let means = d.task_means();
        assert_eq!(means[0], Some((1.5 + 2.5) / 2.0));
        assert_eq!(means[1], None);
        assert_eq!(means[2], Some((-4.0 + -6.0) / 2.0));
    }

    #[test]
    fn centered_shares_index_structure() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, -80.0, 0.0);
        d.add_report(1, 0, -82.0, 1.0);
        d.add_report(1, 1, -70.0, 2.0);
        let (centered, centers) = d.centered();
        assert_eq!(centers[0], Some(-81.0));
        assert_eq!(centers[1], Some(-70.0));
        assert_eq!(centered.num_accounts(), d.num_accounts());
        assert_eq!(centered.task_report_indices(0), d.task_report_indices(0));
        let vals: Vec<f64> = centered.task_reports(0).map(|r| r.value).collect();
        assert_eq!(vals, vec![1.0, -1.0]);
        // Residuals keep the original timestamps.
        assert_eq!(centered.reports()[2].timestamp, 2.0);
    }

    #[test]
    #[should_panic(expected = "already reported")]
    fn duplicate_report_panics() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(0, 0, 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_task_panics() {
        let mut d = SensingData::new(1);
        d.add_report(0, 1, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_value_panics() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, f64::NAN, 0.0);
    }

    /// A fixed mixed-shape batch: several accounts, shared tasks, one
    /// account appearing for the first time mid-batch.
    fn fold_fixture() -> Vec<Report> {
        vec![
            Report {
                account: 1,
                task: 0,
                value: 4.0,
                timestamp: 5.0,
            },
            Report {
                account: 6,
                task: 2,
                value: -2.0,
                timestamp: 6.0,
            },
            Report {
                account: 0,
                task: 0,
                value: 9.0,
                timestamp: 7.0,
            },
            Report {
                account: 6,
                task: 0,
                value: 1.0,
                timestamp: 8.0,
            },
        ]
    }

    #[test]
    fn fold_into_warm_index_matches_from_scratch_rebuild() {
        // `warm` reads (and therefore builds) both CSR indexes before the
        // fold; `cold` sees the same reports in the same order but builds
        // its indexes only after the fact. Every slice must agree.
        let mut warm = SensingData::new(3);
        warm.add_report(2, 1, 5.0, 10.0);
        warm.add_report(0, 1, 6.0, 11.0);
        warm.add_report(0, 2, 7.0, 12.0);
        let _ = warm.task_reports(1).len();
        let _ = warm.account_reports(0).len();
        let _ = warm.task_means();

        let mut cold = SensingData::new(3);
        cold.add_report(2, 1, 5.0, 10.0);
        cold.add_report(0, 1, 6.0, 11.0);
        cold.add_report(0, 2, 7.0, 12.0);

        warm.fold_batch(&fold_fixture());
        for r in fold_fixture() {
            cold.add_report(r.account, r.task, r.value, r.timestamp);
        }

        assert_eq!(warm, cold);
        assert_eq!(warm.num_accounts(), cold.num_accounts());
        for t in 0..3 {
            assert_eq!(warm.task_report_indices(t), cold.task_report_indices(t));
        }
        for a in 0..warm.num_accounts() {
            assert_eq!(
                warm.account_report_indices(a),
                cold.account_report_indices(a)
            );
        }
        assert_eq!(warm.task_means(), cold.task_means());
        assert_eq!(warm.task_value_std(), cold.task_value_std());
        assert_eq!(warm.centered().0, cold.centered().0);
    }

    #[test]
    fn fold_bumps_generation_and_empty_batch_is_a_noop() {
        let mut d = SensingData::new(2);
        let g0 = d.generation();
        d.fold_batch(&[]);
        assert_eq!(d.generation(), g0, "empty fold must not invalidate");
        d.add_report(0, 0, 1.0, 0.0);
        assert!(d.generation() > g0);
        let g1 = d.generation();
        d.reserve_accounts(8);
        assert!(d.generation() > g1);
    }

    #[test]
    fn fold_refreshes_value_dependent_stats() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 2.0, 0.0);
        assert_eq!(d.task_means()[0], Some(2.0)); // caches the stats
        d.fold_batch(&[Report {
            account: 1,
            task: 0,
            value: 4.0,
            timestamp: 1.0,
        }]);
        assert_eq!(d.task_means()[0], Some(3.0));
    }

    #[test]
    fn has_report_probes_without_building_indexes() {
        let mut d = SensingData::new(2);
        d.add_report(3, 1, 1.0, 0.0);
        assert!(d.has_report(3, 1));
        assert!(!d.has_report(3, 0));
        assert!(!d.has_report(0, 1));
    }

    #[test]
    fn centered_copy_recomputes_its_own_stats() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 10.0, 0.0);
        d.add_report(1, 0, 14.0, 1.0);
        let _ = d.task_means(); // warm the parent's stats cache
        let (centered, _) = d.centered();
        assert_eq!(centered.task_means()[0], Some(0.0));
        assert!((centered.task_value_std()[0].unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already reported")]
    fn fold_batch_rejects_duplicates_within_the_batch() {
        let mut d = SensingData::new(1);
        d.fold_batch(&[
            Report {
                account: 0,
                task: 0,
                value: 1.0,
                timestamp: 0.0,
            },
            Report {
                account: 0,
                task: 0,
                value: 2.0,
                timestamp: 1.0,
            },
        ]);
    }
}
