#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has no external
# dependencies (everything lives in crates/runtime), so --offline must
# always succeed — any network fetch is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Observability smoke: an instrumented run must export JSON that the
# runtime's own parser accepts (obs-check validates shape and parse).
obs_json="$(mktemp /tmp/srtd-obs.XXXXXX.json)"
trap 'rm -f "$obs_json"' EXIT
SRTD_OBS=1 SRTD_OBS_JSON="$obs_json" \
  cargo run -q --release --offline --bin srtd -- \
  evaluate --seed 0 --legit 4 --tasks 4 >/dev/null
cargo run -q --release --offline --bin obs-check -- "$obs_json"

echo "verify: OK"
