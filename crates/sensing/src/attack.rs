//! Sybil attack models (§III-C).

use srtd_runtime::json::{Json, ToJson};

/// Whether the Sybil attacker spreads its accounts over one device or
/// several.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackType {
    /// Attack-I: a single device, multiple accounts. Account switching
    /// takes time (different timestamps) but every account shares the same
    /// device fingerprint.
    SingleDevice,
    /// Attack-II: multiple devices, multiple accounts. Accounts are spread
    /// round-robin over the devices, so fingerprints differ within the
    /// attacker.
    MultiDevice {
        /// Number of physical devices the attacker owns (≥ 2 for the
        /// attack to differ from Attack-I; the paper's attacker uses 2).
        devices: usize,
    },
    /// Adaptive Attack-II variant aimed at AG-FP: the attacker buys
    /// devices of *distinct models*, so within-attacker fingerprints span
    /// several hardware clusters instead of clumping into one or two. The
    /// fleet assigns consecutive catalog models to these devices.
    MixedDevices {
        /// Number of distinct-model devices (≥ 2; up to the catalog size
        /// before models repeat).
        devices: usize,
    },
}

/// What data the Sybil accounts submit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FabricationStrategy {
    /// Malicious: every account claims `value` (± small per-account jitter
    /// `jitter_std`, the "simple modification" of §III-C). The paper's
    /// attackers claim −50 dBm to fake a strong signal.
    Fabricate {
        /// The fabricated claim.
        value: f64,
        /// Per-account jitter σ applied to the claim.
        jitter_std: f64,
    },
    /// Rapacious: the attacker measures honestly once and every account
    /// submits a jittered copy — reward farming without extra effort.
    DuplicateMeasurement {
        /// Per-account jitter σ applied to the copied measurement.
        jitter_std: f64,
    },
    /// Subtle manipulation: every account submits the honest measurement
    /// shifted by `delta` — the claims stay inside the plausible value
    /// band, so they cannot be filtered as outliers by value alone.
    Offset {
        /// Systematic shift applied to the honest measurement (dBm).
        delta: f64,
        /// Per-account jitter σ.
        jitter_std: f64,
    },
    /// Statistically camouflaged fabrication: the attacker picks a subset
    /// of its tasks as *targets* and lies only there, shifting the claim
    /// by `delta`; on every other task the claim is pinned inside the
    /// honest statistical envelope (truth ± 1.5σ). Against weighted
    /// aggregation the camouflage buys the accounts near-honest weights
    /// that they then spend on the targets.
    Camouflaged {
        /// Shift applied on target tasks (dBm); should exceed any audit
        /// tolerance to be worth the effort.
        delta: f64,
        /// Noise σ of the camouflage claims; all claims stay within
        /// ±1.5σ of the (shifted) truth.
        sigma: f64,
        /// Fraction of the attacker's task set that is targeted, clamped
        /// to `(0, 1]`; at least one task is always targeted.
        target_fraction: f64,
    },
}

/// How hard the attacker works to evade behavioural grouping.
///
/// These tactics extend the paper's model: a grouping-aware adversary can
/// spend extra effort making its accounts look behaviourally independent.
/// Each tactic trades attack power or attacker effort for stealth, which
/// the `exp_attack_strategies` experiment quantifies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EvasionTactic {
    /// No evasion: one physical walk, accounts submit back to back (the
    /// paper's attacker).
    #[default]
    None,
    /// Each account gets its *own* physical walk over the attacker's task
    /// set (own visiting order, own start time). Evades AG-TR's trajectory
    /// matching — but costs the attacker one full walk per account,
    /// removing the "without sensing effort" economy that motivates the
    /// Sybil attack in the first place.
    PerAccountWalks,
    /// Each account reports only a random fraction of the attacker's
    /// visited tasks, making the accounts' task sets diverge. Evades
    /// AG-TS's affinity signal at the cost of proportionally fewer
    /// malicious reports per task.
    SubsetTasks {
        /// Fraction of the attacker's visited tasks each account reports,
        /// clamped to `(0, 1]`.
        fraction: f64,
    },
    /// One physical walk, but every account replays it under a private
    /// clock offset drawn from `N(0, time_jitter_s)` and with
    /// `order_flips` adjacent transpositions of the claimed visiting
    /// order. Aimed at AG-TR: with enough jitter the pairwise DTW
    /// distance (Eq. 8) exceeds φ and no trajectory edge forms, while
    /// the attacker still only walks once.
    JitteredReplay {
        /// σ of the per-account clock offset, in seconds. At the default
        /// φ = 1 and hour-unit timestamps, offsets past ~1 600 s break
        /// edge formation on paper-scale walks.
        time_jitter_s: f64,
        /// Adjacent transpositions applied to each account's claimed
        /// visiting order (0 keeps the true order).
        order_flips: usize,
    },
    /// Each account samples its *own* task set from the honest accounts'
    /// empirical task distribution instead of sharing the attacker's
    /// uniform draw. Aimed at AG-TS: the accounts' task sets diverge and
    /// track exactly the marginals honest accounts produce, so the
    /// affinity score (Eq. 6) and its rarity-order filter see nothing
    /// unusual. The attacker walks the union of the sampled sets once.
    TaskMimicry,
}

impl FabricationStrategy {
    /// The paper's malicious attacker: claim −50 dBm everywhere.
    pub fn paper_default() -> Self {
        Self::Fabricate {
            value: -50.0,
            jitter_std: 0.3,
        }
    }

    /// Default camouflaged attacker: lie by −18 dBm on 40 % of the task
    /// set, camouflage with σ = 2 dBm elsewhere. The −18 dBm shift
    /// clears the default 12 dBm audit tolerance with margin.
    pub fn camouflaged_default() -> Self {
        Self::Camouflaged {
            delta: -18.0,
            sigma: 2.0,
            target_fraction: 0.4,
        }
    }
}

/// Specification of one Sybil attacker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerSpec {
    /// Number of accounts (the paper's attackers hold 5 each).
    pub accounts: usize,
    /// Attack-I or Attack-II.
    pub attack_type: AttackType,
    /// Data strategy.
    pub strategy: FabricationStrategy,
    /// Grouping-evasion tactic (the paper's attacker uses none).
    pub evasion: EvasionTactic,
}

impl AttackerSpec {
    /// The paper's Attack-I attacker: 5 accounts on one iPhone 6S,
    /// fabricating −50 dBm, no evasion.
    pub fn paper_attack_i() -> Self {
        Self {
            accounts: 5,
            attack_type: AttackType::SingleDevice,
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::None,
        }
    }

    /// The paper's Attack-II attacker: 5 accounts over 2 devices
    /// (iPhone SE + Nexus 6P), fabricating −50 dBm, no evasion.
    pub fn paper_attack_ii() -> Self {
        Self {
            accounts: 5,
            attack_type: AttackType::MultiDevice { devices: 2 },
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::None,
        }
    }

    /// Adaptive attacker aimed at AG-TR: one walk, fabricated −50 dBm
    /// claims, per-account replay jitter of `time_jitter_s` seconds plus
    /// one transposed claim position.
    pub fn adaptive_jitter(time_jitter_s: f64) -> Self {
        Self {
            accounts: 5,
            attack_type: AttackType::SingleDevice,
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::JitteredReplay {
                time_jitter_s,
                order_flips: 1,
            },
        }
    }

    /// Adaptive attacker aimed at AG-TS + AG-FP: mimicked task sets over
    /// mixed-model devices, still fabricating −50 dBm.
    pub fn adaptive_mimicry(devices: usize) -> Self {
        Self {
            accounts: 5,
            attack_type: AttackType::MixedDevices { devices },
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::TaskMimicry,
        }
    }

    /// Fully adaptive attacker: camouflaged values, mimicked task sets,
    /// mixed-model devices — evades all three grouping signals and value
    /// outlier filters; only spot-check auditing sees the target lies.
    pub fn adaptive_full(devices: usize) -> Self {
        Self {
            accounts: 5,
            attack_type: AttackType::MixedDevices { devices },
            strategy: FabricationStrategy::camouflaged_default(),
            evasion: EvasionTactic::TaskMimicry,
        }
    }

    /// Replaces the data strategy.
    pub fn with_strategy(mut self, strategy: FabricationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the evasion tactic.
    pub fn with_evasion(mut self, evasion: EvasionTactic) -> Self {
        self.evasion = evasion;
        self
    }

    /// Number of distinct devices this attacker uses.
    pub fn device_count(&self) -> usize {
        match self.attack_type {
            AttackType::SingleDevice => 1,
            AttackType::MultiDevice { devices } | AttackType::MixedDevices { devices } => {
                devices.max(1)
            }
        }
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if the attacker has no accounts, or a multi-device attacker
    /// declares fewer than 2 devices.
    pub fn validate(&self) {
        assert!(self.accounts > 0, "an attacker needs at least one account");
        match self.attack_type {
            AttackType::SingleDevice => {}
            AttackType::MultiDevice { devices } => assert!(
                devices >= 2,
                "Attack-II needs at least 2 devices, got {devices}"
            ),
            AttackType::MixedDevices { devices } => assert!(
                devices >= 2,
                "a mixed-device attacker needs at least 2 devices, got {devices}"
            ),
        }
        match self.evasion {
            EvasionTactic::SubsetTasks { fraction } => assert!(
                fraction > 0.0 && fraction <= 1.0,
                "subset fraction must be in (0,1], got {fraction}"
            ),
            EvasionTactic::JitteredReplay { time_jitter_s, .. } => assert!(
                time_jitter_s.is_finite() && time_jitter_s >= 0.0,
                "replay jitter must be finite and non-negative, got {time_jitter_s}"
            ),
            _ => {}
        }
        if let FabricationStrategy::Camouflaged {
            sigma,
            target_fraction,
            ..
        } = self.strategy
        {
            assert!(
                sigma.is_finite() && sigma > 0.0,
                "camouflage sigma must be positive, got {sigma}"
            );
            assert!(
                target_fraction > 0.0 && target_fraction <= 1.0,
                "target fraction must be in (0,1], got {target_fraction}"
            );
        }
    }
}

impl ToJson for AttackType {
    fn to_json(&self) -> Json {
        match self {
            AttackType::SingleDevice => Json::obj([("type", Json::str("single_device"))]),
            AttackType::MultiDevice { devices } => Json::obj([
                ("type", Json::str("multi_device")),
                ("devices", devices.to_json()),
            ]),
            AttackType::MixedDevices { devices } => Json::obj([
                ("type", Json::str("mixed_devices")),
                ("devices", devices.to_json()),
            ]),
        }
    }
}

impl ToJson for FabricationStrategy {
    fn to_json(&self) -> Json {
        match self {
            FabricationStrategy::Fabricate { value, jitter_std } => Json::obj([
                ("strategy", Json::str("fabricate")),
                ("value", value.to_json()),
                ("jitter_std", jitter_std.to_json()),
            ]),
            FabricationStrategy::DuplicateMeasurement { jitter_std } => Json::obj([
                ("strategy", Json::str("duplicate_measurement")),
                ("jitter_std", jitter_std.to_json()),
            ]),
            FabricationStrategy::Offset { delta, jitter_std } => Json::obj([
                ("strategy", Json::str("offset")),
                ("delta", delta.to_json()),
                ("jitter_std", jitter_std.to_json()),
            ]),
            FabricationStrategy::Camouflaged {
                delta,
                sigma,
                target_fraction,
            } => Json::obj([
                ("strategy", Json::str("camouflaged")),
                ("delta", delta.to_json()),
                ("sigma", sigma.to_json()),
                ("target_fraction", target_fraction.to_json()),
            ]),
        }
    }
}

impl ToJson for EvasionTactic {
    fn to_json(&self) -> Json {
        match self {
            EvasionTactic::None => Json::obj([("tactic", Json::str("none"))]),
            EvasionTactic::PerAccountWalks => {
                Json::obj([("tactic", Json::str("per_account_walks"))])
            }
            EvasionTactic::SubsetTasks { fraction } => Json::obj([
                ("tactic", Json::str("subset_tasks")),
                ("fraction", fraction.to_json()),
            ]),
            EvasionTactic::JitteredReplay {
                time_jitter_s,
                order_flips,
            } => Json::obj([
                ("tactic", Json::str("jittered_replay")),
                ("time_jitter_s", time_jitter_s.to_json()),
                ("order_flips", order_flips.to_json()),
            ]),
            EvasionTactic::TaskMimicry => Json::obj([("tactic", Json::str("task_mimicry"))]),
        }
    }
}

impl ToJson for AttackerSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("accounts", self.accounts.to_json()),
            ("attack_type", self.attack_type.to_json()),
            ("strategy", self.strategy.to_json()),
            ("evasion", self.evasion.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_experiment_setup() {
        let a1 = AttackerSpec::paper_attack_i();
        let a2 = AttackerSpec::paper_attack_ii();
        assert_eq!(a1.accounts, 5);
        assert_eq!(a2.accounts, 5);
        assert_eq!(a1.device_count(), 1);
        assert_eq!(a2.device_count(), 2);
        a1.validate();
        a2.validate();
    }

    #[test]
    fn fabricate_default_is_minus_50() {
        match FabricationStrategy::paper_default() {
            FabricationStrategy::Fabricate { value, .. } => assert_eq!(value, -50.0),
            other => panic!("unexpected strategy {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 devices")]
    fn single_device_attack_ii_rejected() {
        AttackerSpec {
            accounts: 3,
            attack_type: AttackType::MultiDevice { devices: 1 },
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::None,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "subset fraction")]
    fn bad_subset_fraction_rejected() {
        AttackerSpec::paper_attack_i()
            .with_evasion(EvasionTactic::SubsetTasks { fraction: 0.0 })
            .validate();
    }

    #[test]
    fn builders_replace_fields() {
        let spec = AttackerSpec::paper_attack_i()
            .with_strategy(FabricationStrategy::Offset {
                delta: -8.0,
                jitter_std: 0.2,
            })
            .with_evasion(EvasionTactic::PerAccountWalks);
        assert_eq!(spec.evasion, EvasionTactic::PerAccountWalks);
        matches!(spec.strategy, FabricationStrategy::Offset { .. });
        spec.validate();
    }

    #[test]
    fn adaptive_presets_validate() {
        let jitter = AttackerSpec::adaptive_jitter(900.0);
        let mimicry = AttackerSpec::adaptive_mimicry(3);
        let full = AttackerSpec::adaptive_full(3);
        jitter.validate();
        mimicry.validate();
        full.validate();
        assert_eq!(mimicry.device_count(), 3);
        assert!(matches!(
            full.strategy,
            FabricationStrategy::Camouflaged { .. }
        ));
        assert!(matches!(full.evasion, EvasionTactic::TaskMimicry));
    }

    #[test]
    #[should_panic(expected = "mixed-device attacker")]
    fn single_mixed_device_rejected() {
        AttackerSpec::adaptive_mimicry(1).validate();
    }

    #[test]
    #[should_panic(expected = "replay jitter")]
    fn negative_jitter_rejected() {
        AttackerSpec::adaptive_jitter(-1.0).validate();
    }

    #[test]
    #[should_panic(expected = "target fraction")]
    fn bad_target_fraction_rejected() {
        AttackerSpec::paper_attack_i()
            .with_strategy(FabricationStrategy::Camouflaged {
                delta: -18.0,
                sigma: 2.0,
                target_fraction: 1.5,
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "camouflage sigma")]
    fn zero_camouflage_sigma_rejected() {
        AttackerSpec::paper_attack_i()
            .with_strategy(FabricationStrategy::Camouflaged {
                delta: -18.0,
                sigma: 0.0,
                target_fraction: 0.4,
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "at least one account")]
    fn zero_accounts_rejected() {
        AttackerSpec {
            accounts: 0,
            attack_type: AttackType::SingleDevice,
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::None,
        }
        .validate();
    }
}
