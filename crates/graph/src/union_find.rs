//! Disjoint-set forest (union-find) with path halving and union by size.

/// A disjoint-set forest over elements `0..n`.
///
/// Used by callers that form groups incrementally (e.g. merging grouping
/// results from several methods) and as an independent oracle for the DFS
/// component labeling in tests.
///
/// # Examples
///
/// ```
/// use srtd_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert_eq!(uf.set_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of the set containing `x`, with path halving.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if a merge happened (they were previously disjoint).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of bounds.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Grows the universe to `n` elements, adding `n − len()` fresh
    /// singleton sets. A no-op when `n ≤ len()` — existing sets are never
    /// disturbed, which is what lets an epoch engine keep one forest
    /// alive while accounts keep arriving.
    pub fn grow(&mut self, n: usize) {
        for x in self.parent.len()..n {
            self.parent.push(x);
            self.size.push(1);
            self.sets += 1;
        }
    }

    /// The sets as sorted member lists, ordered by smallest member — the
    /// same canonical form as [`UnionFind::into_groups`], without
    /// consuming the forest (it keeps accepting unions afterwards).
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
        for x in 0..n {
            let r = self.find(x);
            by_root[r].push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_iter().filter(|g| !g.is_empty()).collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }

    /// Extracts the sets as sorted member lists, ordered by smallest member.
    pub fn into_groups(mut self) -> Vec<Vec<usize>> {
        self.groups()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.set_size(1), 1);
    }

    #[test]
    fn union_is_transitive() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.set_size(2), 3);
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn redundant_union_returns_false() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn into_groups_sorted_by_smallest_member() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 4);
        uf.union(1, 2);
        let groups = uf.into_groups();
        assert_eq!(groups, vec![vec![0], vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.into_groups(), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn grow_adds_singletons_without_disturbing_sets() {
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        uf.grow(4);
        assert_eq!(uf.len(), 4);
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.grow(3); // shrinking request is a no-op
        assert_eq!(uf.len(), 4);
        uf.union(2, 3);
        assert_eq!(uf.groups(), vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn groups_does_not_consume_the_forest() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 2);
        assert_eq!(uf.groups(), vec![vec![0, 2], vec![1]]);
        uf.union(1, 2);
        assert_eq!(uf.groups(), vec![vec![0, 1, 2]]);
    }
}
