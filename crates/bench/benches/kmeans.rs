//! k-means and elbow-method cost on fingerprint-dimensional data.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srtd_cluster::{elbow, KMeans, KMeansConfig};

fn blobs(n_points: usize, dim: usize, clusters: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_points)
        .map(|i| {
            let center = (i % clusters) as f64 * 10.0;
            (0..dim)
                .map(|_| center + rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for &n in &[20usize, 100, 400] {
        let points = blobs(n, 80, 5, 42);
        group.bench_with_input(BenchmarkId::new("fit_k5", n), &points, |b, p| {
            b.iter(|| KMeans::new(KMeansConfig::new(5)).fit(black_box(p)));
        });
    }
    // Elbow on the paper-scale problem: 18 fingerprints, k = 1..18.
    let points = blobs(18, 80, 13, 7);
    group.bench_function("elbow_paper_scale", |b| {
        b.iter(|| elbow(black_box(&points), 18, KMeansConfig::new(1)));
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
