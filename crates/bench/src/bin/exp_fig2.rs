//! Experiment `fig2` — reproduces Fig. 2: the AG-FP worked example.
//!
//! Three smartphones of different models, five fingerprint captures each;
//! (a) the captures in the first two principal components' space, and
//! (b) the k-means grouping at k = 3.
//!
//! Run with: `cargo run -p srtd-bench --bin exp_fig2`

use srtd_bench::table::Table;
use srtd_cluster::{KMeans, KMeansConfig, Pca};
use srtd_fingerprint::{catalog, fingerprint_features, CaptureConfig};
use srtd_metrics::adjusted_rand_index;
use srtd_runtime::rng::SeedableRng;
use srtd_runtime::rng::StdRng;
use srtd_signal::features::standardize;

const CAPTURES_PER_PHONE: usize = 5;

fn main() {
    println!("Fig. 2 — AG-FP example: 3 smartphones x 5 fingerprints\n");
    let mut rng = StdRng::seed_from_u64(0xF162);
    let models = catalog::standard_catalog();
    let phones = [
        models[2].model.manufacture(&mut rng), // iPhone 6S
        models[5].model.manufacture(&mut rng), // Nexus 6P
        models[7].model.manufacture(&mut rng), // Nexus 5
    ];
    let cfg = CaptureConfig::paper_default();
    let mut features = Vec::new();
    let mut truth = Vec::new();
    for (d, phone) in phones.iter().enumerate() {
        for _ in 0..CAPTURES_PER_PHONE {
            features.push(fingerprint_features(&phone.capture(&cfg, &mut rng)));
            truth.push(d);
        }
    }

    let (standardized, _) = standardize(&features);
    let pca = Pca::fit(&standardized, 2);
    let projected = pca.project_all(&standardized);
    let clusters = KMeans::new(KMeansConfig::new(3)).fit(&standardized);

    let mut t = Table::new(
        ["smartphone", "capture", "PC1", "PC2", "k-means group"]
            .map(String::from)
            .to_vec(),
    );
    for (i, p) in projected.iter().enumerate() {
        t.add_row(vec![
            format!("{} ({})", truth[i] + 1, phones[truth[i]].model_name),
            format!("{}", i % CAPTURES_PER_PHONE + 1),
            format!("{:.2}", p[0]),
            format!("{:.2}", p[1]),
            format!("{}", clusters.assignments[i]),
        ]);
    }
    println!("{}", t.render());

    let ratio = pca.explained_variance_ratio();
    println!(
        "variance explained: PC1 {:.0}%, PC2 {:.0}%",
        100.0 * ratio[0],
        100.0 * ratio[1]
    );
    let ari = adjusted_rand_index(&clusters.assignments, &truth);
    println!("grouping ARI vs. true devices: {ari:.3}");
    println!();
    println!("expected shape: captures from one phone cluster together in PC");
    println!("space; k-means at k = 3 recovers the phones (the paper's example");
    println!("shows 3 of 15 captures misgrouped, i.e. ARI < 1 is acceptable).");
    assert!(ari > 0.6, "grouping collapsed: ARI {ari}");
    println!("\n[shape check passed]");
}
