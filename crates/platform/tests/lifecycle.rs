//! Full lifecycle: a generated campaign replayed through the platform's
//! submission API, then audited and aggregated.

use srtd_core::{AgTr, SybilResistantTd};
use srtd_metrics::mae;
use srtd_platform::{Platform, PlatformConfig, SubmitError};
use srtd_runtime::rng::SeedableRng;
use srtd_runtime::rng::StdRng;
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_truth::Crh;

/// Replays a scenario through the platform: enroll every account with its
/// fingerprint, then submit every report in timestamp order.
fn replay(scenario: &Scenario) -> Platform {
    let mut platform = Platform::new(PlatformConfig::default());
    platform.publish_tasks(scenario.data.num_tasks());
    let ids: Vec<_> = scenario
        .fingerprints
        .iter()
        .map(|fp| platform.enroll(fp.clone(), 0.0).expect("valid fingerprint"))
        .collect();
    let mut reports: Vec<_> = scenario.data.reports().to_vec();
    reports.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
    for r in reports {
        platform.advance_clock(platform.clock().max(r.timestamp));
        platform
            .submit(ids[r.account], r.task, r.value, r.timestamp)
            .expect("scenario reports satisfy the platform rules");
    }
    platform
}

#[test]
fn generated_scenarios_pass_platform_validation() {
    // The simulator produces physically plausible campaigns, so the
    // platform must accept every report — this pins the two subsystems'
    // contracts together.
    for seed in 0..3 {
        let s = Scenario::generate(&ScenarioConfig::paper_default().with_seed(seed));
        let platform = replay(&s);
        assert_eq!(platform.data().num_reports(), s.data.num_reports());
        assert_eq!(platform.rejected_submissions(), 0);
    }
}

#[test]
fn platform_audit_flags_the_sybil_clusters() {
    let s = Scenario::generate(&ScenarioConfig::paper_default().with_seed(5));
    let platform = replay(&s);
    let audit = platform.audit(&AgTr::default(), 3);
    assert_eq!(audit.method(), "AG-TR");
    // Exactly the two 5-account attacker clusters are flagged.
    assert_eq!(audit.suspects().len(), 2);
    for a in 0..s.num_accounts() {
        assert_eq!(audit.is_suspect(a), s.is_sybil[a], "account {a}");
    }
    assert!((audit.suspect_share() - 10.0 / 18.0).abs() < 1e-9);
}

#[test]
fn platform_end_to_end_aggregation_matches_direct_calls() {
    let s = Scenario::generate(&ScenarioConfig::paper_default().with_seed(6));
    let platform = replay(&s);
    let via_platform = platform.aggregate(&Crh::default());
    let direct = srtd_truth::TruthDiscovery::discover(&Crh::default(), &s.data);
    // The platform ingests reports in timestamp order, so floating-point
    // summation order differs from the generator's — equal to rounding.
    for (a, b) in via_platform.truths.iter().zip(&direct.truths) {
        let (a, b) = (a.expect("reported"), b.expect("reported"));
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    let framework = SybilResistantTd::new(AgTr::default());
    let resistant = platform.aggregate_resistant(&framework);
    let err = mae(&resistant.truths_or(0.0), &s.ground_truth).expect("lengths");
    let crh_err = mae(&via_platform.truths_or(0.0), &s.ground_truth).expect("lengths");
    assert!(err < crh_err, "framework {err} should beat CRH {crh_err}");
}

#[test]
fn tampered_replay_is_caught_by_validation() {
    // An attacker trying to smuggle in a report dated before enrollment,
    // from the future, or with an absurd value is refused at the door.
    let s = Scenario::generate(&ScenarioConfig::paper_default().with_seed(7));
    let mut platform = Platform::new(PlatformConfig::default());
    platform.publish_tasks(s.data.num_tasks());
    let mut rng = StdRng::seed_from_u64(0);
    let _ = &mut rng;
    let id = platform
        .enroll(s.fingerprints[0].clone(), 100.0)
        .expect("valid");
    platform.advance_clock(200.0);
    assert_eq!(
        platform.submit(id, 0, -70.0, 50.0),
        Err(SubmitError::BeforeEnrollment)
    );
    assert!(matches!(
        platform.submit(id, 0, -70.0, 10_000.0),
        Err(SubmitError::FutureTimestamp { .. })
    ));
    assert!(matches!(
        platform.submit(id, 0, 55.0, 150.0),
        Err(SubmitError::ImplausibleValue { .. })
    ));
    assert_eq!(platform.rejected_submissions(), 3);
    assert_eq!(platform.data().num_reports(), 0);
}
