//! Cheap lower bounds on the raw DTW cost, for pruning pairwise
//! comparisons.
//!
//! AG-TR computes all `O(n²)` pairwise DTW distances and keeps only pairs
//! below a threshold `φ`. Both bounds here under-estimate the raw
//! cumulative DTW cost in `O(m)` time, so a pair whose *bound* already
//! exceeds `φ` can be skipped without running the `O(m·n)` dynamic
//! program.

use crate::Dtw;

/// LB_Kim (simplified): every warping path aligns the first points and
/// the last points, so their squared distances always contribute.
///
/// Returns a lower bound on `Dtw::new().raw().distance(a, b)`. Degenerate
/// inputs follow the DTW conventions (`0` for two empty series, `∞` when
/// exactly one is empty).
///
/// # Examples
///
/// ```
/// use srtd_timeseries::{lb_kim, Dtw};
///
/// let a = [0.0, 5.0, 1.0];
/// let b = [2.0, 2.0, 2.0];
/// assert!(lb_kim(&a, &b) <= Dtw::new().raw().distance(&a, &b) + 1e-12);
/// ```
pub fn lb_kim(a: &[f64], b: &[f64]) -> f64 {
    match (a.len(), b.len()) {
        (0, 0) => 0.0,
        (0, _) | (_, 0) => f64::INFINITY,
        (1, _) | (_, 1) => {
            // With a single point on one side, every point of the other
            // aligns to it; the closest single contribution still bounds.

            (a[0] - b[0]).powi(2)
        }
        _ => {
            let first = (a[0] - b[0]).powi(2);
            let last = (a[a.len() - 1] - b[b.len() - 1]).powi(2);
            first + last
        }
    }
}

/// LB_Keogh: the squared distance from `query` to the Sakoe–Chiba
/// envelope of `reference`, a lower bound on *banded* raw DTW with window
/// `w` (and therefore also on unbanded DTW only when `w` spans the whole
/// series).
///
/// Series must have equal lengths (the classic LB_Keogh setting); use
/// [`lb_kim`] for unequal lengths.
///
/// # Panics
///
/// Panics if the series lengths differ.
///
/// # Examples
///
/// ```
/// use srtd_timeseries::{lb_keogh, Dtw};
///
/// let a = [0.0, 1.0, 2.0, 1.0];
/// let b = [1.0, 1.0, 1.0, 1.0];
/// let bound = lb_keogh(&a, &b, 1);
/// let exact = Dtw::new().raw().with_band(1).distance(&a, &b);
/// assert!(bound <= exact + 1e-12);
/// ```
pub fn lb_keogh(query: &[f64], reference: &[f64], w: usize) -> f64 {
    assert_eq!(
        query.len(),
        reference.len(),
        "LB_Keogh requires equal-length series"
    );
    let n = query.len();
    if n == 0 {
        return 0.0;
    }
    let mut bound = 0.0;
    for (i, &q) in query.iter().enumerate() {
        let lo = i.saturating_sub(w);
        let hi = (i + w).min(n - 1);
        let mut upper = f64::NEG_INFINITY;
        let mut lower = f64::INFINITY;
        for &r in &reference[lo..=hi] {
            upper = upper.max(r);
            lower = lower.min(r);
        }
        if q > upper {
            bound += (q - upper).powi(2);
        } else if q < lower {
            bound += (lower - q).powi(2);
        }
    }
    bound
}

/// Computes the full pairwise raw-DTW dissimilarity matrix with LB_Kim
/// pruning: pairs whose lower bound already exceeds `cutoff` are reported
/// as `f64::INFINITY` without running the dynamic program.
///
/// This is the batched form AG-TR uses; the returned matrix is symmetric
/// with a zero diagonal.
pub fn pruned_raw_dtw_matrix(series: &[Vec<f64>], cutoff: f64) -> Vec<Vec<f64>> {
    let n = series.len();
    let dtw = Dtw::new().raw();
    let mut matrix = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let d = if lb_kim(&series[i], &series[j]) > cutoff {
                f64::INFINITY
            } else {
                dtw.distance(&series[i], &series[j])
            };
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert, prop_assert_eq};

    #[test]
    fn kim_bound_zero_for_identical() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(lb_kim(&xs, &xs), 0.0);
    }

    #[test]
    fn kim_degenerate_conventions_match_dtw() {
        assert_eq!(lb_kim(&[], &[]), 0.0);
        assert_eq!(lb_kim(&[], &[1.0]), f64::INFINITY);
        assert_eq!(lb_kim(&[1.0], &[]), f64::INFINITY);
    }

    #[test]
    fn keogh_zero_when_inside_envelope() {
        let q = [1.0, 1.0, 1.0];
        let r = [0.0, 2.0, 0.0];
        assert_eq!(lb_keogh(&q, &r, 1), 0.0);
    }

    #[test]
    fn keogh_wide_window_still_bounds() {
        let q = [10.0, 10.0];
        let r = [0.0, 0.0];
        let bound = lb_keogh(&q, &r, 5);
        let exact = Dtw::new().raw().distance(&q, &r);
        assert!(bound <= exact + 1e-12);
        assert!(bound > 0.0);
    }

    #[test]
    fn pruned_matrix_marks_far_pairs_infinite() {
        let series = vec![
            vec![0.0, 0.0, 0.0],
            vec![0.1, 0.0, 0.1],
            vec![100.0, 100.0, 100.0],
        ];
        let m = pruned_raw_dtw_matrix(&series, 1.0);
        assert!(m[0][1].is_finite());
        assert_eq!(m[0][2], f64::INFINITY);
        assert_eq!(m[1][2], f64::INFINITY);
        assert_eq!(m[0][0], 0.0);
    }

    /// LB_Kim never exceeds the raw DTW cost.
    #[test]
    fn kim_is_a_lower_bound() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 1..25, |r| r.gen_range(-50f64..50.0)),
                    prop::vec_with(rng, 1..25, |r| r.gen_range(-50f64..50.0)),
                )
            },
            |(a, b)| {
                let exact = Dtw::new().raw().distance(a, b);
                prop_assert!(lb_kim(a, b) <= exact + 1e-9);
                Ok(())
            },
        );
    }

    /// LB_Keogh never exceeds the banded raw DTW cost.
    #[test]
    fn keogh_is_a_lower_bound() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 1..25, |r| {
                        (r.gen_range(-50f64..50.0), r.gen_range(-50f64..50.0))
                    }),
                    rng.gen_range(0usize..6),
                )
            },
            |(data, w)| {
                let w = *w;
                let a: Vec<f64> = data.iter().map(|d| d.0).collect();
                let b: Vec<f64> = data.iter().map(|d| d.1).collect();
                let exact = Dtw::new().raw().with_band(w).distance(&a, &b);
                prop_assert!(lb_keogh(&a, &b, w) <= exact + 1e-9);
                Ok(())
            },
        );
    }

    /// Pruning never changes finite entries below the cutoff.
    #[test]
    fn pruning_is_sound() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 2..6, |r| {
                        prop::vec_with(r, 2..8, |r2| r2.gen_range(-20f64..20.0))
                    }),
                    rng.gen_range(0.0f64..500.0),
                )
            },
            |(series, cutoff)| {
                let pruned = pruned_raw_dtw_matrix(series, *cutoff);
                let dtw = Dtw::new().raw();
                for i in 0..series.len() {
                    for j in 0..series.len() {
                        if i == j {
                            continue;
                        }
                        let exact = dtw.distance(&series[i], &series[j]);
                        if exact <= *cutoff {
                            prop_assert_eq!(pruned[i][j], exact);
                        }
                    }
                }
                Ok(())
            },
        );
    }
}
