//! Sybil auditing: grouping results turned into an operator-facing report.

use srtd_core::Grouping;

/// One suspected Sybil cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuspectGroup {
    /// Group index in the underlying [`Grouping`].
    pub group: usize,
    /// The accounts in the cluster (sorted).
    pub accounts: Vec<usize>,
}

/// The outcome of [`crate::Platform::audit`].
///
/// The paper deliberately does *not* ban suspected accounts ("we do not
/// directly eliminate the data submitted by suspicious accounts since
/// there might be false-positives"); the audit therefore reports, it does
/// not enforce — the framework's weighting handles enforcement softly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    grouping: Grouping,
    method: &'static str,
    min_group_size: usize,
    suspects: Vec<SuspectGroup>,
}

impl AuditReport {
    pub(crate) fn build(grouping: Grouping, method: &'static str, min_group_size: usize) -> Self {
        let suspects = grouping
            .groups()
            .iter()
            .enumerate()
            .filter(|(_, members)| members.len() >= min_group_size.max(2))
            .map(|(group, members)| SuspectGroup {
                group,
                accounts: members.clone(),
            })
            .collect();
        Self {
            grouping,
            method,
            min_group_size,
            suspects,
        }
    }

    /// The grouping method that produced this audit.
    pub fn method(&self) -> &'static str {
        self.method
    }

    /// The size threshold used for flagging.
    pub fn min_group_size(&self) -> usize {
        self.min_group_size
    }

    /// The full grouping (suspected and unsuspected accounts alike).
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }

    /// The flagged clusters, in group order.
    pub fn suspects(&self) -> &[SuspectGroup] {
        &self.suspects
    }

    /// Returns `true` if `account` sits in any flagged cluster.
    pub fn is_suspect(&self, account: usize) -> bool {
        self.suspects
            .iter()
            .any(|s| s.accounts.binary_search(&account).is_ok())
    }

    /// Fraction of accounts sitting in flagged clusters.
    pub fn suspect_share(&self) -> f64 {
        let n = self.grouping.num_accounts();
        if n == 0 {
            return 0.0;
        }
        let flagged: usize = self.suspects.iter().map(|s| s.accounts.len()).sum();
        flagged as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(labels: &[usize], min: usize) -> AuditReport {
        AuditReport::build(Grouping::from_labels(labels), "AG-TEST", min)
    }

    #[test]
    fn flags_groups_at_or_above_threshold() {
        // Groups: {0,1,2}, {3}, {4,5}.
        let r = report(&[0, 0, 0, 1, 2, 2], 3);
        assert_eq!(r.suspects().len(), 1);
        assert_eq!(r.suspects()[0].accounts, vec![0, 1, 2]);
        assert!(r.is_suspect(1));
        assert!(!r.is_suspect(3));
        assert!(!r.is_suspect(4));
        assert!((r.suspect_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_below_two_still_requires_a_pair() {
        // min_group_size 1 would flag every singleton — clamped to 2.
        let r = report(&[0, 1, 2], 1);
        assert!(r.suspects().is_empty());
        assert_eq!(r.suspect_share(), 0.0);
    }

    #[test]
    fn empty_platform_audits_cleanly() {
        let r = report(&[], 2);
        assert!(r.suspects().is_empty());
        assert_eq!(r.suspect_share(), 0.0);
        assert_eq!(r.method(), "AG-TEST");
    }
}
