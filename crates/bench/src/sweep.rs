//! Seed-averaged activeness sweeps, parallelized with scoped threads.

use srtd_runtime::parallel::parallel_map;
use srtd_sensing::{Scenario, ScenarioConfig};

/// One cell of a sweep: both activeness levels plus the averaged value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Legitimate-user activeness of this cell.
    pub legit_activeness: f64,
    /// Attacker activeness of this cell.
    pub attacker_activeness: f64,
    /// Seed-averaged metric value.
    pub value: f64,
}

/// Averages `metric` over `seeds` scenarios at one activeness setting.
///
/// Scenario generation dominates the cost, so seeds are evaluated in
/// parallel through the runtime's scoped-thread [`parallel_map`]; the
/// order-preserving map keeps the sum (and thus the average) identical
/// for every worker-thread count.
pub fn seed_average<F>(
    base: &ScenarioConfig,
    legit: f64,
    attacker: f64,
    seeds: u64,
    metric: F,
) -> f64
where
    F: Fn(&Scenario) -> f64 + Sync,
{
    assert!(seeds > 0, "need at least one seed");
    let all_seeds: Vec<u64> = (0..seeds).collect();
    let values = parallel_map(&all_seeds, |&seed| {
        let cfg = base
            .clone()
            .with_seed(seed)
            .with_activeness(legit, attacker);
        metric(&Scenario::generate(&cfg))
    });
    values.iter().sum::<f64>() / seeds as f64
}

/// Runs a full activeness sweep: for each legit activeness setting and
/// each attacker activeness on the grid, the seed-averaged metric.
///
/// Returns points in row-major order (legit setting outer, attacker grid
/// inner) — the Fig. 6/7 layout.
pub fn activeness_sweep<F>(
    base: &ScenarioConfig,
    legit_settings: &[f64],
    attacker_grid: &[f64],
    seeds: u64,
    metric: F,
) -> Vec<SweepPoint>
where
    F: Fn(&Scenario) -> f64 + Sync,
{
    let mut out = Vec::with_capacity(legit_settings.len() * attacker_grid.len());
    for &legit in legit_settings {
        for &attacker in attacker_grid {
            out.push(SweepPoint {
                legit_activeness: legit,
                attacker_activeness: attacker,
                value: seed_average(base, legit, attacker, seeds, &metric),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_average_is_deterministic() {
        let base = ScenarioConfig::paper_default();
        let metric = |s: &Scenario| s.data.num_reports() as f64;
        let a = seed_average(&base, 0.5, 0.5, 4, metric);
        let b = seed_average(&base, 0.5, 0.5, 4, metric);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_covers_the_grid_in_order() {
        let base = ScenarioConfig::paper_default();
        let pts = activeness_sweep(&base, &[0.2, 1.0], &[0.4, 0.8], 2, |s: &Scenario| {
            s.data.num_reports() as f64
        });
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].legit_activeness, 0.2);
        assert_eq!(pts[0].attacker_activeness, 0.4);
        assert_eq!(pts[3].legit_activeness, 1.0);
        assert_eq!(pts[3].attacker_activeness, 0.8);
        // More activeness, more reports.
        assert!(pts[3].value > pts[0].value);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_panics() {
        seed_average(&ScenarioConfig::paper_default(), 0.5, 0.5, 0, |_| 0.0);
    }
}
