//! Anatomy of a Sybil attack: the paper's worked example (Tables I & III).
//!
//! Reconstructs the 4-task, 6-account example, shows how CRH is dragged
//! toward the fabricated −50 dBm claims, then walks through both
//! behavioural grouping methods — AG-TS affinity (Fig. 3) and AG-TR
//! trajectory dissimilarity (Fig. 4) — and the recovered estimates.
//!
//! Run with: `cargo run --example attack_analysis`

use sybil_td::core::{AccountGrouping, AgTr, AgTs, SybilResistantTd};
use sybil_td::truth::{Crh, SensingData, TruthDiscovery};

const NAMES: [&str; 6] = ["1", "2", "3", "4'", "4''", "4'''"];

/// Table I values with Table III timestamps; account 4 holds 4', 4'', 4'''.
fn build_example(with_attack: bool) -> SensingData {
    let ts = |m: f64, s: f64| 10.0 * 3600.0 + m * 60.0 + s;
    let mut d = SensingData::new(4);
    d.add_report(0, 0, -84.48, ts(0.0, 35.0));
    d.add_report(0, 1, -82.11, ts(2.0, 42.0));
    d.add_report(0, 2, -75.16, ts(10.0, 22.0));
    d.add_report(0, 3, -72.71, ts(13.0, 41.0));
    d.add_report(1, 1, -72.27, ts(4.0, 15.0));
    d.add_report(1, 2, -77.21, ts(6.0, 1.0));
    d.add_report(2, 0, -72.41, ts(1.0, 21.0));
    d.add_report(2, 1, -91.49, ts(4.0, 5.0));
    d.add_report(2, 3, -73.55, ts(8.0, 28.0));
    if with_attack {
        let sybil = [
            (3, [(0.0, 1.0, 10.0), (2.0, 15.0, 24.0), (3.0, 20.0, 6.0)]),
            (4, [(0.0, 1.0, 34.0), (2.0, 16.0, 8.0), (3.0, 21.0, 25.0)]),
            (5, [(0.0, 2.0, 35.0), (2.0, 17.0, 35.0), (3.0, 22.0, 2.0)]),
        ];
        for (account, visits) in sybil {
            for (task, m, s) in visits {
                d.add_report(account, task as usize, -50.0, ts(m, s));
            }
        }
    }
    d
}

fn print_truths(label: &str, truths: &[Option<f64>]) {
    print!("{label:28}");
    for t in truths {
        match t {
            Some(v) => print!(" {v:8.2}"),
            None => print!("        x"),
        }
    }
    println!();
}

fn main() {
    println!("== Table I: CRH under the Sybil attack ==\n");
    println!("{:28} {:>8} {:>8} {:>8} {:>8}", "", "T1", "T2", "T3", "T4");
    let clean = build_example(false);
    let attacked = build_example(true);
    print_truths(
        "TD without the Sybil attack",
        &Crh::default().discover(&clean).truths,
    );
    print_truths(
        "TD with the Sybil attack",
        &Crh::default().discover(&attacked).truths,
    );
    println!("\nAccounts 4', 4'', 4''' fabricate -50 dBm for T1/T3/T4 and win the");
    println!("majority — CRH follows them (the paper's vulnerability demo).\n");

    println!("== Fig. 3: AG-TS affinity (Eq. 6) ==\n");
    let ag_ts = AgTs::default();
    let affinity = ag_ts.affinity_matrix(&attacked);
    print!("      ");
    for n in NAMES {
        print!(" {n:>6}");
    }
    println!();
    for (i, row) in affinity.iter().enumerate() {
        print!("{:>6}", NAMES[i]);
        for v in row {
            print!(" {v:6.2}");
        }
        println!();
    }
    let grouping = ag_ts.group(&attacked, &[]);
    println!(
        "components at rho = {}: {:?}\n",
        ag_ts.rho(),
        named_groups(&grouping)
    );

    println!("== Fig. 4: AG-TR trajectory dissimilarity (Eqs. 7-8) ==\n");
    // Unpruned: the table below prints exact above-φ distances.
    let ag_tr = AgTr::default().with_pruning(false);
    let dissimilarity = ag_tr.dissimilarity_matrix(&attacked);
    print!("      ");
    for n in NAMES {
        print!(" {n:>6}");
    }
    println!();
    for (i, row) in dissimilarity.iter().enumerate() {
        print!("{:>6}", NAMES[i]);
        for v in row {
            print!(" {v:6.2}");
        }
        println!();
    }
    let grouping = ag_tr.group(&attacked, &[]);
    println!(
        "components at phi = {}: {:?}\n",
        ag_tr.phi(),
        named_groups(&grouping)
    );

    println!("== The framework's recovered estimates ==\n");
    println!("{:28} {:>8} {:>8} {:>8} {:>8}", "", "T1", "T2", "T3", "T4");
    let td_ts = SybilResistantTd::new(AgTs::default()).discover(&attacked, &[]);
    let td_tr = SybilResistantTd::new(AgTr::default()).discover(&attacked, &[]);
    print_truths("TD-TS", &td_ts.truths);
    print_truths("TD-TR", &td_tr.truths);
    println!("\nBoth variants collapse the Sybil trio to one low-weight voice and");
    println!("pull T1/T3/T4 back toward the legitimate readings.");
}

fn named_groups(grouping: &sybil_td::core::Grouping) -> Vec<Vec<&'static str>> {
    grouping
        .groups()
        .iter()
        .map(|g| g.iter().map(|&a| NAMES[a]).collect())
        .collect()
}
