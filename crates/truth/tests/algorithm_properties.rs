//! Property tests that every truth discovery algorithm must satisfy.

use srtd_runtime::rng::{Rng, StdRng};
use srtd_runtime::{prop, prop_assert, prop_assert_eq};
use srtd_truth::{Catd, Crh, Gtm, MeanVote, MedianVote, SensingData, TruthDiscovery};

/// Generates a random campaign: up to 6 accounts × 5 tasks, each account
/// reporting a random subset with values in a bounded band.
fn campaign(rng: &mut StdRng) -> SensingData {
    let raw = prop::vec_with(rng, 1..40, |r| {
        (
            r.gen_range(0usize..6),
            r.gen_range(0usize..5),
            r.gen_range(-100f64..100.0),
            r.gen_range(0f64..1e4),
        )
    });
    let mut data = SensingData::new(5);
    let mut seen = std::collections::HashSet::new();
    for (account, task, value, ts) in raw {
        if seen.insert((account, task)) {
            data.add_report(account, task, value, ts);
        }
    }
    data
}

fn algorithms() -> Vec<Box<dyn TruthDiscovery>> {
    vec![
        Box::new(Crh::default()),
        Box::new(Catd::default()),
        Box::new(Gtm::default()),
        Box::new(MeanVote),
        Box::new(MedianVote),
    ]
}

/// The closed-form algorithms, whose outputs are exact functions of the
/// input.
///
/// The iterative algorithms (CRH, CATD, GTM) are excluded from the
/// exact-equivariance properties: their winner-take-all weight maps are
/// *multistable* on adversarial inputs — several fixed points coexist, and
/// which one the iteration lands on can flip under one-ulp perturbations.
/// Their estimates remain inside the task hull either way (checked for all
/// algorithms above), which is the bound the Sybil-resistance analysis
/// relies on, and they are bitwise deterministic (checked below).
fn stable_algorithms() -> Vec<Box<dyn TruthDiscovery>> {
    vec![Box::new(MeanVote), Box::new(MedianVote)]
}

/// Truth estimates always lie inside the convex hull of the reports
/// for that task, and are `None` exactly for unreported tasks.
#[test]
fn estimates_stay_in_task_hull() {
    prop::check(campaign, |data| {
        for algo in algorithms() {
            let result = algo.discover(data);
            prop_assert_eq!(result.truths.len(), data.num_tasks());
            for task in 0..data.num_tasks() {
                let values: Vec<f64> = data.task_reports(task).map(|r| r.value).collect();
                match result.truths[task] {
                    None => prop_assert!(values.is_empty(), "{}", algo.name()),
                    Some(estimate) => {
                        prop_assert!(!values.is_empty(), "{}", algo.name());
                        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
                        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        prop_assert!(
                            estimate >= lo - 1e-6 && estimate <= hi + 1e-6,
                            "{}: task {} estimate {} outside [{}, {}]",
                            algo.name(),
                            task,
                            estimate,
                            lo,
                            hi
                        );
                    }
                }
            }
        }
        Ok(())
    });
}

/// Shifting every report by a constant shifts every estimate by the
/// same constant (translation equivariance).
#[test]
fn translation_equivariance() {
    prop::check(
        |rng| (campaign(rng), rng.gen_range(-50f64..50.0)),
        |(data, shift)| {
            let shift = *shift;
            let mut shifted = SensingData::new(data.num_tasks());
            for r in data.reports() {
                shifted.add_report(r.account, r.task, r.value + shift, r.timestamp);
            }
            for algo in stable_algorithms() {
                let base = algo.discover(data);
                let moved = algo.discover(&shifted);
                for (a, b) in base.truths.iter().zip(&moved.truths) {
                    match (a, b) {
                        (Some(x), Some(y)) => prop_assert!(
                            (x + shift - y).abs() < 1e-4 * (1.0 + x.abs()),
                            "{}: {} + {} != {}",
                            algo.name(),
                            x,
                            shift,
                            y
                        ),
                        (None, None) => {}
                        _ => prop_assert!(false, "{}: missing-task mismatch", algo.name()),
                    }
                }
            }
            Ok(())
        },
    );
}

/// Renumbering accounts never changes the estimates (algorithms must
/// not depend on account identity).
#[test]
fn account_relabeling_invariance() {
    prop::check(campaign, |data| {
        let n = data.num_accounts().max(1);
        // Deterministic permutation: reverse.
        let mut relabeled = SensingData::new(data.num_tasks());
        for r in data.reports() {
            relabeled.add_report(n - 1 - r.account, r.task, r.value, r.timestamp);
        }
        for algo in stable_algorithms() {
            let a = algo.discover(data);
            let b = algo.discover(&relabeled);
            for (x, y) in a.truths.iter().zip(&b.truths) {
                match (x, y) {
                    (Some(x), Some(y)) => prop_assert!(
                        (x - y).abs() < 1e-4 * (1.0 + x.abs()),
                        "{}: {} vs {}",
                        algo.name(),
                        x,
                        y
                    ),
                    (None, None) => {}
                    _ => prop_assert!(false, "{}", algo.name()),
                }
            }
        }
        Ok(())
    });
}

/// Every algorithm is bitwise deterministic: the same input gives the
/// same output.
#[test]
fn determinism() {
    prop::check(campaign, |data| {
        for algo in algorithms() {
            let a = algo.discover(data);
            let b = algo.discover(data);
            prop_assert_eq!(a, b, "{} is not deterministic", algo.name());
        }
        Ok(())
    });
}

/// Iterative algorithms terminate with sane outputs (CRH and GTM may
/// legitimately hit their iteration cap when the weight map is
/// multistable — see `stable_algorithms`), and weights are
/// finite/non-negative.
#[test]
fn convergence_and_weight_sanity() {
    prop::check(campaign, |data| {
        for algo in algorithms() {
            let r = algo.discover(data);
            if matches!(algo.name(), "Mean" | "Median" | "CATD") {
                prop_assert!(r.converged, "{} did not converge", algo.name());
            }
            prop_assert!(
                r.weights.iter().all(|w| w.is_finite() && *w >= 0.0),
                "{} produced bad weights {:?}",
                algo.name(),
                r.weights
            );
            prop_assert!(
                r.truths.iter().flatten().all(|t| t.is_finite()),
                "{} produced non-finite truths",
                algo.name()
            );
        }
        Ok(())
    });
}
