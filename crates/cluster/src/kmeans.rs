//! Lloyd's k-means with k-means++ seeding.

use crate::squared_distance;
use srtd_runtime::parallel::parallel_map_min;
use srtd_runtime::rng::StdRng;
use srtd_runtime::rng::{Rng, SeedableRng};

/// Point count below which the assignment step stays sequential — the
/// break-even where per-iteration thread spawns start paying for
/// themselves on commodity cores.
const PARALLEL_MIN_POINTS: usize = 512;

/// Configuration for a k-means run.
///
/// # Examples
///
/// ```
/// use srtd_cluster::KMeansConfig;
///
/// let cfg = KMeansConfig::new(3).with_seed(7).with_max_iterations(50);
/// assert_eq!(cfg.k, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Number of k-means++ restarts; the best-SSE run wins.
    pub restarts: usize,
    /// RNG seed, for reproducible grouping results.
    pub seed: u64,
}

impl KMeansConfig {
    /// Default configuration for `k` clusters (100 iterations, 8 restarts,
    /// fixed seed).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-means needs at least one cluster");
        Self {
            k,
            max_iterations: 100,
            restarts: 8,
            seed: 0x5eed,
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the Lloyd iteration cap.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Replaces the restart count.
    ///
    /// # Panics
    ///
    /// Panics if `restarts == 0`.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        assert!(restarts > 0, "at least one restart is required");
        self.restarts = restarts;
        self
    }
}

/// Work accounting of the pruned assignment step: of the
/// `points × centroids` candidate comparisons, how many paid for a full
/// squared distance and how many were skipped by the norm bound. The two
/// always partition the candidate count, and pruning never changes an
/// assignment — it only skips centroids that provably cannot win.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssignPruning {
    /// Point–centroid comparisons that evaluated a full squared distance.
    pub distance_evals: u64,
    /// Comparisons skipped because the norm lower bound already met or
    /// exceeded the best distance so far.
    pub skipped_by_norm: u64,
}

impl AssignPruning {
    /// Total point–centroid comparisons considered.
    pub fn total(&self) -> u64 {
        self.distance_evals + self.skipped_by_norm
    }
}

/// The outcome of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Final centroids (`k` rows; empty clusters keep their last position).
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroid — the SSE the
    /// elbow method evaluates.
    pub sse: f64,
    /// Lloyd iterations performed by the winning restart.
    pub iterations: usize,
    /// Assignment-step work accounting, summed over **all** restarts (the
    /// honest cost of the whole fit, not just the winning run).
    pub pruning: AssignPruning,
}

/// Lloyd's k-means with k-means++ seeding and multi-restart.
///
/// This is the clustering step of AG-FP: fingerprint feature vectors go in,
/// device groups come out. All runs are deterministic given the seed in the
/// config.
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// Creates a runner with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        Self { config }
    }

    /// Clusters `points`, returning assignments, centroids and SSE.
    ///
    /// If `k >= points.len()`, every point becomes its own cluster (extra
    /// centroids duplicate the last point), which is the correct degenerate
    /// behaviour for the elbow sweep.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or rows have inconsistent lengths.
    pub fn fit(&self, points: &[Vec<f64>]) -> KMeansResult {
        assert!(!points.is_empty(), "cannot cluster an empty point set");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "points must share one dimensionality"
        );
        let _span = srtd_runtime::obs::span("cluster.kmeans.fit");
        srtd_runtime::obs::counter_add("cluster.kmeans.restarts", self.config.restarts as u64);
        let k = self.config.k.min(points.len());

        let mut best: Option<KMeansResult> = None;
        let mut pruning = AssignPruning::default();
        for restart in 0..self.config.restarts {
            let seed = self
                .config
                .seed
                .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(restart as u64 + 1));
            let result = self.fit_once(points, k, seed);
            pruning.distance_evals += result.pruning.distance_evals;
            pruning.skipped_by_norm += result.pruning.skipped_by_norm;
            if best.as_ref().is_none_or(|b| result.sse < b.sse) {
                best = Some(result);
            }
        }
        let mut best = best.expect("at least one restart");
        best.pruning = pruning;
        srtd_runtime::obs::observe("cluster.kmeans.iterations", best.iterations as f64);
        // Report the requested k even when clamped: pad with duplicates of
        // the final centroid so callers can index `centroids[k-1]`.
        while best.centroids.len() < self.config.k {
            let last = best.centroids.last().cloned().unwrap_or_default();
            best.centroids.push(last);
        }
        best
    }

    fn fit_once(&self, points: &[Vec<f64>], k: usize, seed: u64) -> KMeansResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroids = plus_plus_init(points, k, &mut rng);
        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;
        let mut pruning = AssignPruning::default();
        // Point norms never change across iterations; centroid norms are
        // refreshed per update step. Together they feed the reverse-
        // triangle bound `(‖p‖ − ‖c‖)² ≤ ‖p − c‖²` that lets the
        // assignment step skip most centroids without a distance
        // computation — decision-identical because a skipped centroid
        // provably cannot beat the current best under the strict `<`
        // update rule.
        let point_norms: Vec<f64> = points.iter().map(|p| norm(p)).collect();
        let indices: Vec<usize> = (0..points.len()).collect();
        for iter in 0..self.config.max_iterations.max(1) {
            iterations = iter + 1;
            let centroid_norms: Vec<f64> = centroids.iter().map(|c| norm(c)).collect();
            // Assignment step: each point's nearest centroid is independent
            // of the others, so it maps over scoped worker threads. The gate
            // keeps small instances (like the elbow sweeps over a handful
            // of fingerprints) on the sequential path, where a per-Lloyd-
            // iteration thread spawn would cost more than the distance
            // computations; either path yields identical assignments.
            // Pruning tallies come back per point in input order and are
            // summed on this thread, so they too are thread-count
            // independent.
            let nearest_all = parallel_map_min(&indices, PARALLEL_MIN_POINTS, |&i| {
                nearest_centroid_pruned(&points[i], point_norms[i], &centroids, &centroid_norms)
            });
            let mut changed = false;
            for (i, (nearest, evals, skipped)) in nearest_all.into_iter().enumerate() {
                pruning.distance_evals += evals;
                pruning.skipped_by_norm += skipped;
                if assignments[i] != nearest {
                    assignments[i] = nearest;
                    changed = true;
                }
            }
            if !changed && iter > 0 {
                break;
            }
            // Update step.
            let dim = points[0].len();
            let mut sums = vec![vec![0.0; dim]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, &x) in sums[a].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    for (ci, &s) in c.iter_mut().zip(sum) {
                        *ci = s / count as f64;
                    }
                }
                // Empty clusters keep their previous centroid; a later
                // assignment step may repopulate them.
            }
        }
        let sse = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| squared_distance(p, &centroids[a]))
            .sum();
        KMeansResult {
            assignments,
            centroids,
            sse,
            iterations,
            pruning,
        }
    }
}

/// Euclidean norm of one vector.
fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// The index of the nearest centroid, plus (distance evaluations, norm
/// skips) for this point. The reverse triangle inequality gives
/// `|‖p‖ − ‖c‖| ≤ ‖p − c‖`, so `(‖p‖ − ‖c‖)² ≥ best_d` proves centroid
/// `c` cannot beat the running best (updates need `d < best_d` strictly);
/// skipping it leaves both the winning index and the tie-breaking
/// (first minimum wins, centroid order preserved) unchanged.
fn nearest_centroid_pruned(
    p: &[f64],
    p_norm: f64,
    centroids: &[Vec<f64>],
    centroid_norms: &[f64],
) -> (usize, u64, u64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    let (mut evals, mut skipped) = (0u64, 0u64);
    for (i, c) in centroids.iter().enumerate() {
        let gap = p_norm - centroid_norms[i];
        if gap * gap >= best_d {
            skipped += 1;
            continue;
        }
        evals += 1;
        let d = squared_distance(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, evals, skipped)
}

/// k-means++ seeding: the first center uniform, each next center sampled
/// with probability proportional to its squared distance to the nearest
/// chosen center.
fn plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut dists: Vec<f64> = points
        .iter()
        .map(|p| squared_distance(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a center; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (d, p) in dists.iter_mut().zip(points) {
            let nd = squared_distance(p, centroids.last().expect("just pushed"));
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.2, -0.1],
            vec![-0.1, 0.1],
            vec![10.0, 10.0],
            vec![10.2, 9.9],
            vec![9.9, 10.1],
        ]
    }

    #[test]
    fn separates_well_separated_blobs() {
        let r = KMeans::new(KMeansConfig::new(2)).fit(&two_blobs());
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[0], r.assignments[2]);
        assert_eq!(r.assignments[3], r.assignments[4]);
        assert_ne!(r.assignments[0], r.assignments[3]);
        assert!(r.sse < 0.5);
    }

    #[test]
    fn k_equal_points_gives_zero_sse() {
        let pts = vec![vec![1.0, 2.0]; 5];
        let r = KMeans::new(KMeansConfig::new(2)).fit(&pts);
        assert_eq!(r.sse, 0.0);
    }

    #[test]
    fn k_one_centroid_is_the_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = KMeans::new(KMeansConfig::new(1)).fit(&pts);
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
        assert!((r.sse - 8.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_n_is_clamped_but_padded() {
        let pts = vec![vec![0.0], vec![5.0]];
        let r = KMeans::new(KMeansConfig::new(4)).fit(&pts);
        assert_eq!(r.centroids.len(), 4);
        assert_eq!(r.sse, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = KMeans::new(KMeansConfig::new(2).with_seed(42)).fit(&pts);
        let b = KMeans::new(KMeansConfig::new(2).with_seed(42)).fit(&pts);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_input_panics() {
        KMeans::new(KMeansConfig::new(1)).fit(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_k_panics() {
        KMeansConfig::new(0);
    }

    /// SSE never increases when k grows (with shared seeding and enough
    /// restarts this holds on small instances).
    #[test]
    fn sse_decreases_with_k() {
        prop::check(
            |rng| rng.gen_range(0u64..50),
            |&seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let pts: Vec<Vec<f64>> = (0..20)
                    .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
                    .collect();
                let mut prev = f64::INFINITY;
                for k in 1..=5 {
                    let r = KMeans::new(KMeansConfig::new(k).with_restarts(16)).fit(&pts);
                    prop_assert!(r.sse <= prev + 1e-6);
                    prev = r.sse;
                }
                Ok(())
            },
        );
    }

    /// The norm-bound skip must never change which centroid wins — the
    /// pruned scan is pinned against the naive full scan on random data.
    #[test]
    fn pruned_nearest_matches_the_full_scan() {
        prop::check(
            |rng| {
                let dim = rng.gen_range(1usize..5);
                let point: Vec<f64> = (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
                let centroids = prop::vec_with(rng, 1..8, |r| {
                    (0..dim)
                        .map(|_| r.gen_range(-10f64..10.0))
                        .collect::<Vec<f64>>()
                });
                (point, centroids)
            },
            |(point, centroids)| {
                let mut naive_best = 0;
                let mut naive_d = f64::INFINITY;
                for (i, c) in centroids.iter().enumerate() {
                    let d = squared_distance(point, c);
                    if d < naive_d {
                        naive_d = d;
                        naive_best = i;
                    }
                }
                let norms: Vec<f64> = centroids.iter().map(|c| norm(c)).collect();
                let (best, evals, skipped) =
                    nearest_centroid_pruned(point, norm(point), centroids, &norms);
                prop_assert!(
                    best == naive_best,
                    "pruned scan picked {best}, naive {naive_best}"
                );
                prop_assert!(evals + skipped == centroids.len() as u64);
                prop_assert!(
                    evals >= 1,
                    "the running best must come from a real distance"
                );
                Ok(())
            },
        );
    }

    #[test]
    fn fit_accounts_assignment_work_across_restarts() {
        let r = KMeans::new(KMeansConfig::new(2).with_restarts(3)).fit(&two_blobs());
        // 3 restarts × ≥1 iteration × 6 points × 2 centroids comparisons.
        assert!(r.pruning.total() >= 3 * 6 * 2, "{:?}", r.pruning);
        assert_eq!(
            r.pruning.total(),
            r.pruning.distance_evals + r.pruning.skipped_by_norm
        );
        // Well-separated blobs give the bound real work to skip.
        assert!(r.pruning.skipped_by_norm > 0, "{:?}", r.pruning);
    }

    /// Every point is assigned to its nearest centroid at convergence.
    #[test]
    fn assignments_are_nearest() {
        prop::check(
            |rng| (rng.gen_range(0u64..50), rng.gen_range(1usize..5)),
            |&(seed, k)| {
                let mut rng = StdRng::seed_from_u64(seed);
                let pts: Vec<Vec<f64>> = (0..15)
                    .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
                    .collect();
                let r = KMeans::new(KMeansConfig::new(k)).fit(&pts);
                for (p, &a) in pts.iter().zip(&r.assignments) {
                    let da = squared_distance(p, &r.centroids[a]);
                    for c in &r.centroids[..k.min(pts.len())] {
                        prop_assert!(da <= squared_distance(p, c) + 1e-9);
                    }
                }
                Ok(())
            },
        );
    }
}
