//! The incremental epoch engine: batch → stream.
//!
//! Production MCS is a stream — reports arrive continuously while truths
//! must stay servable. This module turns the one-shot pipeline into an
//! epoch loop:
//!
//! 1. [`EpochEngine::ingest`] validates each report and parks it in a
//!    per-shard buffer (shard = account mod shard count) without touching
//!    the live campaign;
//! 2. [`EpochEngine::run_epoch`] drains the shards in deterministic order
//!    (shard ascending, FIFO within a shard), folds the batch into the
//!    generation-stamped CSR index of [`SensingData`], re-runs grouping
//!    plus Algorithm 2 — warm-seeded from the previous epoch's group
//!    weights — and publishes an immutable [`EpochSnapshot`];
//! 3. readers hold an [`EpochReader`] and see the previous snapshot,
//!    untouched, until the swap: publication is one `Arc` store under a
//!    mutex, never a rebuild in place.
//!
//! The heavy per-epoch work (per-task arena build, loss reduction, truth
//! updates) runs on the runtime's scoped worker pool inside
//! `discover_warm`; the engine itself adds no threads. Everything stays
//! deterministic: the same ingest sequence produces byte-identical
//! snapshots regardless of worker count.

use crate::audit::AuditReport;
use crate::stochastic::{AuditPolicy, StochasticAuditor};
use srtd_core::{AccountGrouping, EdgeGrouping, Grouping, SybilResistantTd};
use srtd_graph::UnionFind;
use srtd_runtime::json::{Json, ToJson};
use srtd_runtime::obs;
use srtd_truth::{Report, SensingData};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Epoch engine policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConfig {
    /// Ingest buffer shards; accounts map to shards by `account % shards`.
    /// Zero is clamped to one.
    pub num_shards: usize,
    /// Seed each epoch's Algorithm 2 run with the previous epoch's group
    /// weights (falls back to the cold Eq. 4 prior whenever the grouping
    /// changed shape).
    pub warm_start: bool,
}

impl Default for EpochConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            warm_start: true,
        }
    }
}

/// Why the epoch engine refused a report at ingest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestError {
    /// The task index is outside the campaign.
    UnknownTask {
        /// The offending task index.
        task: usize,
        /// Tasks in the campaign.
        num_tasks: usize,
    },
    /// The value is NaN or infinite.
    NonFiniteValue,
    /// The timestamp is NaN or infinite.
    NonFiniteTimestamp,
    /// The account already reported this task — folded or still buffered.
    DuplicateReport,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::UnknownTask { task, num_tasks } => {
                write!(f, "task {task} is outside the {num_tasks}-task campaign")
            }
            IngestError::NonFiniteValue => write!(f, "value is not finite"),
            IngestError::NonFiniteTimestamp => write!(f, "timestamp is not finite"),
            IngestError::DuplicateReport => {
                write!(f, "account already reported this task")
            }
        }
    }
}

impl Error for IngestError {}

/// One epoch's published output: the truths and grouping readers serve
/// while the next epoch computes. Immutable by construction — a new epoch
/// publishes a new snapshot, it never mutates an old one.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Epoch counter; 0 is the empty pre-first-epoch snapshot.
    pub epoch: u64,
    /// The data plane's generation stamp at publication.
    pub generation: u64,
    /// Tasks in the campaign.
    pub num_tasks: usize,
    /// Accounts known to the data plane.
    pub num_accounts: usize,
    /// Reports folded in so far (all epochs).
    pub num_reports: usize,
    /// Reports folded in by this epoch alone.
    pub folded: usize,
    /// Estimated truth per task; `None` for unreported tasks.
    pub truths: Vec<Option<f64>>,
    /// Group label per account.
    pub labels: Vec<usize>,
    /// Final per-group weights.
    pub group_weights: Vec<f64>,
    /// Iterations Algorithm 2 took this epoch.
    pub iterations: usize,
    /// Whether the convergence criterion fired before the cap.
    pub converged: bool,
    /// Whether this epoch ran warm-seeded.
    pub warm_started: bool,
    /// Accounts spot-checked by the stochastic audit this epoch (sorted;
    /// empty when no auditor is configured).
    pub audited: Vec<usize>,
    /// All accounts the audit has convicted so far (sorted, cumulative).
    pub convicted: Vec<usize>,
    /// Wall-clock nanoseconds the epoch took (drain through publish).
    /// A measurement, not part of the deterministic output; 0 for the
    /// epoch-0 empty snapshot.
    pub duration_ns: u64,
}

impl EpochSnapshot {
    fn empty(num_tasks: usize) -> Self {
        Self {
            epoch: 0,
            generation: 0,
            num_tasks,
            num_accounts: 0,
            num_reports: 0,
            folded: 0,
            truths: vec![None; num_tasks],
            labels: Vec::new(),
            group_weights: Vec::new(),
            iterations: 0,
            converged: true,
            warm_started: false,
            audited: Vec::new(),
            convicted: Vec::new(),
            duration_ns: 0,
        }
    }

    /// Number of account groups this epoch discovered.
    pub fn num_groups(&self) -> usize {
        self.group_weights.len()
    }
}

impl ToJson for EpochSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("epoch", self.epoch.to_json()),
            ("generation", self.generation.to_json()),
            ("num_tasks", self.num_tasks.to_json()),
            ("num_accounts", self.num_accounts.to_json()),
            ("num_reports", self.num_reports.to_json()),
            ("folded", self.folded.to_json()),
            ("truths", self.truths.to_json()),
            ("labels", self.labels.to_json()),
            ("group_weights", self.group_weights.to_json()),
            ("iterations", self.iterations.to_json()),
            ("converged", self.converged.to_json()),
            ("warm_started", self.warm_started.to_json()),
            ("audited", self.audited.to_json()),
            ("convicted", self.convicted.to_json()),
            ("duration_ns", self.duration_ns.to_json()),
        ])
    }
}

/// A cheap cross-thread handle to the latest published snapshot.
#[derive(Debug, Clone)]
pub struct EpochReader {
    published: Arc<Mutex<Arc<EpochSnapshot>>>,
}

impl EpochReader {
    /// The latest published snapshot. The lock guards only one `Arc`
    /// clone, so readers never wait on an epoch computation.
    pub fn latest(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.published.lock().expect("snapshot lock poisoned"))
    }
}

/// The epoch-driven incremental service loop around one campaign.
#[derive(Debug)]
pub struct EpochEngine<G> {
    framework: SybilResistantTd<G>,
    config: EpochConfig,
    data: SensingData,
    fingerprints: Vec<Vec<f64>>,
    shards: Vec<Vec<Report>>,
    pending: HashSet<(usize, usize)>,
    rejected: u64,
    epoch: u64,
    prev_weights: Option<Vec<f64>>,
    published: Arc<Mutex<Arc<EpochSnapshot>>>,
    /// Decision edges cached from the last incremental epoch (sorted,
    /// deduplicated). Only [`Self::run_epoch_incremental`] maintains them.
    group_edges: Vec<(usize, usize)>,
    /// The persistent component forest the incremental path merges into.
    group_uf: UnionFind,
    /// Data-plane generation at which `group_edges` were last refreshed;
    /// a mismatch means some other path folded reports in between and the
    /// cache must be treated as wholly dirty.
    regroup_generation: u64,
    /// The stochastic audit stage, if configured (see [`Self::set_audit`]).
    auditor: Option<StochasticAuditor>,
    /// Trusted reference value per task for audit spot checks; `None`
    /// marks a task the platform cannot reference-check.
    audit_reference: Vec<Option<f64>>,
}

impl<G: AccountGrouping> EpochEngine<G> {
    /// Creates an engine over an empty `num_tasks`-task campaign and
    /// publishes the epoch-0 empty snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `num_tasks == 0`.
    pub fn new(framework: SybilResistantTd<G>, num_tasks: usize, config: EpochConfig) -> Self {
        assert!(num_tasks > 0, "a campaign needs at least one task");
        let shards = config.num_shards.max(1);
        Self {
            framework,
            config,
            data: SensingData::new(num_tasks),
            fingerprints: Vec::new(),
            shards: vec![Vec::new(); shards],
            pending: HashSet::new(),
            rejected: 0,
            epoch: 0,
            prev_weights: None,
            published: Arc::new(Mutex::new(Arc::new(EpochSnapshot::empty(num_tasks)))),
            group_edges: Vec::new(),
            group_uf: UnionFind::new(0),
            regroup_generation: 0,
            auditor: None,
            audit_reference: Vec::new(),
        }
    }

    /// Enables the stochastic audit stage: every epoch, `policy` decides
    /// which accounts get spot-checked against the trusted reference
    /// registered via [`Self::set_audit_reference`]. Without a reference
    /// every audit passes trivially.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`AuditPolicy::validate`]).
    pub fn set_audit(&mut self, policy: AuditPolicy) {
        self.auditor = Some(StochasticAuditor::new(policy));
    }

    /// Registers the trusted per-task reference values audits compare
    /// reports against (probe-device measurements in production, ground
    /// truth in simulation). `None` marks an unauditable task.
    pub fn set_audit_reference(&mut self, reference: Vec<Option<f64>>) {
        self.audit_reference = reference;
    }

    /// The stochastic auditor, if the stage is enabled.
    pub fn auditor(&self) -> Option<&StochasticAuditor> {
        self.auditor.as_ref()
    }

    /// Runs the audit stage for the epoch being built (no-op without an
    /// auditor) and returns `(targets, cumulative convictions)`.
    fn audit_stage(&mut self, epoch: u64) -> (Vec<usize>, Vec<usize>) {
        match self.auditor.as_mut() {
            Some(auditor) => {
                let _audit = obs::span("epoch.audit");
                let pass = auditor.audit_epoch(
                    epoch,
                    self.data.generation(),
                    &self.data,
                    &self.audit_reference,
                );
                (pass.targets, auditor.convicted())
            }
            None => (Vec::new(), Vec::new()),
        }
    }

    /// Registers account fingerprints for fingerprint-based grouping
    /// methods (one feature vector per account index, replacing any
    /// previous registration). Methods that don't use fingerprints can
    /// skip this entirely.
    pub fn set_fingerprints(&mut self, fingerprints: Vec<Vec<f64>>) {
        self.fingerprints = fingerprints;
    }

    /// Validates one report and parks it in its account's shard buffer;
    /// it joins the campaign at the next [`Self::run_epoch`].
    ///
    /// # Errors
    ///
    /// Rejects out-of-campaign tasks, non-finite values or timestamps,
    /// and duplicates against both folded and still-buffered reports.
    /// Rejected reports are counted and otherwise ignored.
    pub fn ingest(
        &mut self,
        account: usize,
        task: usize,
        value: f64,
        timestamp: f64,
    ) -> Result<(), IngestError> {
        let outcome = self.validate(account, task, value, timestamp);
        match outcome {
            Ok(()) => {
                self.pending.insert((account, task));
                let shard = account % self.shards.len();
                self.shards[shard].push(Report {
                    account,
                    task,
                    value,
                    timestamp,
                });
                obs::counter_add("server.epoch.ingested", 1);
                Ok(())
            }
            Err(e) => {
                self.rejected += 1;
                Err(e)
            }
        }
    }

    fn validate(
        &self,
        account: usize,
        task: usize,
        value: f64,
        timestamp: f64,
    ) -> Result<(), IngestError> {
        if task >= self.data.num_tasks() {
            return Err(IngestError::UnknownTask {
                task,
                num_tasks: self.data.num_tasks(),
            });
        }
        if !value.is_finite() {
            return Err(IngestError::NonFiniteValue);
        }
        if !timestamp.is_finite() {
            return Err(IngestError::NonFiniteTimestamp);
        }
        if self.data.has_report(account, task) || self.pending.contains(&(account, task)) {
            return Err(IngestError::DuplicateReport);
        }
        Ok(())
    }

    /// Reports buffered for the next epoch.
    pub fn pending_reports(&self) -> usize {
        self.pending.len()
    }

    /// Reports rejected at ingest so far.
    pub fn rejected_reports(&self) -> u64 {
        self.rejected
    }

    /// Epochs run so far.
    pub fn epochs_run(&self) -> u64 {
        self.epoch
    }

    /// A read-only view of the folded campaign data.
    pub fn data(&self) -> &SensingData {
        &self.data
    }

    /// A cross-thread reader of the latest published snapshot.
    pub fn reader(&self) -> EpochReader {
        EpochReader {
            published: Arc::clone(&self.published),
        }
    }

    /// The latest published snapshot.
    pub fn latest(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.published.lock().expect("snapshot lock poisoned"))
    }

    /// An operator-facing [`AuditReport`] over the latest snapshot:
    /// grouping-flagged clusters of at least `min_group_size` accounts,
    /// joined with every account the stochastic audit has convicted.
    pub fn audit_report(&self, min_group_size: usize) -> AuditReport {
        let snap = self.latest();
        let grouping = Grouping::from_labels(&snap.labels);
        AuditReport::build(
            grouping,
            self.framework.grouping_method().name(),
            min_group_size,
        )
        .with_convictions(snap.convicted.clone())
    }

    /// Runs one epoch: drains the shard buffers in deterministic order
    /// (shard ascending, FIFO within a shard), folds the batch into the
    /// incremental CSR index, re-runs grouping + Algorithm 2 (warm-seeded
    /// when configured), and publishes the new snapshot. An epoch with an
    /// empty buffer is the steady-state case: no fold, but discovery
    /// re-runs and re-publishes.
    ///
    /// Each epoch is one telemetry window (`epoch-<n>`): the engine
    /// brackets the run with `obs::window_begin`/`window_end`, so the
    /// retained timeline holds one delta report per epoch with a trace
    /// tree attributing the `epoch.fold` / `epoch.discover` / `epoch.swap`
    /// stages under the `server.epoch` span.
    pub fn run_epoch(&mut self) -> Arc<EpochSnapshot> {
        obs::window_begin();
        let started = std::time::Instant::now();
        let snapshot = {
            let _span = obs::span("server.epoch");

            // Drain: shard order then arrival order is a deterministic
            // function of the ingest sequence alone.
            let mut batch = Vec::with_capacity(self.pending.len());
            for shard in &mut self.shards {
                batch.append(shard);
            }
            self.pending.clear();
            let folded = batch.len();
            {
                let _fold = obs::span("epoch.fold");
                if folded > 0 {
                    let max_account = batch.iter().map(|r| r.account).max().expect("non-empty");
                    if max_account >= self.data.num_accounts() {
                        self.data.reserve_accounts(max_account + 1);
                    }
                    self.data.fold_batch(&batch);
                    obs::counter_add("server.epoch.folded", folded as u64);
                }
            }

            let warm = if self.config.warm_start {
                self.prev_weights.as_deref()
            } else {
                None
            };
            let result = {
                let _discover = obs::span("epoch.discover");
                self.framework
                    .discover_warm(&self.data, &self.fingerprints, warm)
            };
            obs::counter_add("server.epoch.iterations", result.iterations as u64);

            let (audited, convicted) = self.audit_stage(self.epoch + 1);

            let _swap = obs::span("epoch.swap");
            self.epoch += 1;
            self.prev_weights = Some(result.group_weights.clone());
            let snapshot = Arc::new(EpochSnapshot {
                epoch: self.epoch,
                generation: self.data.generation(),
                num_tasks: self.data.num_tasks(),
                num_accounts: self.data.num_accounts(),
                num_reports: self.data.num_reports(),
                folded,
                truths: result.truths,
                labels: result.grouping.labels().to_vec(),
                group_weights: result.group_weights,
                iterations: result.iterations,
                converged: result.converged,
                warm_started: result.warm_started,
                audited,
                convicted,
                duration_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            });
            *self.published.lock().expect("snapshot lock poisoned") = Arc::clone(&snapshot);
            obs::counter_add("server.epoch.snapshot_swaps", 1);
            snapshot
        };
        // Wall-clock facts go to gauges, never histograms: histogram
        // buckets are part of the deterministic export.
        obs::gauge_set("epoch.duration_ns", snapshot.duration_ns as f64);
        obs::gauge_set("server.ingest.backlog", self.pending.len() as f64);
        obs::window_end(&format!("epoch-{}", self.epoch));
        snapshot
    }
}

impl<G: EdgeGrouping> EpochEngine<G> {
    /// [`Self::run_epoch`] with incremental re-grouping: instead of
    /// re-running the grouping method over the whole campaign, the epoch
    /// re-examines only pairs touching a *dirty* account (one that folded
    /// reports this epoch, or arrived since the last grouping) and merges
    /// the surviving edges into a persistent [`UnionFind`].
    ///
    /// Soundness rests on the [`EdgeGrouping`] locality contract: an edge
    /// between two untouched accounts depends only on their unchanged data,
    /// so it is carried over verbatim. Two regimes:
    ///
    /// * **merge** — no cached edge touched a dirty account: the forest
    ///   grows to the new account count and the fresh edges union in
    ///   (`epoch.regroup.merged_edges`); nothing is rebuilt.
    /// * **rebuild** — some cached edge must be re-decided (its endpoints
    ///   got new reports and may have drifted apart): union-find cannot
    ///   un-merge, so the forest is rebuilt from kept + fresh edges
    ///   (`epoch.regroup.rebuilds`). Still cheap — a rebuild is pure
    ///   union-find over the cached edge list, with **zero** distance
    ///   evaluations for clean pairs.
    ///
    /// Either way the resulting partition is pinned identical to what a
    /// from-scratch [`AccountGrouping::group`] would produce (the
    /// `incremental_group` suite enforces this), and the published
    /// snapshot has the same shape as the batch path's.
    pub fn run_epoch_incremental(&mut self) -> Arc<EpochSnapshot> {
        obs::window_begin();
        let started = std::time::Instant::now();
        let snapshot = {
            let _span = obs::span("server.epoch");

            // Drain: shard order then arrival order, as in `run_epoch`.
            let mut batch = Vec::with_capacity(self.pending.len());
            for shard in &mut self.shards {
                batch.append(shard);
            }
            self.pending.clear();
            let folded = batch.len();
            // If another path (`run_epoch`) folded reports since the last
            // incremental grouping, the edge cache no longer knows which
            // accounts changed — treat everything as dirty.
            let stale = self.data.generation() != self.regroup_generation;
            {
                let _fold = obs::span("epoch.fold");
                if folded > 0 {
                    let max_account = batch.iter().map(|r| r.account).max().expect("non-empty");
                    if max_account >= self.data.num_accounts() {
                        self.data.reserve_accounts(max_account + 1);
                    }
                    self.data.fold_batch(&batch);
                    obs::counter_add("server.epoch.folded", folded as u64);
                }
            }

            let grouping = {
                let _regroup = obs::span("epoch.regroup");
                let n = self.data.num_accounts();
                let mut dirty = vec![stale; n];
                for report in &batch {
                    dirty[report.account] = true;
                }
                // Accounts the forest has never seen (reserve_accounts can
                // create report-less accounts below the batch maximum) have
                // no cached decisions either.
                for flag in dirty.iter_mut().skip(self.group_uf.len()) {
                    *flag = true;
                }
                let dirty_count = dirty.iter().filter(|&&d| d).count() as u64;
                obs::counter_add("epoch.regroup.dirty_accounts", dirty_count);
                let (kept, dropped): (Vec<_>, Vec<_>) = self
                    .group_edges
                    .iter()
                    .partition(|&&(i, j)| !dirty[i] && !dirty[j]);
                let fresh = self
                    .framework
                    .grouping_method()
                    .decision_edges(&self.data, Some(&dirty));
                if dropped.is_empty() {
                    self.group_uf.grow(n);
                    for &(i, j) in &fresh {
                        self.group_uf.union(i, j);
                    }
                    obs::counter_add("epoch.regroup.merged_edges", fresh.len() as u64);
                } else {
                    let mut uf = UnionFind::new(n);
                    for &(i, j) in kept.iter().chain(&fresh) {
                        uf.union(i, j);
                    }
                    self.group_uf = uf;
                    obs::counter_add("epoch.regroup.rebuilds", 1);
                }
                self.group_edges = kept;
                self.group_edges.extend(fresh);
                self.group_edges.sort_unstable();
                self.group_edges.dedup();
                self.regroup_generation = self.data.generation();
                obs::gauge_set("epoch.regroup.edges", self.group_edges.len() as f64);
                Grouping::new(self.group_uf.groups())
            };

            let warm = if self.config.warm_start {
                self.prev_weights.as_deref()
            } else {
                None
            };
            let result = {
                let _discover = obs::span("epoch.discover");
                self.framework
                    .discover_with_grouping_seeded(&self.data, grouping, warm)
            };
            obs::counter_add("server.epoch.iterations", result.iterations as u64);

            let (audited, convicted) = self.audit_stage(self.epoch + 1);

            let _swap = obs::span("epoch.swap");
            self.epoch += 1;
            self.prev_weights = Some(result.group_weights.clone());
            let snapshot = Arc::new(EpochSnapshot {
                epoch: self.epoch,
                generation: self.data.generation(),
                num_tasks: self.data.num_tasks(),
                num_accounts: self.data.num_accounts(),
                num_reports: self.data.num_reports(),
                folded,
                truths: result.truths,
                labels: result.grouping.labels().to_vec(),
                group_weights: result.group_weights,
                iterations: result.iterations,
                converged: result.converged,
                warm_started: result.warm_started,
                audited,
                convicted,
                duration_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            });
            *self.published.lock().expect("snapshot lock poisoned") = Arc::clone(&snapshot);
            obs::counter_add("server.epoch.snapshot_swaps", 1);
            snapshot
        };
        obs::gauge_set("epoch.duration_ns", snapshot.duration_ns as f64);
        obs::gauge_set("server.ingest.backlog", self.pending.len() as f64);
        obs::window_end(&format!("epoch-{}", self.epoch));
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_core::SingletonGrouping;

    fn engine(num_shards: usize) -> EpochEngine<SingletonGrouping> {
        EpochEngine::new(
            SybilResistantTd::new(SingletonGrouping),
            4,
            EpochConfig {
                num_shards,
                warm_start: true,
            },
        )
    }

    #[test]
    fn epoch_zero_is_an_empty_snapshot() {
        let e = engine(4);
        let snap = e.latest();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.truths, vec![None; 4]);
        assert!(snap.converged);
    }

    #[test]
    fn ingest_validates_and_folds_at_the_epoch_boundary() {
        let mut e = engine(2);
        e.ingest(0, 0, -70.0, 1.0).expect("valid");
        e.ingest(1, 0, -74.0, 2.0).expect("valid");
        assert_eq!(
            e.ingest(0, 0, -71.0, 3.0),
            Err(IngestError::DuplicateReport),
            "duplicate against the pending buffer"
        );
        assert!(matches!(
            e.ingest(0, 9, -70.0, 1.0),
            Err(IngestError::UnknownTask { task: 9, .. })
        ));
        assert_eq!(
            e.ingest(2, 1, f64::NAN, 1.0),
            Err(IngestError::NonFiniteValue)
        );
        assert_eq!(e.pending_reports(), 2);
        assert_eq!(e.rejected_reports(), 3);
        assert_eq!(e.data().num_reports(), 0, "nothing folded before the epoch");

        let snap = e.run_epoch();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.folded, 2);
        assert_eq!(snap.num_reports, 2);
        let truth = snap.truths[0].expect("task 0 was reported");
        assert!((truth + 72.0).abs() < 0.5, "truth {truth} far from -72");
        assert_eq!(
            e.ingest(0, 0, -71.0, 3.0),
            Err(IngestError::DuplicateReport),
            "duplicate against folded data"
        );
    }

    #[test]
    fn drain_order_is_deterministic_across_shard_counts_with_one_shard_per_account() {
        // Same ingest sequence, different shard counts: the folded data
        // may order reports differently across shards, but per-task and
        // per-account views are insertion-ordered within each account, so
        // the discovered truths agree bitwise.
        let mut a = engine(1);
        let mut b = engine(4);
        for e in [&mut a, &mut b] {
            e.ingest(2, 0, -70.0, 1.0).unwrap();
            e.ingest(0, 0, -74.0, 2.0).unwrap();
            e.ingest(1, 1, -60.0, 3.0).unwrap();
        }
        let sa = a.run_epoch();
        let sb = b.run_epoch();
        assert_eq!(sa.truths, sb.truths);
        assert_eq!(sa.num_reports, sb.num_reports);
    }

    #[test]
    fn steady_state_epochs_warm_start_and_republish() {
        let mut e = engine(4);
        e.ingest(0, 0, -70.0, 1.0).unwrap();
        e.ingest(1, 0, -74.0, 2.0).unwrap();
        e.ingest(1, 1, -61.0, 3.0).unwrap();
        let first = e.run_epoch();
        assert!(!first.warm_started, "epoch 1 has no seed");

        let reader = e.reader();
        let second = e.run_epoch();
        assert!(second.warm_started);
        assert_eq!(second.folded, 0);
        assert_eq!(second.generation, first.generation, "no fold, no bump");
        // The warm epoch takes one refinement step from the seed, so it
        // moves no truth by more than the convergence tolerance.
        for (a, b) in second.truths.iter().zip(&first.truths) {
            match (a, b) {
                (Some(a), Some(b)) => assert!((a - b).abs() <= 1e-6, "{a} vs {b}"),
                (a, b) => assert_eq!(a, b),
            }
        }
        assert!(
            second.iterations <= 2,
            "steady state: {}",
            second.iterations
        );
        assert_eq!(reader.latest().epoch, 2, "reader sees the swap");
    }

    #[test]
    fn audit_stage_convicts_a_planted_deviant() {
        use crate::stochastic::AuditPolicy;
        let mut e = engine(2);
        e.set_audit(AuditPolicy {
            seed: 3,
            targets_per_epoch: 4, // covers every account each epoch
            tolerance: 12.0,
            min_deviant: 2,
            conviction_failures: 2,
        });
        e.set_audit_reference(vec![Some(-75.0), Some(-70.0), Some(-80.0), None]);
        // Account 0 honest, account 1 wildly deviant on two tasks.
        e.ingest(0, 0, -74.0, 1.0).unwrap();
        e.ingest(0, 1, -68.0, 2.0).unwrap();
        e.ingest(1, 0, -50.0, 3.0).unwrap();
        e.ingest(1, 1, -50.0, 4.0).unwrap();
        let first = e.run_epoch();
        assert_eq!(first.audited, vec![0, 1], "all accounts spot-checked");
        assert!(first.convicted.is_empty(), "one failure is below k=2");
        let second = e.run_epoch();
        assert_eq!(second.convicted, vec![1], "conviction at exactly k");
        assert!(!e.auditor().unwrap().is_convicted(0));
        assert_eq!(e.auditor().unwrap().convicted_epoch(1), Some(2));
        // The operator-facing report carries the conviction even though
        // singleton grouping flags no clusters.
        let report = e.audit_report(2);
        assert!(report.suspects().is_empty());
        assert_eq!(report.convicted(), &[1]);
        assert!(report.is_suspect(1));
        assert!(!report.is_suspect(0));
    }

    #[test]
    fn snapshots_without_an_auditor_have_empty_audit_fields() {
        let mut e = engine(2);
        e.ingest(0, 0, -70.0, 1.0).unwrap();
        let snap = e.run_epoch();
        assert!(snap.audited.is_empty());
        assert!(snap.convicted.is_empty());
    }

    #[test]
    fn new_accounts_grow_the_campaign_mid_stream() {
        let mut e = engine(4);
        e.ingest(0, 0, -70.0, 1.0).unwrap();
        e.run_epoch();
        e.ingest(7, 0, -72.0, 2.0).unwrap();
        let snap = e.run_epoch();
        assert_eq!(snap.num_accounts, 8);
        assert_eq!(snap.labels.len(), 8);
        assert!(
            !snap.warm_started,
            "grouping changed shape, seed must be dropped"
        );
    }
}
