//! A full simulated Wi-Fi measurement campaign (the paper's §V setup).
//!
//! Generates the 10-POI, 8-volunteer, 2-attacker campaign, runs four
//! aggregation methods — CRH and the framework with each grouping method —
//! and prints per-task estimates plus the MAE summary.
//!
//! Run with: `cargo run --example wifi_campaign [seed]`

use sybil_td::core::{AgFp, AgTr, AgTs, SybilResistantTd};
use sybil_td::metrics::mae;
use sybil_td::sensing::{Scenario, ScenarioConfig};
use sybil_td::truth::{Crh, TruthDiscovery};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let config = ScenarioConfig::paper_default().with_seed(seed);
    let scenario = Scenario::generate(&config);
    println!(
        "campaign: {} tasks, {} accounts ({} Sybil), {} devices, seed {seed}",
        scenario.data.num_tasks(),
        scenario.num_accounts(),
        scenario.is_sybil.iter().filter(|&&s| s).count(),
        scenario.fleet.len(),
    );
    println!();

    let crh = Crh::default().discover(&scenario.data).truths_or(f64::NAN);
    let td_fp = SybilResistantTd::new(AgFp::default())
        .discover(&scenario.data, &scenario.fingerprints)
        .truths_or(f64::NAN);
    let td_ts = SybilResistantTd::new(AgTs::default())
        .discover(&scenario.data, &scenario.fingerprints)
        .truths_or(f64::NAN);
    let td_tr = SybilResistantTd::new(AgTr::default())
        .discover(&scenario.data, &scenario.fingerprints)
        .truths_or(f64::NAN);

    println!("task |  truth |    CRH |  TD-FP |  TD-TS |  TD-TR");
    println!("-----+--------+--------+--------+--------+-------");
    for t in 0..scenario.data.num_tasks() {
        println!(
            " T{:<3}| {:6.1} | {:6.1} | {:6.1} | {:6.1} | {:6.1}",
            t + 1,
            scenario.ground_truth[t],
            crh[t],
            td_fp[t],
            td_ts[t],
            td_tr[t],
        );
    }
    println!();
    println!("MAE (dBm, lower is better):");
    for (name, estimates) in [
        ("CRH  ", &crh),
        ("TD-FP", &td_fp),
        ("TD-TS", &td_ts),
        ("TD-TR", &td_tr),
    ] {
        let err = mae(estimates, &scenario.ground_truth).expect("equal lengths");
        println!("  {name}  {err:6.2}");
    }
}
