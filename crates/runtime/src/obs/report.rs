//! Snapshots of the registry: JSON export and human-readable tables.

use super::store::{Store, BUCKET_BOUNDS};
use crate::json::{Json, ToJson};
use std::fmt::Write as _;

/// One histogram in a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Non-empty buckets as `(upper_bound, count)`; the overflow bucket
    /// reports `f64::INFINITY` as its bound.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0 < q <= 1`) by linear interpolation
    /// inside the bucket holding the target rank, between the previous
    /// non-empty finite bound (or 0) and the bucket's own bound. With
    /// 1–2–5 decade buckets the estimate is within one bucket width of
    /// the true value; the raw bucket counts remain the deterministic
    /// source of truth. Ranks landing in the overflow bucket report its
    /// lower edge — all the histogram knows. `None` when empty.
    pub fn quantile_est(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        let mut lower = 0.0;
        for &(bound, c) in &self.buckets {
            let before = cumulative;
            cumulative += c;
            if cumulative >= target {
                if !bound.is_finite() {
                    return Some(lower);
                }
                let frac = (target - before) as f64 / c as f64;
                return Some(lower + (bound - lower) * frac);
            }
            lower = bound;
        }
        None
    }
}

/// One span aggregate in a [`Report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: &'static str,
    /// Number of completed guards.
    pub count: u64,
    /// Total wall-clock nanoseconds across all guards.
    pub total_ns: u64,
    /// Fastest single guard.
    pub min_ns: u64,
    /// Slowest single guard.
    pub max_ns: u64,
}

/// One structured event in a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventSnapshot {
    /// Event name.
    pub name: String,
    /// Ordered `(key, value)` payload.
    pub fields: Vec<(String, Json)>,
}

/// An immutable snapshot of everything collected so far.
///
/// Counters, gauges, histograms and spans are sorted by name; events keep
/// emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Monotonic counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, last value)`.
    pub gauges: Vec<(String, f64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span aggregates.
    pub spans: Vec<SpanSnapshot>,
    /// Structured events, in emission order.
    pub events: Vec<EventSnapshot>,
}

impl Report {
    pub(super) fn from_store(store: &Store) -> Self {
        Self {
            counters: store
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: store.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: store
                .histograms
                .iter()
                .map(|(name, h)| HistogramSnapshot {
                    name: name.clone(),
                    count: h.count,
                    sum: h.sum,
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(i, &c)| {
                            let bound = BUCKET_BOUNDS.get(i).copied().unwrap_or(f64::INFINITY);
                            (bound, c)
                        })
                        .collect(),
                })
                .collect(),
            spans: store
                .spans
                .iter()
                .map(|(&name, s)| SpanSnapshot {
                    name,
                    count: s.count,
                    total_ns: s.total_ns,
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                })
                .collect(),
            events: store
                .events
                .iter()
                .map(|e| EventSnapshot {
                    name: e.name.clone(),
                    fields: e.fields.clone(),
                })
                .collect(),
        }
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
    }

    /// JSON of the **deterministic** subset only: counters, histograms
    /// and events. These depend solely on the work performed, so the
    /// rendered string is byte-identical across runs and worker-thread
    /// counts; span timings and gauges (wall-clock facts) are excluded.
    pub fn deterministic_json(&self) -> String {
        Json::obj([
            ("counters", counters_json(&self.counters)),
            ("histograms", histograms_json(&self.histograms, false)),
            ("events", events_json(&self.events)),
        ])
        .render()
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("observability: nothing recorded\n");
            return out;
        }
        if !self.spans.is_empty() {
            out.push_str("spans (wall clock)\n");
            let width = self.spans.iter().map(|s| s.name.len()).max().unwrap_or(0);
            writeln!(
                out,
                "  {:width$}  {:>8}  {:>12}  {:>12}  {:>12}",
                "name", "count", "total", "mean", "max"
            )
            .expect("string write");
            for s in &self.spans {
                let mean = s.total_ns / s.count.max(1);
                writeln!(
                    out,
                    "  {:width$}  {:>8}  {:>12}  {:>12}  {:>12}",
                    s.name,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(mean),
                    fmt_ns(s.max_ns)
                )
                .expect("string write");
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            let width = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (name, value) in &self.counters {
                writeln!(out, "  {name:width$}  {value}").expect("string write");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            let width = self.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                writeln!(out, "  {name:width$}  {value}").expect("string write");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            let width = self
                .histograms
                .iter()
                .map(|h| h.name.len())
                .max()
                .unwrap_or(0);
            for h in &self.histograms {
                let mean = if h.count > 0 {
                    h.sum / h.count as f64
                } else {
                    0.0
                };
                let est = |q| h.quantile_est(q).unwrap_or(0.0);
                writeln!(
                    out,
                    "  {:width$}  count {}  sum {}  mean {mean:.3}  ~p50 {:.3}  ~p90 {:.3}  ~p99 {:.3}",
                    h.name,
                    h.count,
                    h.sum,
                    est(0.50),
                    est(0.90),
                    est(0.99)
                )
                .expect("string write");
            }
        }
        if !self.events.is_empty() {
            writeln!(out, "events ({} recorded)", self.events.len()).expect("string write");
            for e in &self.events {
                let payload: Vec<String> = e
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.render()))
                    .collect();
                writeln!(out, "  {}  {}", e.name, payload.join(" ")).expect("string write");
            }
        }
        out
    }
}

pub(super) fn counters_json(counters: &[(String, u64)]) -> Json {
    Json::Obj(
        counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect(),
    )
}

/// `with_estimates` adds interpolated `~p50/p90/p99` fields to each
/// histogram; the deterministic export leaves them out (they are derived,
/// floating-point data — the raw bucket counts are the contract).
pub(super) fn histograms_json(histograms: &[HistogramSnapshot], with_estimates: bool) -> Json {
    Json::Obj(
        histograms
            .iter()
            .map(|h| {
                let buckets = Json::arr(h.buckets.iter().map(|&(bound, count)| {
                    // JSON has no infinity: the overflow bound is null.
                    let le = if bound.is_finite() {
                        Json::Num(bound)
                    } else {
                        Json::Null
                    };
                    Json::arr([le, count.to_json()])
                }));
                let mut fields = vec![("count", h.count.to_json()), ("sum", h.sum.to_json())];
                if with_estimates {
                    for (key, q) in [("p50_est", 0.50), ("p90_est", 0.90), ("p99_est", 0.99)] {
                        fields.push((key, h.quantile_est(q).unwrap_or(0.0).to_json()));
                    }
                }
                fields.push(("buckets", buckets));
                (h.name.clone(), Json::obj(fields))
            })
            .collect(),
    )
}

pub(super) fn events_json(events: &[EventSnapshot]) -> Json {
    Json::arr(events.iter().map(|e| {
        Json::obj([
            ("name", Json::str(e.name.as_str())),
            (
                "fields",
                Json::Obj(
                    e.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
        ])
    }))
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let spans = Json::Obj(
            self.spans
                .iter()
                .map(|s| {
                    (
                        s.name.to_string(),
                        Json::obj([
                            ("count", s.count.to_json()),
                            ("total_ns", s.total_ns.to_json()),
                            ("min_ns", s.min_ns.to_json()),
                            ("max_ns", s.max_ns.to_json()),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("counters", counters_json(&self.counters)),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            ("histograms", histograms_json(&self.histograms, true)),
            ("spans", spans),
            ("events", events_json(&self.events)),
        ])
    }
}

/// Nanoseconds as a compact human unit.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            counters: vec![("c.one".into(), 7)],
            gauges: vec![("g.one".into(), 1.5)],
            histograms: vec![HistogramSnapshot {
                name: "h.one".into(),
                count: 2,
                sum: 30.0,
                buckets: vec![(10.0, 1), (f64::INFINITY, 1)],
            }],
            spans: vec![SpanSnapshot {
                name: "s.one",
                count: 3,
                total_ns: 3_000,
                min_ns: 500,
                max_ns: 2_000,
            }],
            events: vec![EventSnapshot {
                name: "e.one".into(),
                fields: vec![("k".into(), Json::Num(4.0))],
            }],
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let rendered = sample().to_json().render();
        assert_eq!(
            rendered,
            concat!(
                r#"{"counters":{"c.one":7},"gauges":{"g.one":1.5},"#,
                r#""histograms":{"h.one":{"count":2,"sum":30,"#,
                r#""p50_est":10,"p90_est":10,"p99_est":10,"#,
                r#""buckets":[[10,1],[null,1]]}},"#,
                r#""spans":{"s.one":{"count":3,"total_ns":3000,"min_ns":500,"max_ns":2000}},"#,
                r#""events":[{"name":"e.one","fields":{"k":4}}]}"#
            )
        );
    }

    #[test]
    fn deterministic_json_excludes_gauges_spans_and_estimates() {
        let d = sample().deterministic_json();
        assert!(d.contains("counters"));
        assert!(d.contains("histograms"));
        assert!(d.contains("events"));
        assert!(!d.contains("gauges"));
        assert!(!d.contains("total_ns"));
        assert!(!d.contains("p50_est"));
    }

    #[test]
    fn quantile_estimates_interpolate_within_buckets() {
        // 10 values <= 10, 10 values in (10, 20].
        let h = HistogramSnapshot {
            name: "h".into(),
            count: 20,
            sum: 0.0,
            buckets: vec![(10.0, 10), (20.0, 10)],
        };
        assert_eq!(h.quantile_est(0.5), Some(10.0));
        assert_eq!(h.quantile_est(0.75), Some(15.0));
        assert_eq!(h.quantile_est(1.0), Some(20.0));
        // Overflow bucket reports its lower edge.
        let o = HistogramSnapshot {
            name: "o".into(),
            count: 2,
            sum: 0.0,
            buckets: vec![(5.0, 1), (f64::INFINITY, 1)],
        };
        assert_eq!(o.quantile_est(0.99), Some(5.0));
        // Empty histograms have no quantiles.
        let e = HistogramSnapshot {
            name: "e".into(),
            count: 0,
            sum: 0.0,
            buckets: vec![],
        };
        assert_eq!(e.quantile_est(0.5), None);
    }

    #[test]
    fn table_lists_every_section() {
        let t = sample().render_table();
        for needle in [
            "spans",
            "counters",
            "gauges",
            "histograms",
            "events",
            "c.one",
            "s.one",
        ] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let empty = Report {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            spans: vec![],
            events: vec![],
        };
        assert!(empty.is_empty());
        assert!(empty.render_table().contains("nothing recorded"));
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(42), "42ns");
        assert_eq!(fmt_ns(15_000), "15.0us");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
        assert_eq!(fmt_ns(10_500_000_000), "10.50s");
    }
}
