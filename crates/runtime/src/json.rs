//! Hand-rolled JSON encoding for simulation artifacts.
//!
//! The workspace previously derived `serde::Serialize` on its scenario
//! and fingerprint types without ever linking a serializer; this module
//! replaces that with an explicit, dependency-free encoder. Types opt in
//! by implementing [`ToJson`], building a [`Json`] tree, and rendering it
//! with [`Json::render`].
//!
//! Encoding rules:
//!
//! * numbers render through Rust's shortest-roundtrip `Display` for
//!   `f64`, so re-parsing recovers the exact bits,
//! * non-finite floats (`NaN`, `±∞`) render as `null` — JSON has no
//!   spelling for them,
//! * object keys keep insertion order (deterministic output for
//!   deterministic inputs),
//! * strings escape `"`, `\` and control characters.
//!
//! # Examples
//!
//! ```
//! use srtd_runtime::json::{Json, ToJson};
//!
//! let value = Json::obj([
//!     ("name", Json::str("poi-3")),
//!     ("rssi", (-71.25f64).to_json()),
//!     ("visits", Json::arr(vec![1u64.to_json(), 2u64.to_json()])),
//! ]);
//! assert_eq!(
//!     value.render(),
//!     r#"{"name":"poi-3","rssi":-71.25,"visits":[1,2]}"#
//! );
//! ```

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keys kept in order.
    pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the tree as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `Display` for f64 is shortest-roundtrip and always
                    // a valid JSON number (no exponent-only forms).
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree; the workspace's `Serialize`.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::str(self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::str(self.as_str())
    }
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                // f64 holds integers up to 2^53 exactly — comfortably
                // beyond any account, task or sample count here.
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_to_json_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(true.to_json().render(), "true");
        assert_eq!(3usize.to_json().render(), "3");
        assert_eq!((-2.5f64).to_json().render(), "-2.5");
        assert_eq!(1.0f64.to_json().render(), "1");
        assert_eq!(f64::NAN.to_json().render(), "null");
        assert_eq!(f64::INFINITY.to_json().render(), "null");
    }

    #[test]
    fn float_display_roundtrips() {
        let x = 0.1f64 + 0.2;
        let rendered = x.to_json().render();
        assert_eq!(rendered.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn arrays_objects_and_options_compose() {
        let v = Json::obj([
            ("xs", vec![1u32, 2, 3].to_json()),
            ("missing", Option::<f64>::None.to_json()),
            ("triple", [0.5f64, 1.5, 2.5].to_json()),
        ]);
        assert_eq!(
            v.render(),
            r#"{"xs":[1,2,3],"missing":null,"triple":[0.5,1.5,2.5]}"#
        );
    }

    #[test]
    fn object_key_order_is_insertion_order() {
        let a = Json::obj([("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(a.render(), r#"{"z":1,"a":2}"#);
    }
}
