//! Truth discovery for categorical claims.
//!
//! The paper scopes its demonstration to numerical data ("the sensing
//! data for each task is in the form of numerical values"), but many MCS
//! tasks are discrete — is the parking spot free, which direction is the
//! road blocked. The truth discovery family handles these with weighted
//! voting instead of weighted averaging; the Sybil attack works exactly
//! the same way (a coordinated block out-votes honest users), and the
//! grouping counter-measure transfers verbatim: collapse each suspected
//! group to a single vote ([`grouped_weighted_vote`]).

use std::collections::HashMap;

/// One categorical claim: account `account` says task `task` has label
/// `label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Claim {
    /// Claiming account index.
    pub account: usize,
    /// Task index.
    pub task: usize,
    /// Claimed label (task-local id).
    pub label: usize,
}

/// A campaign of categorical claims.
///
/// # Examples
///
/// ```
/// use srtd_truth::categorical::{CategoricalData, WeightedVote};
///
/// let mut data = CategoricalData::new(1);
/// data.add_claim(0, 0, 1);
/// data.add_claim(1, 0, 1);
/// data.add_claim(2, 0, 0);
/// let result = WeightedVote::default().discover(&data);
/// assert_eq!(result.truths[0], Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CategoricalData {
    num_tasks: usize,
    claims: Vec<Claim>,
    num_accounts: usize,
}

impl CategoricalData {
    /// Creates an empty campaign with `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        Self {
            num_tasks,
            claims: Vec::new(),
            num_accounts: 0,
        }
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Number of accounts (highest index seen + 1).
    pub fn num_accounts(&self) -> usize {
        self.num_accounts
    }

    /// All claims in insertion order.
    pub fn claims(&self) -> &[Claim] {
        &self.claims
    }

    /// Returns `true` if no claim has been added.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// Adds a claim.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range or the account already claimed
    /// this task.
    pub fn add_claim(&mut self, account: usize, task: usize, label: usize) {
        assert!(task < self.num_tasks, "task {task} out of range");
        assert!(
            !self
                .claims
                .iter()
                .any(|c| c.account == account && c.task == task),
            "account {account} already claimed task {task}"
        );
        self.claims.push(Claim {
            account,
            task,
            label,
        });
        self.num_accounts = self.num_accounts.max(account + 1);
    }
}

/// Output of categorical truth discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalResult {
    /// Winning label per task; `None` for unclaimed tasks.
    pub truths: Vec<Option<usize>>,
    /// Final per-account weights.
    pub weights: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
}

/// Iterative weighted voting (the categorical analogue of CRH).
///
/// Weight update: `w_i = ln(total_mismatches / mismatches_i)` with the
/// same scale-aware floor as the numeric CRH; truth update: per task, the
/// label with the largest total claim weight. Ties break toward the
/// smaller label id, which keeps the algorithm deterministic.
#[derive(Debug, Clone, Copy)]
pub struct WeightedVote {
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for WeightedVote {
    fn default() -> Self {
        Self { max_iterations: 50 }
    }
}

impl WeightedVote {
    /// Runs the weighted vote.
    pub fn discover(&self, data: &CategoricalData) -> CategoricalResult {
        let n = data.num_accounts();
        let mut weights = vec![1.0f64; n];
        let mut truths = plain_vote(data, &weights);
        let mut iterations = 0;
        for iter in 0..self.max_iterations.max(1) {
            iterations = iter + 1;
            // 0/1 mismatch losses.
            let mut losses = vec![0.0f64; n];
            for c in data.claims() {
                if let Some(truth) = truths[c.task] {
                    if truth != c.label {
                        losses[c.account] += 1.0;
                    }
                }
            }
            let total: f64 = losses.iter().sum();
            let floor = (total / n.max(1) as f64).max(1e-12) * 1e-3;
            for (w, &loss) in weights.iter_mut().zip(&losses) {
                *w = (total.max(1e-12) / loss.max(floor)).ln().max(0.05);
            }
            let next = plain_vote(data, &weights);
            if next == truths {
                truths = next;
                break;
            }
            truths = next;
        }
        CategoricalResult {
            truths,
            weights,
            iterations,
        }
    }
}

/// One weighted-vote round: per task, the label with the largest total
/// weight (ties toward the smaller label).
fn plain_vote(data: &CategoricalData, weights: &[f64]) -> Vec<Option<usize>> {
    let mut tallies: Vec<HashMap<usize, f64>> = vec![HashMap::new(); data.num_tasks()];
    for c in data.claims() {
        *tallies[c.task].entry(c.label).or_insert(0.0) += weights[c.account];
    }
    tallies
        .into_iter()
        .map(|tally| {
            tally
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(label, _)| label)
        })
        .collect()
}

/// Unweighted majority voting (the categorical mean-vote analogue).
pub fn majority_vote(data: &CategoricalData) -> Vec<Option<usize>> {
    plain_vote(data, &vec![1.0; data.num_accounts()])
}

/// Group-collapsed weighted voting — the categorical port of Algorithm 2's
/// data-grouping idea.
///
/// `group_of[account]` assigns each account to a suspected-owner group
/// (e.g. from `srtd-core`'s AG methods). For each task, every group first
/// casts a *single* internal-majority vote; the votes are then combined
/// with the Eq. 4 size-penalized weights. A thousand coordinated accounts
/// still count as one voice.
///
/// # Panics
///
/// Panics if `group_of` does not cover every account.
pub fn grouped_weighted_vote(data: &CategoricalData, group_of: &[usize]) -> Vec<Option<usize>> {
    assert!(
        data.num_accounts() <= group_of.len(),
        "group labels must cover every account ({} accounts, {} labels)",
        data.num_accounts(),
        group_of.len()
    );
    (0..data.num_tasks())
        .map(|task| {
            // Group-internal majority.
            let mut group_tallies: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
            let mut reporters = 0usize;
            for c in data.claims().iter().filter(|c| c.task == task) {
                reporters += 1;
                *group_tallies
                    .entry(group_of[c.account])
                    .or_default()
                    .entry(c.label)
                    .or_insert(0) += 1;
            }
            if reporters == 0 {
                return None;
            }
            // Combine group votes with Eq. 4 weights.
            let mut combined: HashMap<usize, f64> = HashMap::new();
            for (_, tally) in group_tallies {
                let members: usize = tally.values().sum();
                let label = tally
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                    .map(|(l, _)| l)
                    .expect("non-empty tally");
                let weight = 1.0 - members as f64 / reporters as f64;
                // A group holding every reporter still deserves a voice.
                *combined.entry(label).or_insert(0.0) += weight.max(0.05);
            }
            combined
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(label, _)| label)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 honest accounts vs a 3-account Sybil block on 4 binary tasks.
    fn attacked_campaign() -> CategoricalData {
        let mut d = CategoricalData::new(4);
        for task in 0..4 {
            d.add_claim(0, task, 0); // honest: label 0 everywhere
            d.add_claim(1, task, 0);
            for sybil in 2..5 {
                d.add_claim(sybil, task, 1); // coordinated lie
            }
        }
        d
    }

    #[test]
    fn majority_vote_basics() {
        let mut d = CategoricalData::new(2);
        d.add_claim(0, 0, 3);
        d.add_claim(1, 0, 3);
        d.add_claim(2, 0, 7);
        let t = majority_vote(&d);
        assert_eq!(t[0], Some(3));
        assert_eq!(t[1], None);
    }

    #[test]
    fn weighted_vote_downweights_the_inconsistent() {
        let mut d = CategoricalData::new(5);
        // Accounts 0,1 agree on everything; account 2 disagrees on 4 of 5.
        for task in 0..5 {
            d.add_claim(0, task, 0);
            d.add_claim(1, task, 0);
            d.add_claim(2, task, if task == 0 { 0 } else { 1 });
        }
        let r = WeightedVote::default().discover(&d);
        assert!(r.weights[0] > r.weights[2]);
        assert!(r.truths.iter().all(|&t| t == Some(0)));
    }

    #[test]
    fn sybil_block_wins_the_plain_votes() {
        let d = attacked_campaign();
        let plain = majority_vote(&d);
        assert!(plain.iter().all(|&t| t == Some(1)), "{plain:?}");
        let weighted = WeightedVote::default().discover(&d);
        assert!(
            weighted.truths.iter().all(|&t| t == Some(1)),
            "weighted voting cannot beat a coordinated majority"
        );
    }

    #[test]
    fn grouping_restores_the_categorical_truth() {
        let d = attacked_campaign();
        // The Sybil block collapses to one voice with a low Eq. 4 weight.
        let groups = [0, 1, 2, 2, 2];
        let t = grouped_weighted_vote(&d, &groups);
        assert!(t.iter().all(|&t| t == Some(0)), "{t:?}");
    }

    #[test]
    fn grouped_vote_handles_single_group_tasks() {
        let mut d = CategoricalData::new(1);
        d.add_claim(0, 0, 4);
        d.add_claim(1, 0, 4);
        // Both accounts in one group: weight floor keeps the vote alive.
        let t = grouped_weighted_vote(&d, &[0, 0]);
        assert_eq!(t[0], Some(4));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut d = CategoricalData::new(1);
        d.add_claim(0, 0, 5);
        d.add_claim(1, 0, 2);
        // Equal weights: the smaller label wins.
        assert_eq!(majority_vote(&d)[0], Some(2));
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn duplicate_claim_panics() {
        let mut d = CategoricalData::new(1);
        d.add_claim(0, 0, 1);
        d.add_claim(0, 0, 2);
    }

    #[test]
    fn empty_campaign() {
        let d = CategoricalData::new(2);
        assert!(d.is_empty());
        let r = WeightedVote::default().discover(&d);
        assert_eq!(r.truths, vec![None, None]);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use srtd_runtime::rng::{Rng, StdRng};
    use srtd_runtime::{prop, prop_assert, prop_assert_eq};

    fn campaign(rng: &mut StdRng) -> CategoricalData {
        let raw = prop::vec_with(rng, 1..30, |r| {
            (
                r.gen_range(0usize..6),
                r.gen_range(0usize..4),
                r.gen_range(0usize..3),
            )
        });
        let mut d = CategoricalData::new(4);
        let mut seen = std::collections::HashSet::new();
        for (account, task, label) in raw {
            if seen.insert((account, task)) {
                d.add_claim(account, task, label);
            }
        }
        d
    }

    /// Every winning label was actually claimed for that task, under
    /// all three aggregation modes.
    #[test]
    fn winners_are_claimed_labels() {
        prop::check(campaign, |data| {
            let group_of: Vec<usize> = (0..data.num_accounts().max(1)).collect();
            let outputs = [
                majority_vote(data),
                WeightedVote::default().discover(data).truths,
                grouped_weighted_vote(data, &group_of),
            ];
            for truths in outputs {
                for (task, truth) in truths.iter().enumerate() {
                    let claimed: Vec<usize> = data
                        .claims()
                        .iter()
                        .filter(|c| c.task == task)
                        .map(|c| c.label)
                        .collect();
                    match truth {
                        None => prop_assert!(claimed.is_empty()),
                        Some(l) => prop_assert!(claimed.contains(l)),
                    }
                }
            }
            Ok(())
        });
    }

    /// All-singleton grouping reduces the grouped vote to plain
    /// majority voting (Eq. 4 weights become uniform).
    #[test]
    fn singleton_grouping_is_majority_vote() {
        prop::check(campaign, |data| {
            let singletons: Vec<usize> = (0..data.num_accounts().max(1)).collect();
            prop_assert_eq!(
                grouped_weighted_vote(data, &singletons),
                majority_vote(data)
            );
            Ok(())
        });
    }

    /// Deterministic: the weighted vote is a pure function.
    #[test]
    fn weighted_vote_deterministic() {
        prop::check(campaign, |data| {
            let a = WeightedVote::default().discover(data);
            let b = WeightedVote::default().discover(data);
            prop_assert_eq!(a, b);
            Ok(())
        });
    }
}
