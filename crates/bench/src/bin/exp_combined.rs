//! Extension experiment: combining the grouping methods (the paper's
//! stated future work, §IV-C "we leave the combination of them for our
//! future work").
//!
//! Compares the three single methods against their lattice combinations:
//! the join (union of grouping evidence — catches anything any method
//! catches) and the meet (intersection — keeps only unanimous merges),
//! on ARI and end-to-end MAE.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_combined [seeds]`

use srtd_bench::table::Table;
use srtd_core::{
    AccountGrouping, AgFp, AgTr, AgTs, CombineMode, CombinedGrouping, SybilResistantTd,
};
use srtd_metrics::{adjusted_rand_index, mae};
use srtd_sensing::{Scenario, ScenarioConfig};

fn boxed_methods() -> Vec<Box<dyn AccountGrouping + Send + Sync>> {
    vec![
        Box::new(AgFp::default()),
        Box::new(AgTs::default()),
        Box::new(AgTr::default()),
    ]
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("Extension — combined account grouping ({seeds} seeds, activeness 0.5/0.5)\n");

    // Activeness 0.5/0.5: the regime where each single method has both
    // hits and misses, so combination has something to add.
    let scenarios: Vec<Scenario> = (0..seeds)
        .map(|seed| {
            Scenario::generate(
                &ScenarioConfig::paper_default()
                    .with_seed(seed)
                    .with_activeness(0.5, 0.5),
            )
        })
        .collect();
    let n = scenarios.len() as f64;

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let singles: Vec<(Box<dyn AccountGrouping + Send + Sync>, &str)> = vec![
        (Box::new(AgFp::default()), "AG-FP"),
        (Box::new(AgTs::default()), "AG-TS"),
        (Box::new(AgTr::default()), "AG-TR"),
    ];
    for (method, name) in &singles {
        let (mut ari, mut err) = (0.0, 0.0);
        for s in &scenarios {
            let g = method.group(&s.data, &s.fingerprints);
            ari += adjusted_rand_index(g.labels(), &s.owners);
            let r = SybilResistantTd::new(AgTr::default()).discover_with_grouping(&s.data, g);
            err += mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths");
        }
        rows.push((name.to_string(), ari / n, err / n));
    }
    for mode in [CombineMode::Join, CombineMode::Meet] {
        let (mut ari, mut err) = (0.0, 0.0);
        for s in &scenarios {
            let combined = CombinedGrouping::new(boxed_methods(), mode);
            let g = combined.group(&s.data, &s.fingerprints);
            ari += adjusted_rand_index(g.labels(), &s.owners);
            let r = SybilResistantTd::new(AgTr::default()).discover_with_grouping(&s.data, g);
            err += mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths");
        }
        let name = match mode {
            CombineMode::Join => "join(FP,TS,TR)",
            CombineMode::Meet => "meet(FP,TS,TR)",
        };
        rows.push((name.to_string(), ari / n, err / n));
    }

    let mut t = Table::new(["grouping", "ARI", "MAE"].map(String::from).to_vec());
    for (name, ari, err) in &rows {
        t.add_row(vec![name.clone(), format!("{ari:.3}"), format!("{err:.2}")]);
    }
    println!("{}", t.render());
    println!("expected shape: the join inherits AG-TR's recall and adds AG-FP's");
    println!("device evidence, at the cost of accumulating AG-FP's same-model");
    println!("false positives; the meet is the most conservative (highest");
    println!("precision, lower recall). Neither silently collapses: all MAE");
    println!("values stay below the unguarded CRH (~19 at this setting).");
    for (name, _, err) in &rows {
        assert!(*err < 19.0, "{name} worse than unguarded CRH: {err}");
    }
    println!("\n[experiment complete]");
}
