//! Extension experiment: replay-jitter sweep against AG-TR and the
//! stochastic audit backstop.
//!
//! The jittered-replay generator gives every Sybil account a private
//! clock offset drawn from `N(0, σ)`. At the default φ = 1 with
//! hour-unit timestamps, the pairwise trajectory DTW of a paper-scale
//! walk crosses the threshold once the offsets differ by a few hundred
//! seconds, so sweeping σ from 0 to 3 600 s walks AG-TR's detection
//! from certain down toward zero. The stochastic audit does not look at
//! timestamps at all, so its conviction rate must stay flat across the
//! sweep — that flatness, and AG-TR's decay, are the asserted shape.
//!
//! Each cell drives the incremental epoch engine (AG-TR is an
//! `EdgeGrouping`) with the audit stage enabled, exactly like the
//! `srtd-server` loop.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_adaptive_jitter [seeds] [--fast]`

use srtd_bench::table::Table;
use srtd_core::{AgTr, SybilResistantTd};
use srtd_platform::{AuditPolicy, EpochConfig, EpochEngine};
use srtd_sensing::{
    AttackType, AttackerSpec, EvasionTactic, FabricationStrategy, Scenario, ScenarioConfig,
};

const JITTERS: [f64; 6] = [0.0, 150.0, 300.0, 600.0, 1200.0, 3600.0];

struct Outcome {
    grouped: usize,
    convicted: usize,
    either: usize,
    sybils: usize,
    honest_flagged: usize,
}

fn run_sweep_cell(s: &Scenario, seed: u64, epochs: u64) -> Outcome {
    let mut engine = EpochEngine::new(
        SybilResistantTd::new(AgTr::default()),
        s.data.num_tasks(),
        EpochConfig::default(),
    );
    engine.set_audit(AuditPolicy {
        targets_per_epoch: 5,
        ..AuditPolicy::default().with_seed(seed.wrapping_mul(97).wrapping_add(3))
    });
    engine.set_audit_reference(s.ground_truth.iter().map(|&t| Some(t)).collect());
    for r in s.data.reports() {
        engine
            .ingest(r.account, r.task, r.value, r.timestamp)
            .expect("campaign reports are valid");
    }
    for _ in 0..epochs {
        engine.run_epoch_incremental();
    }
    let report = engine.audit_report(3);
    let convicted = report.convicted();
    let mut out = Outcome {
        grouped: 0,
        convicted: 0,
        either: 0,
        sybils: 0,
        honest_flagged: 0,
    };
    for a in 0..s.num_accounts() {
        let in_cluster = report
            .suspects()
            .iter()
            .any(|g| g.accounts.binary_search(&a).is_ok());
        let is_convicted = convicted.binary_search(&a).is_ok();
        if s.is_sybil[a] {
            out.sybils += 1;
            out.grouped += in_cluster as usize;
            out.convicted += is_convicted as usize;
            out.either += (in_cluster || is_convicted) as usize;
        } else {
            out.honest_flagged += (in_cluster || is_convicted) as usize;
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let seeds: u64 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if fast { 2 } else { 6 });
    let epochs: u64 = if fast { 10 } else { 16 };
    println!("Extension — replay jitter vs AG-TR with the audit backstop ({seeds} seeds, {epochs} epochs)\n");

    let mut t = Table::new(
        [
            "jitter σ (s)",
            "AG-TR grouped",
            "audit convicted",
            "either",
            "honest flagged",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut grouped_rates = Vec::new();
    let mut convicted_rates = Vec::new();
    let mut either_rates = Vec::new();
    let mut honest_total = 0usize;
    for &jitter in &JITTERS {
        let (mut grouped, mut convicted, mut either, mut sybils) = (0usize, 0usize, 0usize, 0usize);
        for seed in 0..seeds {
            // Unlike the `adaptive_jitter` preset this keeps the replay
            // order intact (`order_flips: 0`) so the sweep isolates the
            // clock-offset effect on AG-TR's timestamp DTW.
            let attacker = AttackerSpec {
                accounts: 5,
                attack_type: AttackType::SingleDevice,
                strategy: FabricationStrategy::paper_default(),
                evasion: EvasionTactic::JitteredReplay {
                    time_jitter_s: jitter,
                    order_flips: 0,
                },
            };
            let s = Scenario::generate(
                &ScenarioConfig {
                    attackers: vec![attacker],
                    ..ScenarioConfig::paper_default()
                }
                .with_seed(seed),
            );
            let out = run_sweep_cell(&s, seed, epochs);
            grouped += out.grouped;
            convicted += out.convicted;
            sybils += out.sybils;
            honest_total += out.honest_flagged;
            either += out.either;
        }
        let n = sybils as f64;
        grouped_rates.push(grouped as f64 / n);
        convicted_rates.push(convicted as f64 / n);
        either_rates.push(either as f64 / n);
        t.add_row(vec![
            format!("{jitter:.0}"),
            format!("{:.2}", grouped as f64 / n),
            format!("{:.2}", convicted as f64 / n),
            format!("{:.2}", either as f64 / n),
            format!("{honest_total}"),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape:");
    println!("  * AG-TR grouping decays from 1.0 toward 0.0 as the per-account");
    println!("    clock offsets push pairwise DTW past φ (rare chance");
    println!("    collisions keep the tail slightly above zero);");
    println!("  * audit convictions are timestamp-blind and stay flat;");
    println!("  * the union never drops below the audit floor, so the");
    println!("    framework degrades gracefully instead of cliff-dropping;");
    println!("  * no honest account is ever grouped or convicted.");

    assert!(
        grouped_rates[0] >= 0.99,
        "zero jitter is the paper replay — AG-TR must group it: {}",
        grouped_rates[0]
    );
    // Offsets are N(0, σ) per account, so even at σ = 3600 s a seed can
    // draw three accounts whose clocks happen to collide — the endpoint
    // is "mostly blind", not exactly zero.
    let last = *grouped_rates.last().unwrap();
    assert!(
        last <= 0.5,
        "σ = 3600 s should mostly break AG-TR edge formation: {last}"
    );
    assert!(
        last <= grouped_rates[0] - 0.5,
        "grouping detection must at least halve across the sweep: {grouped_rates:?}"
    );
    assert!(
        grouped_rates.windows(2).any(|w| w[1] < w[0] - 0.2),
        "grouping detection should decay across the sweep: {grouped_rates:?}"
    );
    for (i, &c) in convicted_rates.iter().enumerate() {
        assert!(
            c >= 0.5,
            "audit convictions must stay strong at σ = {} s: {c}",
            JITTERS[i]
        );
    }
    for (i, &e) in either_rates.iter().enumerate() {
        assert!(
            e >= convicted_rates[i] - 1e-9,
            "the union cannot drop below the audit floor at σ = {} s",
            JITTERS[i]
        );
    }
    assert_eq!(honest_total, 0, "no honest account may be flagged");
    println!("\n[shape checks passed]");
}
