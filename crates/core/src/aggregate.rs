//! Group-level data aggregation (Eq. 3) and initial group weights (Eq. 4).

/// How a group's reports for one task collapse into the single value
/// `d̃_j^k` of Eq. 3.
///
/// Eq. 3 as printed,
///
/// ```text
/// d̃_j^k = Σ_i (d_j^i − d̄_j^k) d_j^i / Σ_i (d_j^i − d̄_j^k),
/// ```
///
/// has an identically-zero denominator (deviations from the arithmetic
/// mean always sum to zero), so it cannot be evaluated literally. The
/// paper's own prose says the group aggregate "will be closed to the
/// average of the data submitted by" the group's members (§V-B), so
/// [`GroupAggregation::Mean`] is the default. [`GroupAggregation::Median`]
/// is more robust when a Sybil group absorbed a legitimate account
/// (false positive), and
/// [`GroupAggregation::AbsoluteDeviationWeighted`] is the closest
/// well-defined reading of the printed formula (deviations taken in
/// absolute value). The ablation experiment `exp_ablation_aggregation`
/// compares all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupAggregation {
    /// Arithmetic mean of the group's values (the paper's described
    /// behaviour).
    #[default]
    Mean,
    /// Median of the group's values.
    Median,
    /// `Σ |d − d̄| d / Σ |d − d̄|` — Eq. 3 with absolute deviations; falls
    /// back to the mean when all values coincide.
    AbsoluteDeviationWeighted,
}

impl GroupAggregation {
    /// Aggregates one group's values for one task.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty — the framework only aggregates groups
    /// that reported the task.
    pub fn aggregate(self, values: &[f64]) -> f64 {
        assert!(!values.is_empty(), "cannot aggregate an empty group");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        match self {
            GroupAggregation::Mean => mean,
            GroupAggregation::Median => {
                let mut sorted = values.to_vec();
                sorted.sort_by(f64::total_cmp);
                let mid = sorted.len() / 2;
                if sorted.len() % 2 == 1 {
                    sorted[mid]
                } else {
                    0.5 * (sorted[mid - 1] + sorted[mid])
                }
            }
            GroupAggregation::AbsoluteDeviationWeighted => {
                let denom: f64 = values.iter().map(|v| (v - mean).abs()).sum();
                if denom <= f64::EPSILON * values.len() as f64 {
                    return mean;
                }
                values.iter().map(|v| (v - mean).abs() * v).sum::<f64>() / denom
            }
        }
    }
}

/// Eq. 4: the initial weight of group `g_k` for task `τ_j`,
/// `w̃_k = 1 − |g_k| / |U_j|`, where `|g_k|` counts the group's members
/// *reporting this task* and `|U_j|` all accounts reporting it.
///
/// Large groups — the signature of a Sybil attacker — start with low
/// weight; a group containing every reporter starts at zero. The count is
/// restricted to reporting members so that groups larger than `U_j`
/// (members busy on other tasks) cannot produce negative weights.
///
/// # Panics
///
/// Panics if `reporting_members > task_reporters` or `task_reporters == 0`.
pub fn initial_group_weight(reporting_members: usize, task_reporters: usize) -> f64 {
    assert!(task_reporters > 0, "task has no reporters");
    assert!(
        reporting_members <= task_reporters,
        "group cannot have more reporters than the task ({reporting_members} > {task_reporters})"
    );
    1.0 - reporting_members as f64 / task_reporters as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn mean_and_median_basics() {
        assert_eq!(GroupAggregation::Mean.aggregate(&[1.0, 2.0, 6.0]), 3.0);
        assert_eq!(GroupAggregation::Median.aggregate(&[1.0, 2.0, 6.0]), 2.0);
        assert_eq!(GroupAggregation::Median.aggregate(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn identical_values_aggregate_to_that_value() {
        for agg in [
            GroupAggregation::Mean,
            GroupAggregation::Median,
            GroupAggregation::AbsoluteDeviationWeighted,
        ] {
            assert_eq!(agg.aggregate(&[-50.0; 5]), -50.0, "{agg:?}");
        }
    }

    #[test]
    fn abs_dev_weighted_is_finite_and_in_hull() {
        let v = GroupAggregation::AbsoluteDeviationWeighted.aggregate(&[1.0, 2.0, 9.0]);
        assert!(v.is_finite());
        assert!((1.0..=9.0).contains(&v));
    }

    #[test]
    fn single_member_group_passes_through() {
        for agg in [
            GroupAggregation::Mean,
            GroupAggregation::Median,
            GroupAggregation::AbsoluteDeviationWeighted,
        ] {
            assert_eq!(agg.aggregate(&[-72.3]), -72.3, "{agg:?}");
        }
    }

    #[test]
    fn eq4_weights() {
        // A singleton among 6 reporters: high weight.
        assert!((initial_group_weight(1, 6) - 5.0 / 6.0).abs() < 1e-12);
        // A 5-account Sybil group among 6 reporters: low weight.
        assert!((initial_group_weight(5, 6) - 1.0 / 6.0).abs() < 1e-12);
        // A group holding every reporter: zero.
        assert_eq!(initial_group_weight(4, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_panics() {
        GroupAggregation::Mean.aggregate(&[]);
    }

    #[test]
    #[should_panic(expected = "no reporters")]
    fn zero_reporters_panics() {
        initial_group_weight(0, 0);
    }

    #[test]
    fn aggregates_stay_in_hull() {
        prop::check(
            |rng| prop::vec_with(rng, 1..20, |r| r.gen_range(-100f64..100.0)),
            |values| {
                let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for agg in [
                    GroupAggregation::Mean,
                    GroupAggregation::Median,
                    GroupAggregation::AbsoluteDeviationWeighted,
                ] {
                    let v = agg.aggregate(values);
                    prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{:?} gave {}", agg, v);
                }
                Ok(())
            },
        );
    }

    #[test]
    fn eq4_weight_in_unit_interval() {
        prop::check(
            |rng| (rng.gen_range(0usize..50), rng.gen_range(0usize..50)),
            |&(members, extra)| {
                let reporters = members + extra.max(1);
                let w = initial_group_weight(members, reporters);
                prop_assert!((0.0..=1.0).contains(&w));
                Ok(())
            },
        );
    }
}
