//! End-to-end: generated campaigns through grouping and the framework.
//!
//! These tests check the paper's headline claims on simulated campaigns:
//! CRH is vulnerable to the Sybil attack, every framework variant
//! diminishes it, and AG-TR groups best.

use srtd_core::{AccountGrouping, AgFp, AgTr, AgTs, PerfectGrouping, SybilResistantTd};
use srtd_metrics::{adjusted_rand_index, mae};
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_truth::{Crh, TruthDiscovery};

fn scenario(seed: u64, legit_alpha: f64, attacker_alpha: f64) -> Scenario {
    Scenario::generate(
        &ScenarioConfig::paper_default()
            .with_seed(seed)
            .with_activeness(legit_alpha, attacker_alpha),
    )
}

fn crh_mae(s: &Scenario) -> f64 {
    let r = Crh::default().discover(&s.data);
    mae(&r.truths_or(0.0), &s.ground_truth).expect("equal lengths")
}

fn framework_mae<G: AccountGrouping>(s: &Scenario, grouping: G) -> f64 {
    let r = SybilResistantTd::new(grouping).discover(&s.data, &s.fingerprints);
    mae(&r.truths_or(0.0), &s.ground_truth).expect("equal lengths")
}

/// Averages a metric over several seeds to iron out single-run noise.
fn average<F: Fn(u64) -> f64>(seeds: std::ops::Range<u64>, f: F) -> f64 {
    let n = seeds.clone().count() as f64;
    seeds.map(f).sum::<f64>() / n
}

#[test]
fn crh_is_vulnerable_to_the_sybil_attack() {
    // Fig. 7's premise: with fully active attackers, CRH's MAE explodes
    // (fabricated −50 dBm vs. true −60..−90 dBm).
    let avg = average(0..5, |seed| crh_mae(&scenario(seed, 1.0, 1.0)));
    assert!(
        avg > 5.0,
        "CRH should be badly wrong under attack: MAE {avg}"
    );
}

#[test]
fn every_framework_variant_beats_crh_under_full_attack() {
    let seeds = 0u64..8;
    let crh = average(seeds.clone(), |s| crh_mae(&scenario(s, 1.0, 1.0)));
    let td_tr = average(seeds.clone(), |s| {
        framework_mae(&scenario(s, 1.0, 1.0), AgTr::default())
    });
    let td_ts = average(seeds.clone(), |s| {
        framework_mae(&scenario(s, 1.0, 1.0), AgTs::default())
    });
    let td_fp = average(seeds.clone(), |s| {
        framework_mae(&scenario(s, 1.0, 1.0), AgFp::default())
    });
    assert!(td_tr < crh, "TD-TR {td_tr} vs CRH {crh}");
    assert!(td_ts < crh, "TD-TS {td_ts} vs CRH {crh}");
    assert!(td_fp < crh, "TD-FP {td_fp} vs CRH {crh}");
}

#[test]
fn oracle_grouping_is_a_lower_bound() {
    let seeds = 0u64..5;
    let oracle = average(seeds.clone(), |seed| {
        let s = scenario(seed, 1.0, 1.0);
        framework_mae(&s, PerfectGrouping::new(s.owners.clone()))
    });
    let crh = average(seeds, |s| crh_mae(&scenario(s, 1.0, 1.0)));
    assert!(
        oracle < crh * 0.5,
        "oracle grouping should roughly halve CRH's MAE: {oracle} vs {crh}"
    );
}

#[test]
fn ag_tr_groups_sybil_accounts_correctly() {
    // Fig. 6's claim: AG-TR achieves high ARI, and it grows with
    // activeness.
    let mut high_activity = 0.0;
    let mut low_activity = 0.0;
    let seeds = 0u64..6;
    let seeds_n = seeds.clone();
    for seed in seeds_n {
        let s = scenario(seed, 1.0, 1.0);
        let g = AgTr::default().group(&s.data, &s.fingerprints);
        high_activity += adjusted_rand_index(g.labels(), &s.owners);
        let s = scenario(seed, 0.4, 0.4);
        let g = AgTr::default().group(&s.data, &s.fingerprints);
        low_activity += adjusted_rand_index(g.labels(), &s.owners);
    }
    let n = seeds.count() as f64;
    high_activity /= n;
    low_activity /= n;
    assert!(
        high_activity > 0.7,
        "AG-TR ARI at full activeness: {high_activity}"
    );
    assert!(
        high_activity >= low_activity - 0.05,
        "ARI should not degrade with activeness: {low_activity} -> {high_activity}"
    );
}

#[test]
fn ag_fp_separates_attack_i_devices() {
    // AG-FP's job: the Attack-I accounts (one shared device) end up in one
    // group, so their five −50 dBm claims collapse to one voice.
    let s = scenario(3, 1.0, 1.0);
    let g = AgFp::default().group(&s.data, &s.fingerprints);
    // Accounts 8..13 belong to the Attack-I attacker (owner 8).
    let attack_i: Vec<usize> = (0..s.num_accounts())
        .filter(|&a| s.owners[a] == 8)
        .collect();
    let first_group = g.group_of(attack_i[0]);
    let together = attack_i
        .iter()
        .filter(|&&a| g.group_of(a) == first_group)
        .count();
    assert!(
        together >= 4,
        "Attack-I accounts should mostly share a group: {together}/5"
    );
}

#[test]
fn framework_degrades_gracefully_without_attackers() {
    // No Sybil accounts: the framework should roughly match CRH (no
    // grouping signal to exploit, no harm done).
    let cfg = ScenarioConfig::paper_default()
        .with_seed(11)
        .with_attackers(vec![]);
    let s = Scenario::generate(&cfg);
    let crh = crh_mae(&s);
    let ours = framework_mae(&s, AgTr::default());
    assert!(
        (ours - crh).abs() < 2.0,
        "without attackers both should be close: {ours} vs {crh}"
    );
    assert!(ours < 3.0, "clean-campaign MAE too high: {ours}");
}
