//! Tour of the device-fingerprinting pipeline behind AG-FP.
//!
//! Manufactures three smartphones of different models, takes five
//! stationary captures from each (the paper's 6-second sign-in hold),
//! extracts the 80-dimensional Table-II feature vectors, projects them
//! onto the first two principal components (Fig. 2's view), estimates the
//! device count with the elbow method, and clusters with k-means.
//!
//! Run with: `cargo run --example device_fingerprinting`

use srtd_runtime::rng::SeedableRng;
use srtd_runtime::rng::StdRng;
use sybil_td::cluster::{elbow, KMeans, KMeansConfig, Pca};
use sybil_td::fingerprint::{catalog, fingerprint_features, CaptureConfig};
use sybil_td::metrics::adjusted_rand_index;
use sybil_td::signal::features::standardize;

const CAPTURES_PER_PHONE: usize = 5;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let models = catalog::standard_catalog();
    let phones = [
        models[2].model.manufacture(&mut rng), // iPhone 6S
        models[5].model.manufacture(&mut rng), // Nexus 6P
        models[7].model.manufacture(&mut rng), // Nexus 5
    ];
    let capture_cfg = CaptureConfig::paper_default();

    let mut features = Vec::new();
    let mut true_device = Vec::new();
    for (d, phone) in phones.iter().enumerate() {
        for _ in 0..CAPTURES_PER_PHONE {
            let capture = phone.capture(&capture_cfg, &mut rng);
            features.push(fingerprint_features(&capture));
            true_device.push(d);
        }
    }
    println!(
        "collected {} fingerprints x {} features from {} phones",
        features.len(),
        features[0].len(),
        phones.len()
    );

    // Standardize, then visualize in PC1/PC2 like the paper's Fig. 2(a).
    let (standardized, _) = standardize(&features);
    let pca = Pca::fit(&standardized, 2);
    let ratio = pca.explained_variance_ratio();
    println!(
        "PCA: PC1 explains {:.0}%, PC2 {:.0}% of variance",
        100.0 * ratio[0],
        100.0 * ratio.get(1).copied().unwrap_or(0.0)
    );
    println!("\n  phone | capture |     PC1 |     PC2");
    for (i, f) in standardized.iter().enumerate() {
        let p = pca.project(f);
        println!(
            "      {} |       {} | {:7.2} | {:7.2}",
            phones[true_device[i]]
                .model_name
                .chars()
                .take(1)
                .collect::<String>(),
            i % CAPTURES_PER_PHONE + 1,
            p[0],
            p[1]
        );
    }

    // Elbow method estimates the device count (the platform does not know
    // it), then k-means groups the fingerprints — Fig. 2(b).
    let elbow_result = elbow(&standardized, 8, KMeansConfig::new(1));
    println!(
        "\nelbow SSE curve: {:?}",
        round_all(&elbow_result.sse_curve)
    );
    println!("estimated device count k = {}", elbow_result.k);

    let clusters = KMeans::new(KMeansConfig::new(elbow_result.k)).fit(&standardized);
    let ari = adjusted_rand_index(&clusters.assignments, &true_device);
    println!("k-means assignments: {:?}", clusters.assignments);
    println!("Adjusted Rand Index vs. true devices: {ari:.3}");
}

fn round_all(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 10.0).round() / 10.0).collect()
}
