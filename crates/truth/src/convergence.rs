//! Convergence control shared by the iterative algorithms.

/// Iteration cap plus truth-change tolerance.
///
/// The paper notes the criterion is application-defined (e.g. a fixed
/// iteration count in CRH); this type supports both styles at once: stop
/// when the largest per-task truth change drops below `tolerance`, or after
/// `max_iterations`, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriterion {
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Largest allowed per-task truth change at convergence.
    pub tolerance: f64,
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        Self {
            max_iterations: 1000,
            tolerance: 1e-6,
        }
    }
}

impl ConvergenceCriterion {
    /// Creates a criterion.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations == 0` or `tolerance` is negative/NaN.
    pub fn new(max_iterations: usize, tolerance: f64) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        assert!(
            tolerance >= 0.0,
            "tolerance must be non-negative, got {tolerance}"
        );
        Self {
            max_iterations,
            tolerance,
        }
    }

    /// Returns `true` when the truth estimates have stabilized.
    pub fn is_converged(&self, previous: &[Option<f64>], current: &[Option<f64>]) -> bool {
        max_abs_delta(previous, current) <= self.tolerance
    }

    /// A validated copy of `self` that every iterative loop can trust.
    ///
    /// [`ConvergenceCriterion::new`] rejects bad input, but the fields are
    /// public, so a struct literal can still smuggle in `max_iterations: 0`
    /// (the loop would never run) or a negative/NaN `tolerance` (the loop
    /// would never converge early). This clamps both — at least one
    /// iteration, tolerance at least `0.0` (NaN becomes `0.0`) — instead of
    /// panicking deep inside a discovery run.
    pub fn effective(&self) -> Self {
        Self {
            max_iterations: self.max_iterations.max(1),
            tolerance: if self.tolerance.is_nan() {
                0.0
            } else {
                self.tolerance.max(0.0)
            },
        }
    }
}

/// Largest absolute per-task change between two truth vectors; slots that
/// are `None` in either vector are skipped.
pub fn max_abs_delta(previous: &[Option<f64>], current: &[Option<f64>]) -> f64 {
    previous
        .iter()
        .zip(current)
        .filter_map(|(p, c)| Some((p.as_ref()? - c.as_ref()?).abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_ignores_missing_tasks() {
        let a = vec![Some(1.0), None, Some(3.0)];
        let b = vec![Some(1.5), Some(9.0), Some(3.0)];
        assert_eq!(max_abs_delta(&a, &b), 0.5);
    }

    #[test]
    fn converged_when_stable() {
        let crit = ConvergenceCriterion::new(10, 1e-3);
        let a = vec![Some(1.0)];
        let b = vec![Some(1.0005)];
        assert!(crit.is_converged(&a, &b));
        let c = vec![Some(1.1)];
        assert!(!crit.is_converged(&a, &c));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        ConvergenceCriterion::new(0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_panics() {
        ConvergenceCriterion::new(10, -1.0);
    }

    #[test]
    fn effective_clamps_field_constructed_invalid_criteria() {
        // Struct literals bypass `new`'s validation; `effective` repairs them.
        let zero_iters = ConvergenceCriterion {
            max_iterations: 0,
            tolerance: 1e-6,
        };
        assert_eq!(zero_iters.effective().max_iterations, 1);
        assert_eq!(zero_iters.effective().tolerance, 1e-6);

        let negative_tol = ConvergenceCriterion {
            max_iterations: 5,
            tolerance: -2.0,
        };
        assert_eq!(negative_tol.effective().tolerance, 0.0);
        assert_eq!(negative_tol.effective().max_iterations, 5);

        let nan_tol = ConvergenceCriterion {
            max_iterations: 5,
            tolerance: f64::NAN,
        };
        assert_eq!(nan_tol.effective().tolerance, 0.0);
    }

    #[test]
    fn effective_is_identity_on_valid_criteria() {
        let valid = ConvergenceCriterion::new(42, 1e-3);
        assert_eq!(valid.effective(), valid);
        let default = ConvergenceCriterion::default();
        assert_eq!(default.effective(), default);
    }

    #[test]
    fn delta_with_mismatched_none_patterns() {
        // None in either slot skips the pair — in both directions.
        let a = vec![None, Some(2.0), None, Some(4.0)];
        let b = vec![Some(1.0), None, None, Some(4.5)];
        assert_eq!(max_abs_delta(&a, &b), 0.5);
        assert_eq!(max_abs_delta(&b, &a), 0.5);
        // All pairs skipped → no evidence of change → delta 0.
        let only_a = vec![Some(1.0), None];
        let only_b = vec![None, Some(9.0)];
        assert_eq!(max_abs_delta(&only_a, &only_b), 0.0);
        // Empty vectors and length mismatches (zip stops at the shorter).
        assert_eq!(max_abs_delta(&[], &[]), 0.0);
        let long = vec![Some(1.0), Some(100.0)];
        let short = vec![Some(3.0)];
        assert_eq!(max_abs_delta(&long, &short), 2.0);
    }
}
