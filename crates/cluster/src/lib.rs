//! Clustering and dimensionality reduction for device-fingerprint grouping.
//!
//! AG-FP clusters the 80-dimensional fingerprint feature vectors
//! (20 Table-II features × 4 sensor streams) with k-means, estimating the
//! number of devices `k` by the elbow method over the SSE curve, exactly as
//! §IV-C of the paper prescribes. PCA is used by the paper's Figs. 2 and 8
//! to visualize fingerprints in the first two principal components.
//!
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding,
//! * [`elbow`] — SSE-curve elbow estimation of `k`,
//! * [`Pca`] — principal component analysis via a Jacobi eigensolver,
//! * [`silhouette_score`] — an additional internal quality index used by
//!   the ablation experiments.
//!
//! # Examples
//!
//! ```
//! use srtd_cluster::{KMeans, KMeansConfig};
//!
//! let points = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
//!     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
//! ];
//! let result = KMeans::new(KMeansConfig::new(2)).fit(&points);
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_ne!(result.assignments[0], result.assignments[3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elbow;

pub mod hierarchical;
pub mod kmeans;
pub mod linalg;
pub mod pca;
pub mod silhouette;

pub use elbow::{elbow, knee_of, ElbowResult};
pub use hierarchical::{agglomerative, HierarchicalResult, Linkage};
pub use kmeans::{AssignPruning, KMeans, KMeansConfig, KMeansResult};
pub use linalg::Matrix;
pub use pca::Pca;
pub use silhouette::silhouette_score;

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_distance_basics() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn squared_distance_length_mismatch() {
        squared_distance(&[1.0], &[1.0, 2.0]);
    }
}
