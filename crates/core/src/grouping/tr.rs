//! AG-TR: account grouping by trajectory (Eqs. 7–8).

use crate::grouping::{blocking, AccountGrouping, Candidates, EdgeGrouping, Grouping};
use srtd_graph::UnionFind;
use srtd_runtime::parallel::{parallel_map, triangle_pairs};
use srtd_timeseries::{BandPolicy, Dtw, PrunedPairwise};
use srtd_truth::SensingData;

/// Ceiling for the dense [`AgTr::dissimilarity_matrix`] API: it exists
/// for the Fig. 4 worked example and equivalence tests, and allocating
/// n×n floats at campaign scale would be a bug even when every entry is
/// pruned to ∞ (8 TB at one million accounts). Grouping goes through the
/// sparse [`AgTr::dissimilarity_edges`] path, which has no such limit.
const MAX_DENSE_ACCOUNTS: usize = 4096;

/// Account grouping by trajectory dissimilarity.
///
/// Each account's submissions, ordered by time, form two series: the task
/// indices `X_i` and the timestamps `Y_i`. The dissimilarity is Eq. 8,
///
/// ```text
/// D_ij = DTW(X_i, X_j) + DTW(Y_i, Y_j)
/// ```
///
/// with the DTW distance of Eq. 7. Pairs with `D_ij < φ` are connected and
/// connected components become groups: the accounts of one Sybil attacker
/// replay a single physical walk, so both their task order and their
/// timing pattern nearly coincide.
///
/// Timestamps are rescaled by [`AgTr::timestamp_unit`] (default: hours)
/// before DTW so that `φ` is dimensionless-ish; the paper's worked example
/// tabulates timestamp DTW values well below 1 for same-walk accounts.
///
/// # Examples
///
/// ```
/// use srtd_core::{AccountGrouping, AgTr};
/// use srtd_truth::SensingData;
///
/// let mut data = SensingData::new(3);
/// // Two accounts replaying one walk 30 s apart...
/// for (acct, off) in [(0, 0.0), (1, 30.0)] {
///     data.add_report(acct, 0, 1.0, 100.0 + off);
///     data.add_report(acct, 2, 1.0, 400.0 + off);
/// }
/// // ...and an account on a different route hours later.
/// data.add_report(2, 1, 1.0, 9_000.0);
/// data.add_report(2, 2, 1.0, 9_700.0);
/// let grouping = AgTr::default().group(&data, &[]);
/// assert_eq!(grouping.group_of(0), grouping.group_of(1));
/// assert_ne!(grouping.group_of(0), grouping.group_of(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgTr {
    phi: f64,
    timestamp_unit: f64,
    dtw: Dtw,
    band: BandPolicy,
    prune: bool,
    blocking: bool,
}

impl Default for AgTr {
    /// `φ = 1` with timestamps in hours and *raw* cumulative DTW cost,
    /// pairwise pruning on, and the adaptive band policy (paper-scale
    /// trajectories stay unbanded; see [`BandPolicy::adaptive`]).
    ///
    /// The paper's worked example (Fig. 4) tabulates the raw cumulative
    /// cost, under which task-index series of different task sets are at
    /// least 1 apart (integer indices, squared distances), so `φ = 1`
    /// cleanly separates different-walk accounts while same-walk accounts
    /// differ only by their small timestamp offsets. Use
    /// [`AgTr::with_dtw`] to switch to Eq. 7's path-normalized form.
    fn default() -> Self {
        Self {
            phi: 1.0,
            timestamp_unit: 3600.0,
            dtw: Dtw::new().raw(),
            band: BandPolicy::adaptive(),
            prune: true,
            blocking: true,
        }
    }
}

impl AgTr {
    /// Creates AG-TR with dissimilarity threshold `phi`.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not finite and positive.
    pub fn new(phi: f64) -> Self {
        assert!(phi.is_finite() && phi > 0.0, "threshold must be positive");
        Self {
            phi,
            ..Self::default()
        }
    }

    /// The dissimilarity threshold φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Seconds per timestamp unit used in `Y` series (default 3600 —
    /// hours).
    pub fn timestamp_unit(&self) -> f64 {
        self.timestamp_unit
    }

    /// Replaces the timestamp unit.
    ///
    /// # Panics
    ///
    /// Panics if `seconds_per_unit` is not positive.
    pub fn with_timestamp_unit(mut self, seconds_per_unit: f64) -> Self {
        assert!(
            seconds_per_unit.is_finite() && seconds_per_unit > 0.0,
            "timestamp unit must be positive"
        );
        self.timestamp_unit = seconds_per_unit;
        self
    }

    /// Uses a configured DTW (e.g. raw mode for the Fig. 4 worked example,
    /// or banded for long trajectories). An explicit band on the DTW
    /// overrides the [`AgTr::with_band_policy`] rule; a non-raw
    /// (Eq. 7 path-normalized) DTW disables pairwise pruning, whose
    /// cutoff lives in raw-cost space.
    pub fn with_dtw(mut self, dtw: Dtw) -> Self {
        self.dtw = dtw;
        self
    }

    /// Replaces the Sakoe–Chiba band-selection rule used when the DTW
    /// itself carries no explicit band (default: [`BandPolicy::adaptive`]).
    pub fn with_band_policy(mut self, band: BandPolicy) -> Self {
        self.band = band;
        self
    }

    /// Enables or disables pairwise pruning (default: enabled). The
    /// pruned and full paths produce identical groupings — disabling is
    /// only useful to obtain exact above-φ distances for display, or as
    /// the reference side of an equivalence check.
    pub fn with_pruning(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Enables or disables endpoint-cell blocking in front of the LB
    /// cascade (default on; effective only together with pruning and raw
    /// DTW, whose cost space the cells quantize). The exhaustive path
    /// visits all pairs — useful as the oracle in equivalence tests; both
    /// paths produce identical groupings.
    pub fn with_blocking(mut self, blocking: bool) -> Self {
        self.blocking = blocking;
        self
    }

    /// The band rule both matrix paths share: an explicit band configured
    /// on the DTW wins, otherwise the policy decides per pair.
    fn effective_band(&self) -> BandPolicy {
        match self.dtw.band() {
            Some(w) => BandPolicy::Fixed(w),
            None => self.band,
        }
    }

    /// The DTW used by the full (unpruned) path for a pair of
    /// trajectories of `la` and `lb` reports.
    fn dtw_for(&self, la: usize, lb: usize) -> Dtw {
        match self.effective_band().band_for(la, lb) {
            Some(w) => self.dtw.with_band(w),
            None => self.dtw,
        }
    }

    /// Extracts the `(X_i, Y_i)` trajectory series of every account.
    pub fn trajectories(&self, data: &SensingData) -> Vec<(Vec<f64>, Vec<f64>)> {
        (0..data.num_accounts())
            .map(|a| {
                let traj = data.trajectory_of(a);
                let x: Vec<f64> = traj.iter().map(|r| r.task as f64).collect();
                let y: Vec<f64> = traj
                    .iter()
                    .map(|r| r.timestamp / self.timestamp_unit)
                    .collect();
                (x, y)
            })
            .collect()
    }

    /// The pairwise dissimilarity matrix (Fig. 4(c)); diagonal is 0.
    /// Accounts with no reports are infinitely far from everyone —
    /// including each other: two inactive accounts share no behavioural
    /// evidence, so they must stay singletons rather than merge at
    /// distance zero.
    ///
    /// With pruning enabled (the default, raw-cost DTW only) the
    /// `n(n−1)/2` evaluations go through [`PrunedPairwise`] with the
    /// threshold φ as cutoff: every entry `< φ` is bit-identical to the
    /// full path, while provably-above-φ pairs read `f64::INFINITY`
    /// without paying for a full DTW — sufficient because only the
    /// `D_ij < φ` decision feeds the connected-components step. Disable
    /// via [`AgTr::with_pruning`] to get exact values everywhere.
    ///
    /// Either path runs the pair map through the runtime's scoped-thread
    /// parallel map over the flattened upper triangle; the
    /// order-preserving map makes the matrix identical for every
    /// worker-thread count.
    pub fn dissimilarity_matrix(&self, data: &SensingData) -> Vec<Vec<f64>> {
        let _span = srtd_runtime::obs::span("ag_tr.dtw_matrix");
        let trajectories = self.trajectories(data);
        let n = trajectories.len();
        assert!(
            n <= MAX_DENSE_ACCOUNTS,
            "the dense dissimilarity matrix is capped at {MAX_DENSE_ACCOUNTS} accounts \
             (got {n}); use dissimilarity_edges at scale"
        );
        let mut matrix = if self.prune && self.dtw.is_raw() {
            PrunedPairwise::new(self.phi)
                .with_band(self.effective_band())
                .matrix2(&trajectories)
        } else {
            let pairs = triangle_pairs(n);
            let distances = parallel_map(&pairs, |&(i, j)| {
                let (xi, yi) = &trajectories[i];
                let (xj, yj) = &trajectories[j];
                let dtw = self.dtw_for(xi.len(), xj.len());
                dtw.distance(xi, xj) + dtw.distance(yi, yj)
            });
            let mut matrix = vec![vec![0.0; n]; n];
            for (&(i, j), &d) in pairs.iter().zip(&distances) {
                matrix[i][j] = d;
                matrix[j][i] = d;
            }
            matrix
        };
        // Inactive accounts: the engine's empty-vs-empty DTW is 0, but
        // two accounts that never reported must not merge on the absence
        // of evidence — force their off-diagonal entries to ∞.
        for (i, (x, _)) in trajectories.iter().enumerate() {
            if x.is_empty() {
                for j in 0..n {
                    if j != i {
                        matrix[i][j] = f64::INFINITY;
                        matrix[j][i] = f64::INFINITY;
                    }
                }
            }
        }
        matrix
    }

    /// The sparse decision-edge list: pairs `(i, j, D_ij)` with `i < j`
    /// and `D_ij < φ`, in lexicographic order, never pairing inactive
    /// accounts. This is what [`AccountGrouping::group`] connects — the
    /// dense matrix is never materialized on this path, so it has no size
    /// cap.
    ///
    /// With blocking on (default; requires pruning and raw DTW, whose
    /// cost space the endpoint cells quantize) only same-or-adjacent
    /// endpoint-cell pairs from [`blocking::tr_candidates`] enter the LB
    /// cascade — provably a superset of every below-φ pair. Otherwise all
    /// active pairs are visited, through the cascade when pruning applies
    /// and through full DTW when it does not.
    pub fn dissimilarity_edges(&self, data: &SensingData) -> Vec<(usize, usize, f64)> {
        self.dissimilarity_edges_masked(data, None)
    }

    /// [`AgTr::dissimilarity_edges`] restricted to pairs touching a dirty
    /// account (the incremental re-grouping path); `None` means all pairs.
    pub fn dissimilarity_edges_masked(
        &self,
        data: &SensingData,
        dirty: Option<&[bool]>,
    ) -> Vec<(usize, usize, f64)> {
        let _span = srtd_runtime::obs::span("ag_tr.dtw_edges");
        let trajectories = self.trajectories(data);
        let n = trajectories.len();
        let pruned = self.prune && self.dtw.is_raw();
        let candidates = if self.blocking && pruned {
            blocking::tr_candidates(&trajectories, self.phi, dirty)
        } else {
            Candidates::exhaustive(n, dirty)
        };
        candidates.record("ag_tr");
        // Inactive accounts must stay singletons: drop their pairs before
        // any distance work (the blocked path never generates them, and
        // the dense path forces the same pairs to ∞ after the fact).
        let pairs: Vec<(usize, usize)> = candidates
            .pairs
            .into_iter()
            .filter(|&(i, j)| !trajectories[i].0.is_empty() && !trajectories[j].0.is_empty())
            .collect();
        if pruned {
            let (edges, _stats) = PrunedPairwise::new(self.phi)
                .with_band(self.effective_band())
                .edges2_with_stats(&trajectories, &pairs);
            edges
                .into_iter()
                .filter(|&(_, _, d)| d < self.phi)
                .collect()
        } else {
            let distances = parallel_map(&pairs, |&(i, j)| {
                let (xi, yi) = &trajectories[i];
                let (xj, yj) = &trajectories[j];
                let dtw = self.dtw_for(xi.len(), xj.len());
                dtw.distance(xi, xj) + dtw.distance(yi, yj)
            });
            pairs
                .iter()
                .zip(&distances)
                .filter_map(|(&(i, j), &d)| (d < self.phi).then_some((i, j, d)))
                .collect()
        }
    }
}

impl AccountGrouping for AgTr {
    fn group(&self, data: &SensingData, _fingerprints: &[Vec<f64>]) -> Grouping {
        let n = data.num_accounts();
        if n == 0 {
            return Grouping::from_labels(&[]);
        }
        let _span = srtd_runtime::obs::span("ag_tr.group");
        let edges = self.dissimilarity_edges(data);
        let mut uf = UnionFind::new(n);
        for &(i, j, _) in &edges {
            uf.union(i, j);
        }
        srtd_runtime::obs::counter_add("ag_tr.edges", edges.len() as u64);
        Grouping::new(uf.into_groups())
    }

    fn name(&self) -> &'static str {
        "AG-TR"
    }
}

impl EdgeGrouping for AgTr {
    fn decision_edges(&self, data: &SensingData, dirty: Option<&[bool]>) -> Vec<(usize, usize)> {
        self.dissimilarity_edges_masked(data, dirty)
            .into_iter()
            .map(|(i, j, _)| (i, j))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table III (same data as the AG-TS tests; see `ts.rs`).
    fn table_iii_data() -> SensingData {
        let mut d = SensingData::new(4);
        let ts = |m: f64, s: f64| 10.0 * 3600.0 + m * 60.0 + s;
        d.add_report(0, 0, -84.48, ts(0.0, 35.0));
        d.add_report(0, 1, -82.11, ts(2.0, 42.0));
        d.add_report(0, 2, -75.16, ts(10.0, 22.0));
        d.add_report(0, 3, -72.71, ts(13.0, 41.0));
        d.add_report(1, 1, -72.27, ts(4.0, 15.0));
        d.add_report(1, 2, -77.21, ts(6.0, 1.0));
        d.add_report(2, 0, -72.41, ts(1.0, 21.0));
        d.add_report(2, 1, -91.49, ts(4.0, 5.0));
        d.add_report(2, 3, -73.55, ts(8.0, 28.0));
        d.add_report(3, 0, -50.0, ts(1.0, 10.0));
        d.add_report(3, 2, -50.0, ts(15.0, 24.0));
        d.add_report(3, 3, -50.0, ts(20.0, 6.0));
        d.add_report(4, 0, -50.0, ts(1.0, 34.0));
        d.add_report(4, 2, -50.0, ts(16.0, 8.0));
        d.add_report(4, 3, -50.0, ts(21.0, 25.0));
        d.add_report(5, 0, -50.0, ts(2.0, 35.0));
        d.add_report(5, 2, -50.0, ts(17.0, 35.0));
        d.add_report(5, 3, -50.0, ts(22.0, 2.0));
        d
    }

    #[test]
    fn table_iii_reproduces_fig4_grouping() {
        // Fig. 4(d): the Sybil accounts {4', 4'', 4'''} form the single
        // component; 1, 2, 3 are singletons. AG-TR avoids AG-TS's
        // account-1 false positive because the timestamp series of account
        // 1 diverges from the attacker's.
        let g = AgTr::default().group(&table_iii_data(), &[]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.group_of(3), g.group_of(4));
        assert_eq!(g.group_of(4), g.group_of(5));
        for a in 0..3 {
            assert_eq!(g.groups()[g.group_of(a)].len(), 1, "account {a}");
        }
    }

    #[test]
    fn dissimilarity_matrix_structure() {
        let d = table_iii_data();
        let m = AgTr::default().dissimilarity_matrix(&d);
        // Symmetric with zero diagonal (pruned above-φ entries are ∞, so
        // compare bits rather than differences).
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), m[j][i].to_bits());
            }
        }
        // Sybil pairs are much closer than any legit pair.
        let sybil_max = m[3][4].max(m[3][5]).max(m[4][5]);
        let legit_min = m[0][1].min(m[0][2]).min(m[1][2]);
        assert!(
            sybil_max < legit_min,
            "sybil pairs ({sybil_max}) should be closer than legit pairs ({legit_min})"
        );
    }

    #[test]
    fn raw_dtw_reproduces_fig4a_task_series_values() {
        // Fig. 4(a) tabulates raw cumulative DTW over the task series with
        // 1-based task ids; with 0-based ids the distances are identical
        // because DTW is shift-invariant only through the values — both
        // series shift together, so differences are unchanged.
        let d = table_iii_data();
        let ag = AgTr::default().with_dtw(Dtw::new().raw());
        let trajectories = ag.trajectories(&d);
        let dtw = Dtw::new().raw();
        let dx = |i: usize, j: usize| dtw.distance(&trajectories[i].0, &trajectories[j].0);
        assert_eq!(dx(0, 1), 2.0); // DTW(X_1, X_2)
        assert_eq!(dx(0, 3), 1.0); // DTW(X_1, X_4')
        assert_eq!(dx(3, 4), 0.0); // identical task series
        assert_eq!(dx(1, 3), 2.0); // DTW(X_2, X_4')
    }

    #[test]
    fn threshold_controls_merging() {
        let d = table_iii_data();
        // A huge threshold merges everyone into one component.
        let all = AgTr::new(1e6).group(&d, &[]);
        assert_eq!(all.len(), 1);
        // A tiny threshold keeps everyone separate (sybil timestamp gaps
        // are ~25–85 s ≈ 0.01–0.02 h, so φ = 1e-4 splits even them).
        let none = AgTr::new(1e-4).group(&d, &[]);
        assert_eq!(none.len(), 6);
    }

    #[test]
    fn accounts_without_reports_stay_singletons() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 1.0, 10.0);
        d.add_report(2, 0, 1.0, 12.0);
        let g = AgTr::default().group(&d, &[]);
        let solo = g.group_of(1);
        assert_eq!(g.groups()[solo], vec![1]);
    }

    #[test]
    fn two_inactive_accounts_do_not_merge_with_each_other() {
        // Accounts 1 and 2 never reported; with the naive empty-vs-empty
        // DTW convention (distance 0) they would merge — they must not.
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 1.0, 5.0);
        d.add_report(3, 0, 1.5, 4_000.0);
        d.reserve_accounts(4);
        let g = AgTr::default().group(&d, &[]);
        assert_ne!(g.group_of(1), g.group_of(2));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn pruned_path_matches_full_on_ragged_trajectories() {
        // Table III trajectories are ragged (lengths 4, 2, 3, 3, 3, 3):
        // LB_Keogh would panic on unequal lengths, so the engine must fall
        // back to LB_Kim for those pairs — this is the regression test for
        // the AG-TR call site.
        let d = table_iii_data();
        let pruned = AgTr::default();
        let full = AgTr::default().with_pruning(false);
        let gp = pruned.group(&d, &[]);
        let gf = full.group(&d, &[]);
        assert_eq!(gp.groups(), gf.groups());
        let phi = pruned.phi();
        let mp = pruned.dissimilarity_matrix(&d);
        let mf = full.dissimilarity_matrix(&d);
        for i in 0..mp.len() {
            for j in 0..mp.len() {
                if mp[i][j].is_infinite() {
                    assert!(mf[i][j] >= phi, "pruned a below-φ pair ({i},{j})");
                } else {
                    assert_eq!(mp[i][j].to_bits(), mf[i][j].to_bits());
                }
            }
        }
    }

    #[test]
    fn explicit_dtw_band_overrides_the_policy() {
        // A user-fixed band must apply identically on both paths.
        let d = table_iii_data();
        let banded = Dtw::new().raw().with_band(1);
        let pruned = AgTr::default().with_dtw(banded);
        let full = pruned.with_pruning(false);
        assert_eq!(pruned.group(&d, &[]).groups(), full.group(&d, &[]).groups());
    }

    #[test]
    fn normalized_dtw_falls_back_to_the_full_path() {
        // Eq. 7 path-normalized distances are not raw cumulative costs, so
        // the raw-space pruning cutoff does not apply; grouping must still
        // work (via the unpruned path) with a threshold in that space.
        let d = table_iii_data();
        let ag = AgTr::new(0.5).with_dtw(Dtw::new());
        let m = ag.dissimilarity_matrix(&d);
        // No pruning: every active-pair entry is finite.
        for i in 0..6 {
            for j in 0..6 {
                assert!(m[i][j].is_finite(), "({i},{j}) = {}", m[i][j]);
            }
        }
    }

    #[test]
    fn empty_data_yields_empty_grouping() {
        let g = AgTr::default().group(&SensingData::new(1), &[]);
        assert!(g.is_empty());
    }

    #[test]
    fn sparse_edges_match_the_dense_decision() {
        // The edge list must be exactly the below-φ entries of the dense
        // matrix (bitwise), blocked or not, pruned or not.
        let d = table_iii_data();
        for ag in [
            AgTr::default(),
            AgTr::default().with_blocking(false),
            AgTr::default().with_pruning(false),
            AgTr::new(0.5).with_dtw(Dtw::new()), // normalized → full path
        ] {
            let matrix = ag.dissimilarity_matrix(&d);
            let mut expected = Vec::new();
            for i in 0..matrix.len() {
                for j in i + 1..matrix.len() {
                    if matrix[i][j] < ag.phi() {
                        expected.push((i, j, matrix[i][j]));
                    }
                }
            }
            let edges = ag.dissimilarity_edges(&d);
            assert_eq!(edges.len(), expected.len(), "{ag:?}");
            for (got, want) in edges.iter().zip(&expected) {
                assert_eq!((got.0, got.1), (want.0, want.1), "{ag:?}");
                assert_eq!(got.2.to_bits(), want.2.to_bits(), "{ag:?}");
            }
        }
    }

    #[test]
    fn blocked_and_exhaustive_edges_agree() {
        let d = table_iii_data();
        let blocked = AgTr::default().dissimilarity_edges(&d);
        let exhaustive = AgTr::default().with_blocking(false).dissimilarity_edges(&d);
        assert_eq!(blocked, exhaustive);
        assert_eq!(
            AgTr::default().group(&d, &[]),
            AgTr::default().with_blocking(false).group(&d, &[])
        );
    }

    #[test]
    fn masked_edges_only_touch_dirty_accounts() {
        let d = table_iii_data();
        // Only the last Sybil account is dirty: of the three Sybil edges,
        // exactly the two touching account 5 remain.
        let mask = [false, false, false, false, false, true];
        let edges = AgTr::default().dissimilarity_edges_masked(&d, Some(&mask));
        let pairs: Vec<(usize, usize)> = edges.iter().map(|&(i, j, _)| (i, j)).collect();
        assert_eq!(pairs, vec![(3, 5), (4, 5)]);
    }

    #[test]
    fn inactive_accounts_never_appear_in_edges() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 1.0, 5.0);
        d.add_report(3, 0, 1.0, 6.0);
        d.reserve_accounts(4);
        for ag in [AgTr::default(), AgTr::default().with_blocking(false)] {
            let edges = ag.dissimilarity_edges(&d);
            assert!(
                edges
                    .iter()
                    .all(|&(i, j, _)| i != 1 && i != 2 && j != 1 && j != 2),
                "{edges:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_threshold_rejected() {
        AgTr::new(0.0);
    }
}
