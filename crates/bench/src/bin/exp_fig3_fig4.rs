//! Experiments `fig3` and `fig4` — the AG-TS and AG-TR worked examples on
//! the Table III data.
//!
//! Prints the `T_ij` / `L_ij` / `A_ij` matrices and components of Fig. 3,
//! then the `DTW(X)` / `DTW(Y)` / `D_ij` matrices and components of
//! Fig. 4.
//!
//! Run with: `cargo run -p srtd-bench --bin exp_fig3_fig4`

use srtd_bench::table::matrix;
use srtd_core::{AccountGrouping, AgTr, AgTs};
use srtd_timeseries::Dtw;
use srtd_truth::SensingData;

const NAMES: [&str; 6] = ["1", "2", "3", "4'", "4''", "4'''"];

fn table_iii() -> SensingData {
    let ts = |m: f64, s: f64| 10.0 * 3600.0 + m * 60.0 + s;
    let mut d = SensingData::new(4);
    d.add_report(0, 0, -84.48, ts(0.0, 35.0));
    d.add_report(0, 1, -82.11, ts(2.0, 42.0));
    d.add_report(0, 2, -75.16, ts(10.0, 22.0));
    d.add_report(0, 3, -72.71, ts(13.0, 41.0));
    d.add_report(1, 1, -72.27, ts(4.0, 15.0));
    d.add_report(1, 2, -77.21, ts(6.0, 1.0));
    d.add_report(2, 0, -72.41, ts(1.0, 21.0));
    d.add_report(2, 1, -91.49, ts(4.0, 5.0));
    d.add_report(2, 3, -73.55, ts(8.0, 28.0));
    d.add_report(3, 0, -50.0, ts(1.0, 10.0));
    d.add_report(3, 2, -50.0, ts(15.0, 24.0));
    d.add_report(3, 3, -50.0, ts(20.0, 6.0));
    d.add_report(4, 0, -50.0, ts(1.0, 34.0));
    d.add_report(4, 2, -50.0, ts(16.0, 8.0));
    d.add_report(4, 3, -50.0, ts(21.0, 25.0));
    d.add_report(5, 0, -50.0, ts(2.0, 35.0));
    d.add_report(5, 2, -50.0, ts(17.0, 35.0));
    d.add_report(5, 3, -50.0, ts(22.0, 2.0));
    d
}

fn to_f64(m: &[Vec<usize>]) -> Vec<Vec<f64>> {
    m.iter()
        .map(|r| r.iter().map(|&v| v as f64).collect())
        .collect()
}

fn named_groups(g: &srtd_core::Grouping) -> Vec<Vec<&'static str>> {
    g.groups()
        .iter()
        .map(|grp| grp.iter().map(|&a| NAMES[a]).collect())
        .collect()
}

fn main() {
    let data = table_iii();

    println!("Fig. 3 — AG-TS worked example (Table III data)\n");
    let ag_ts = AgTs::default();
    let (together, alone) = ag_ts.task_overlap_matrices(&data);
    println!("(a) T_ij — tasks both accomplished:");
    println!("{}", matrix(&NAMES, &to_f64(&together), 0));
    println!("(b) L_ij — tasks exactly one accomplished:");
    println!("{}", matrix(&NAMES, &to_f64(&alone), 0));
    println!("(c) A_ij — Eq. 6 affinity (m = 4):");
    let affinity = ag_ts.affinity_matrix(&data);
    println!("{}", matrix(&NAMES, &affinity, 2));
    let g_ts = ag_ts.group(&data, &[]);
    println!(
        "(d) components with A_ij > {}: {:?}",
        ag_ts.rho(),
        named_groups(&g_ts)
    );
    println!();
    println!("note: the paper's figure tabulates A(4',4'') = 1.8, consistent");
    println!("with dividing by m = 5; literal Eq. 6 with m = 4 gives 2.25 and");
    println!("A(1,4') = 1.00, so at rho = 1 account 1 stays out (the figure's");
    println!("false positive appears at rho < 1; see exp_ablation_thresholds).");
    assert_eq!(g_ts.group_of(3), g_ts.group_of(4));
    assert_eq!(g_ts.group_of(4), g_ts.group_of(5));

    println!("\nFig. 4 — AG-TR worked example (Table III data)\n");
    // Unpruned so the printed Fig. 4(c) matrix shows exact distances
    // (the default pruned path reports above-φ pairs as ∞).
    let ag_tr = AgTr::default().with_pruning(false);
    let trajectories = ag_tr.trajectories(&data);
    let raw = Dtw::new().raw();
    let mut dtw_x = vec![vec![0.0; 6]; 6];
    let mut dtw_y = vec![vec![0.0; 6]; 6];
    for i in 0..6 {
        for j in 0..6 {
            dtw_x[i][j] = raw.distance(&trajectories[i].0, &trajectories[j].0);
            dtw_y[i][j] = raw.distance(&trajectories[i].1, &trajectories[j].1);
        }
    }
    println!("(a) DTW(X_i, X_j) — task series, raw cumulative cost:");
    println!("{}", matrix(&NAMES, &dtw_x, 0));
    println!("(b) DTW(Y_i, Y_j) — timestamp series (hours), raw cost:");
    println!("{}", matrix(&NAMES, &dtw_y, 3));
    println!("(c) D_ij = DTW(X) + DTW(Y) (Eq. 8):");
    let dissimilarity = ag_tr.dissimilarity_matrix(&data);
    println!("{}", matrix(&NAMES, &dissimilarity, 3));
    let g_tr = ag_tr.group(&data, &[]);
    println!(
        "(d) components with D_ij < {}: {:?}",
        ag_tr.phi(),
        named_groups(&g_tr)
    );
    println!();
    println!("expected shape (matches Fig. 4): DTW(X_1, X_2) = 2,");
    println!("DTW(X_1, X_4') = 1, Sybil pairs at 0; only {{4', 4'', 4'''}} form");
    println!("a component — fewer false positives than AG-TS.");
    assert_eq!(dtw_x[0][1], 2.0);
    assert_eq!(dtw_x[0][3], 1.0);
    assert_eq!(g_tr.len(), 4);
    assert_eq!(g_tr.group_of(3), g_tr.group_of(5));
    println!("\n[shape checks passed]");
}
