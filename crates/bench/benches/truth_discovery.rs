//! Truth discovery algorithm cost on growing campaigns.

use srtd_runtime::bench::{black_box, Bench};
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_truth::{Catd, Crh, Gtm, MedianVote, SensingData, TruthDiscovery};

fn campaign(num_legit: usize) -> SensingData {
    let cfg = ScenarioConfig {
        num_legit,
        num_tasks: 20,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(99);
    Scenario::generate(&cfg).data
}

fn main() {
    let mut group = Bench::new("truth_discovery");
    for &n in &[8usize, 32, 128] {
        let data = campaign(n);
        group.run(&format!("crh/{n}"), || {
            Crh::default().discover(black_box(&data))
        });
        group.run(&format!("catd/{n}"), || {
            Catd::default().discover(black_box(&data))
        });
        group.run(&format!("gtm/{n}"), || {
            Gtm::default().discover(black_box(&data))
        });
        group.run(&format!("median/{n}"), || {
            MedianVote.discover(black_box(&data))
        });
    }
}
