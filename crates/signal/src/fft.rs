//! Iterative radix-2 Cooley–Tukey fast Fourier transform.

use crate::Complex;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Forward twiddle factors `e^(−2πik/n)` for `k < n/2`, cached per size.
///
/// Every stage of a length-`n` transform reads this one table at stride
/// `n / len`, so the trig evaluations happen once per size per process
/// instead of once per butterfly. Each table entry is computed directly
/// from its angle (not by repeated multiplication), and every caller —
/// whichever thread it runs on — sees the same table, so transforms stay
/// byte-identical across threads and call orders.
fn twiddle_table(n: usize) -> Arc<Vec<Complex>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Vec<Complex>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("twiddle cache poisoned");
    map.entry(n)
        .or_insert_with(|| {
            let step = -2.0 * std::f64::consts::PI / n as f64;
            Arc::new(
                (0..n / 2)
                    .map(|k| Complex::from_angle(step * k as f64))
                    .collect(),
            )
        })
        .clone()
}

/// Returns the smallest power of two `>= n` (and `>= 1`).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    transform(buf, false);
}

/// In-place inverse FFT (including the `1/N` normalization).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex]) {
    transform(buf, true);
    let scale = 1.0 / buf.len() as f64;
    for z in buf.iter_mut() {
        *z = z.scale(scale);
    }
}

fn transform(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    srtd_runtime::obs::counter_add("signal.fft.calls", 1);
    srtd_runtime::obs::observe("signal.fft.len", n as f64);
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }
    butterflies(buf, inverse);
}

/// The butterfly ladder over an already bit-reversed buffer — shared by
/// [`transform`] and the fused windowed loaders, so both paths run the
/// exact same floating-point operations. Twiddles come from the shared
/// per-size table at stride `n / len` (no per-butterfly phasor
/// accumulation, so stage twiddles carry full `sin`/`cos` precision at
/// every index).
fn butterflies(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    let table = twiddle_table(n);
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let tw = table[k * stride];
                let w = if inverse { tw.conj() } else { tw };
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
            }
        }
        len <<= 1;
    }
}

/// Loads up to two real streams into `buf` **in bit-reversed order**,
/// applying the window coefficients during the load: slot `rev(i)` gets
/// `x[i]·wx[i]` in the real lane and `y[i]·wy[i]` in the imaginary lane,
/// everything else is zero padding up to `n`.
///
/// This fuses the three copies the batch path used to make (windowed
/// staging per stream, then the pair pack) into one pass that reads the
/// raw streams directly. Bit-identical to copy-then-permute: `x·w` is
/// the same multiply wherever it happens, a permutation of zeros is
/// still zeros, and `None` (all-ones window) multiplies by nothing at
/// all — matching `Window::apply`'s rectangular short-circuit.
fn load_bit_reversed(
    buf: &mut Vec<Complex>,
    n: usize,
    x: &[f64],
    wx: Option<&[f64]>,
    y: &[f64],
    wy: Option<&[f64]>,
) {
    debug_assert!(n.is_power_of_two() && n >= x.len().max(y.len()));
    debug_assert!(wx.is_none_or(|w| w.len() == x.len()));
    debug_assert!(wy.is_none_or(|w| w.len() == y.len()));
    buf.clear();
    buf.resize(n, Complex::ZERO);
    if n <= 1 {
        if let Some(&v) = x.first() {
            buf[0].re = v;
        }
        if let Some(&v) = y.first() {
            buf[0].im = v;
        }
        return;
    }
    let bits = n.trailing_zeros();
    let rev = |i: usize| i.reverse_bits() >> (usize::BITS - bits);
    match wx {
        Some(w) => {
            for (i, (&v, &c)) in x.iter().zip(w).enumerate() {
                buf[rev(i)].re = v * c;
            }
        }
        None => {
            for (i, &v) in x.iter().enumerate() {
                buf[rev(i)].re = v;
            }
        }
    }
    match wy {
        Some(w) => {
            for (i, (&v, &c)) in y.iter().zip(w).enumerate() {
                buf[rev(i)].im = v * c;
            }
        }
        None => {
            for (i, &v) in y.iter().enumerate() {
                buf[rev(i)].im = v;
            }
        }
    }
}

/// Forward FFT of one real stream with windowing fused into the
/// bit-reversal load — the zero-copy replacement for
/// `Window::apply` → [`fft_real`].
///
/// `buf` is recycled storage (cleared and resized to the padded power of
/// two); `wx` is the stream's cached coefficient table (`None` for the
/// all-ones rectangular/short-frame case). The spectrum left in `buf` is
/// bit-identical to the copying path: the load performs the identical
/// `x[i]·w[i]` multiplies and the butterfly ladder is shared code.
pub fn fft_windowed_real_into(buf: &mut Vec<Complex>, x: &[f64], wx: Option<&[f64]>) {
    let n = next_power_of_two(x.len());
    srtd_runtime::obs::counter_add("signal.fft.calls", 1);
    srtd_runtime::obs::observe("signal.fft.len", n as f64);
    load_bit_reversed(buf, n, x, wx, &[], None);
    butterflies(buf, false);
}

/// Forward FFTs of two real streams via one complex transform, with
/// windowing fused into the bit-reversal load — the zero-copy
/// replacement for `Window::apply` ×2 → [`fft_real_pair`]'s pack.
///
/// The packed spectrum is left in `buf` (not split); use
/// [`real_pair_magnitudes_into`] to read both single-sided magnitude
/// halves without materializing the full split spectra.
pub fn fft_windowed_real_pair_into(
    buf: &mut Vec<Complex>,
    x: &[f64],
    wx: Option<&[f64]>,
    y: &[f64],
    wy: Option<&[f64]>,
) {
    srtd_runtime::obs::counter_add("signal.fft.real_pair_calls", 1);
    let n = next_power_of_two(x.len().max(y.len()));
    srtd_runtime::obs::counter_add("signal.fft.calls", 1);
    srtd_runtime::obs::observe("signal.fft.len", n as f64);
    load_bit_reversed(buf, n, x, wx, y, wy);
    butterflies(buf, false);
}

/// Splits a packed real-pair spectrum (as left in the buffer by
/// [`fft_windowed_real_pair_into`]) directly into the two single-sided
/// magnitude arrays, written into recycled storage.
///
/// For `k ≤ n/2` this computes the same `X[k] = (Z[k] + conj(Z[n−k]))/2`
/// and `Y[k] = −i·(Z[k] − conj(Z[n−k]))/2` values as [`fft_real_pair`]
/// and takes their moduli — identical arithmetic on identical inputs, so
/// the magnitudes are bit-identical to splitting first; the redundant
/// upper half is simply never materialized.
pub fn real_pair_magnitudes_into(buf: &[Complex], mag_x: &mut Vec<f64>, mag_y: &mut Vec<f64>) {
    let n = buf.len();
    assert!(n >= 1, "spectrum needs at least one bin");
    let half = (n / 2 + 1).min(n);
    mag_x.clear();
    mag_y.clear();
    mag_x.reserve(half);
    mag_y.reserve(half);
    for k in 0..half {
        let z = buf[k];
        let zc = buf[(n - k) % n].conj();
        let s = (z + zc).scale(0.5);
        let d = (z - zc).scale(0.5);
        mag_x.push(s.abs());
        // d = i·Y[k], so Y[k] = −i·d.
        mag_y.push(Complex::new(d.im, -d.re).abs());
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `next_power_of_two(x.len())`.
/// An empty input yields a single zero bin.
pub fn fft_real(x: &[f64]) -> Vec<Complex> {
    let n = next_power_of_two(x.len());
    let mut buf: Vec<Complex> = Vec::with_capacity(n);
    buf.extend(x.iter().map(|&v| Complex::real(v)));
    buf.resize(n, Complex::ZERO);
    fft_in_place(&mut buf);
    buf
}

/// Forward FFTs of two real signals via one complex transform
/// (the "two-for-one" real FFT).
///
/// `x` rides in the real lane and `y` in the imaginary lane of a single
/// buffer; after one FFT the conjugate-symmetry split
/// `X[k] = (Z[k] + conj(Z[n−k]))/2`, `Y[k] = (Z[k] − conj(Z[n−k]))/(2i)`
/// recovers both spectra. Both signals are zero-padded to the next power
/// of two at or above the longer length, so the returned spectra share
/// that length. With equal-length inputs each spectrum matches
/// [`fft_real`] of that signal up to rounding in the split (≲1e-9 for
/// typical sensor magnitudes); it is *not* bit-identical, but it is
/// deterministic — the same inputs give the same bits on every run and
/// thread.
pub fn fft_real_pair(x: &[f64], y: &[f64]) -> (Vec<Complex>, Vec<Complex>) {
    srtd_runtime::obs::counter_add("signal.fft.real_pair_calls", 1);
    let n = next_power_of_two(x.len().max(y.len()));
    let mut buf = vec![Complex::ZERO; n];
    for (slot, &v) in buf.iter_mut().zip(x) {
        slot.re = v;
    }
    for (slot, &v) in buf.iter_mut().zip(y) {
        slot.im = v;
    }
    fft_in_place(&mut buf);
    let mut fx = Vec::with_capacity(n);
    let mut fy = Vec::with_capacity(n);
    for k in 0..n {
        let z = buf[k];
        let zc = buf[(n - k) % n].conj();
        let s = (z + zc).scale(0.5);
        let d = (z - zc).scale(0.5);
        fx.push(s);
        // d = i·Y[k], so Y[k] = −i·d.
        fy.push(Complex::new(d.im, -d.re));
    }
    (fx, fy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc += v * Complex::from_angle(ang);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut fast = x.clone();
        fft_in_place(&mut fast);
        let slow = naive_dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex::ZERO; 8];
        buf[0] = Complex::ONE;
        fft_in_place(&mut buf);
        for z in &buf {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&x);
        let mags: Vec<f64> = spec.iter().map(|z| z.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak == k0 || peak == n - k0);
        assert!((mags[k0] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(fft_real(&[]).len(), 1);
        let spec = fft_real(&[3.0]);
        assert_eq!(spec.len(), 1);
        assert_eq!(spec[0], Complex::real(3.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![Complex::ZERO; 6];
        fft_in_place(&mut buf);
    }

    /// fft → ifft returns the original signal.
    #[test]
    fn round_trip() {
        prop::check(
            |rng| prop::vec_with(rng, 1..200, |r| r.gen_range(-1e3f64..1e3)),
            |xs| {
                let spec = fft_real(xs);
                let mut back = spec.clone();
                ifft_in_place(&mut back);
                for (i, &orig) in xs.iter().enumerate() {
                    prop_assert!((back[i].re - orig).abs() < 1e-8);
                    prop_assert!(back[i].im.abs() < 1e-8);
                }
                Ok(())
            },
        );
    }

    /// Parseval: Σ|x|² = (1/N) Σ|X|² for power-of-two inputs.
    #[test]
    fn parseval() {
        prop::check(
            |rng| prop::vec_with(rng, 1..7, |r| r.gen_range(-1e2f64..1e2)),
            |xs| {
                let n = 64usize;
                let x: Vec<f64> = xs.iter().cycle().take(n).copied().collect();
                let spec = fft_real(&x);
                let time_energy: f64 = x.iter().map(|v| v * v).sum();
                let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
                prop_assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
                Ok(())
            },
        );
    }

    /// The two-for-one split matches independent complex-path FFTs to
    /// high precision, on even and odd input lengths (equal and unequal).
    #[test]
    fn real_pair_matches_independent_ffts() {
        prop::check(
            |rng| {
                let lx = rng.gen_range(1usize..130);
                let ly = if rng.gen_range(0u32..2) == 0 {
                    lx
                } else {
                    rng.gen_range(1usize..130)
                };
                (
                    prop::vec_with(rng, lx..lx + 1, |r| r.gen_range(-1e3f64..1e3)),
                    prop::vec_with(rng, ly..ly + 1, |r| r.gen_range(-1e3f64..1e3)),
                )
            },
            |(x, y)| {
                let (fx, fy) = fft_real_pair(x, y);
                let n = next_power_of_two(x.len().max(y.len()));
                prop_assert!(fx.len() == n && fy.len() == n);
                // Reference: each signal padded to the shared length and
                // run through the plain complex path.
                let reference = |s: &[f64]| {
                    let mut buf: Vec<Complex> = s.iter().map(|&v| Complex::real(v)).collect();
                    buf.resize(n, Complex::ZERO);
                    fft_in_place(&mut buf);
                    buf
                };
                let scale: f64 = x
                    .iter()
                    .chain(y.iter())
                    .fold(1.0f64, |m, &v| m.max(v.abs()));
                for (got, want) in fx
                    .iter()
                    .zip(reference(x))
                    .chain(fy.iter().zip(reference(y)))
                {
                    prop_assert!(
                        (*got - want).abs() < 1e-9 * scale * n as f64,
                        "{got:?} vs {want:?}"
                    );
                }
                Ok(())
            },
        );
    }

    /// The pair split on (x, 0) and (0, y) reproduces each single
    /// spectrum exactly in structure: zero lane in, zero spectrum out.
    #[test]
    fn real_pair_zero_lane_is_zero() {
        let x = [1.0, -2.0, 3.0, 0.5, -0.25];
        let (fx, fy) = fft_real_pair(&x, &[]);
        let single = fft_real(&x);
        for (a, b) in fx.iter().zip(&single) {
            assert!((*a - *b).abs() < 1e-12, "{a:?} vs {b:?}");
        }
        for z in &fy {
            assert!(z.abs() < 1e-12);
        }
    }

    /// Same inputs give the same bits, run after run.
    #[test]
    fn real_pair_is_deterministic() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..100).map(|i| (i as f64 * 0.91).cos()).collect();
        let a = fft_real_pair(&x, &y);
        let b = fft_real_pair(&x, &y);
        for (p, q) in a.0.iter().zip(&b.0).chain(a.1.iter().zip(&b.1)) {
            assert_eq!(p.re.to_bits(), q.re.to_bits());
            assert_eq!(p.im.to_bits(), q.im.to_bits());
        }
    }

    /// The fused windowed loader is **bit-identical** to the copying
    /// path it replaced (`Window::apply` → pack → permute → butterflies),
    /// for every window, with equal/unequal/empty stream lengths.
    #[test]
    fn fused_pair_load_is_bit_identical_to_copying_path() {
        use crate::window::Window;
        prop::check(
            |rng| {
                let lx = rng.gen_range(0usize..130);
                let ly = rng.gen_range(0usize..130);
                (
                    prop::vec_with(rng, lx..lx + 1, |r| r.gen_range(-1e3f64..1e3)),
                    prop::vec_with(rng, ly..ly + 1, |r| r.gen_range(-1e3f64..1e3)),
                    rng.gen_range(0u32..3),
                )
            },
            |(x, y, wsel)| {
                let window = [Window::Rectangular, Window::Hann, Window::Hamming][*wsel as usize];
                let (wx, wy) = (window.apply(x), window.apply(y));
                let (want_x, want_y) = fft_real_pair(&wx, &wy);
                let mut buf = Vec::new();
                fft_windowed_real_pair_into(
                    &mut buf,
                    x,
                    window.table(x.len()).as_ref().map(|t| t.as_slice()),
                    y,
                    window.table(y.len()).as_ref().map(|t| t.as_slice()),
                );
                let (mut mag_x, mut mag_y) = (Vec::new(), Vec::new());
                real_pair_magnitudes_into(&buf, &mut mag_x, &mut mag_y);
                let half = (buf.len() / 2 + 1).min(buf.len());
                prop_assert!(mag_x.len() == half && mag_y.len() == half);
                for (got, want) in mag_x
                    .iter()
                    .zip(&want_x[..half])
                    .chain(mag_y.iter().zip(&want_y[..half]))
                {
                    prop_assert!(
                        got.to_bits() == want.abs().to_bits(),
                        "{got} vs {}",
                        want.abs()
                    );
                }
                // Single-stream fused path against `Window::apply` →
                // `fft_real`, full-spectrum bits.
                let mut single = Vec::new();
                fft_windowed_real_into(
                    &mut single,
                    x,
                    window.table(x.len()).as_ref().map(|t| t.as_slice()),
                );
                for (got, want) in single.iter().zip(fft_real(&wx)) {
                    prop_assert!(got.re.to_bits() == want.re.to_bits());
                    prop_assert!(got.im.to_bits() == want.im.to_bits());
                }
                Ok(())
            },
        );
    }

    /// Recycled buffers carrying garbage from a previous (longer) job do
    /// not affect the fused transforms: the loaders overwrite every slot.
    #[test]
    fn fused_loaders_fully_overwrite_recycled_buffers() {
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.61).sin()).collect();
        let mut clean = Vec::new();
        fft_windowed_real_into(&mut clean, &x, None);
        let mut dirty = vec![Complex::new(f64::NAN, 1e300); 1024];
        fft_windowed_real_into(&mut dirty, &x, None);
        assert_eq!(dirty.len(), clean.len());
        for (a, b) in dirty.iter().zip(&clean) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    /// Linearity of the transform.
    #[test]
    fn linearity() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 16..17, |r| r.gen_range(-10f64..10.0)),
                    prop::vec_with(rng, 16..17, |r| r.gen_range(-10f64..10.0)),
                    rng.gen_range(-3f64..3.0),
                )
            },
            |(xs, ys, a)| {
                let a = *a;
                let sum: Vec<f64> = xs.iter().zip(ys).map(|(x, y)| a * x + y).collect();
                let fs = fft_real(&sum);
                let fx = fft_real(xs);
                let fy = fft_real(ys);
                for k in 0..fs.len() {
                    let want = fx[k].scale(a) + fy[k];
                    prop_assert!((fs[k] - want).abs() < 1e-8);
                }
                Ok(())
            },
        );
    }
}
