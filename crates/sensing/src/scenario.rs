//! Complete campaign generation reproducing the paper's experimental setup.

use crate::attack::{AttackerSpec, EvasionTactic, FabricationStrategy};
use crate::mobility::Walk;
use crate::poi::PoiMap;
use crate::user::MeasurementProfile;
use crate::world::WifiWorld;
use srtd_fingerprint::catalog::{standard_catalog, DeviceRole};
use srtd_fingerprint::noise::normal;
use srtd_fingerprint::{fingerprint_features, CaptureConfig, DeviceInstance};
use srtd_runtime::parallel::parallel_map;
use srtd_runtime::rng::SliceRandom;
use srtd_runtime::rng::StdRng;
use srtd_runtime::rng::{Rng, SeedableRng};
use srtd_truth::SensingData;

/// Window (seconds) over which participants start their walks. A real
/// campaign spreads volunteers over hours; trajectory-based grouping
/// relies on that spread to tell same-route users apart.
pub const CAMPAIGN_WINDOW_S: f64 = 7200.0;

/// Configuration of a generated campaign.
///
/// [`ScenarioConfig::paper_default`] reproduces §V-A: 10 Wi-Fi RSSI tasks,
/// 8 legitimate users with one account and one smartphone each, and 2
/// Sybil attackers with 5 accounts each — one Attack-I (single iPhone 6S)
/// and one Attack-II (iPhone SE + Nexus 6P). Activeness (Eq. 9) of both
/// populations is adjustable, which is exactly the sweep Figs. 6 and 7
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Number of sensing tasks `m`.
    pub num_tasks: usize,
    /// Number of legitimate users (one account, one device each).
    pub num_legit: usize,
    /// The Sybil attackers.
    pub attackers: Vec<AttackerSpec>,
    /// Activeness `α` of legitimate users.
    pub legit_activeness: f64,
    /// Activeness `α` of Sybil attackers.
    pub attacker_activeness: f64,
    /// Walking speed in m/s.
    pub walking_speed: f64,
    /// Fingerprint capture protocol.
    pub capture: CaptureConfig,
    /// RNG seed; every generated artifact is deterministic in it.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The paper's experimental setup (§V-A) at full activeness.
    pub fn paper_default() -> Self {
        Self {
            num_tasks: 10,
            num_legit: 8,
            attackers: vec![
                AttackerSpec::paper_attack_i(),
                AttackerSpec::paper_attack_ii(),
            ],
            legit_activeness: 1.0,
            attacker_activeness: 1.0,
            walking_speed: 1.4,
            capture: CaptureConfig::paper_default(),
            seed: 0,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces both activeness levels (the Fig. 6/7 sweep axes).
    ///
    /// # Panics
    ///
    /// Panics if either value is outside `(0, 1]`.
    pub fn with_activeness(mut self, legit: f64, attacker: f64) -> Self {
        assert!(
            legit > 0.0 && legit <= 1.0,
            "legit activeness must be in (0,1]"
        );
        assert!(
            attacker > 0.0 && attacker <= 1.0,
            "attacker activeness must be in (0,1]"
        );
        self.legit_activeness = legit;
        self.attacker_activeness = attacker;
        self
    }

    /// Replaces the attacker roster.
    pub fn with_attackers(mut self, attackers: Vec<AttackerSpec>) -> Self {
        self.attackers = attackers;
        self
    }

    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics if there are no tasks, no legitimate users, or an invalid
    /// attacker spec.
    pub fn validate(&self) {
        assert!(self.num_tasks > 0, "campaign needs at least one task");
        assert!(self.num_legit > 0, "campaign needs legitimate users");
        assert!(self.walking_speed > 0.0, "walking speed must be positive");
        for a in &self.attackers {
            a.validate();
        }
    }

    /// Tasks an account with activeness `alpha` performs:
    /// `max(2, round(α·m))` clamped to `m` (the paper requires at least two
    /// tasks per account).
    pub fn tasks_per_account(&self, alpha: f64) -> usize {
        let k = (alpha * self.num_tasks as f64).round() as usize;
        k.max(2.min(self.num_tasks)).min(self.num_tasks)
    }
}

/// A generated campaign with full ground truth for evaluation.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The report matrix handed to truth discovery.
    pub data: SensingData,
    /// Per-account 80-dimensional device fingerprint features.
    pub fingerprints: Vec<Vec<f64>>,
    /// Ground-truth value per task.
    pub ground_truth: Vec<f64>,
    /// True owner (physical user) of each account — the reference
    /// partition ARI scores grouping against.
    pub owners: Vec<usize>,
    /// Device instance index used by each account.
    pub devices: Vec<usize>,
    /// Whether each account belongs to a Sybil attacker.
    pub is_sybil: Vec<bool>,
    /// The device fleet (indexed by [`Scenario::devices`]).
    pub fleet: Vec<DeviceInstance>,
    /// The campus map.
    pub map: PoiMap,
}

impl Scenario {
    /// Generates a campaign from a configuration.
    ///
    /// Deterministic in `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ScenarioConfig::validate`]).
    pub fn generate(config: &ScenarioConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let map = PoiMap::campus(config.num_tasks, config.seed);
        let world = WifiWorld::generate(&map, config.seed);

        let (fleet, legit_pool, attack_i_pool, attack_ii_pool) =
            manufacture_fleet(config, &mut rng);

        let mut data = SensingData::new(config.num_tasks);
        // Captures are drawn inline (they consume the scenario RNG) but
        // feature extraction is pure, so it is deferred and fanned out over
        // the runtime's scoped threads once all accounts exist.
        let mut captures = Vec::new();
        let mut owners = Vec::new();
        let mut devices = Vec::new();
        let mut is_sybil = Vec::new();
        let mut next_account = 0usize;

        // Legitimate users: one account, one device, one walk each.
        let mut legit_iter = legit_pool.into_iter();
        for user in 0..config.num_legit {
            let device = legit_iter
                .next()
                .expect("fleet sized to cover all legitimate users");
            let profile = MeasurementProfile::sample(&mut rng);
            let k = config.tasks_per_account(config.legit_activeness);
            let tasks = choose_tasks(config.num_tasks, k, &mut rng);
            let start = rng.gen_range(0.0..CAMPAIGN_WINDOW_S);
            // Legit users visit in their own preferred (shuffled) order.
            let walk = Walk::plan_in_order(&map, &tasks, start, config.walking_speed, &mut rng);
            for visit in walk.visits() {
                let value = world.measure(visit.task, &profile, &mut rng);
                let submit = visit.arrival + rng.gen_range(5.0..40.0);
                data.add_report(next_account, visit.task, value, submit);
            }
            captures.push(fleet[device].capture(&config.capture, &mut rng));
            owners.push(user);
            devices.push(device);
            is_sybil.push(false);
            next_account += 1;
        }

        // Sybil attackers: one physical walk; every account reports each
        // visited POI back to back (the Table III timestamp pattern).
        let mut a1 = attack_i_pool.into_iter();
        let mut a2 = attack_ii_pool.into_iter();
        for (a_idx, spec) in config.attackers.iter().enumerate() {
            let owner = config.num_legit + a_idx;
            let device_ids: Vec<usize> = match spec.attack_type {
                crate::attack::AttackType::SingleDevice => {
                    vec![a1.next().expect("fleet covers Attack-I attackers")]
                }
                crate::attack::AttackType::MultiDevice { devices } => (0..devices)
                    .map(|_| a2.next().expect("fleet covers Attack-II attackers"))
                    .collect(),
            };
            let profile = MeasurementProfile::sample(&mut rng);
            let k = config.tasks_per_account(config.attacker_activeness);
            let tasks = choose_tasks(config.num_tasks, k, &mut rng);
            let start = rng.gen_range(0.0..CAMPAIGN_WINDOW_S);
            // The attacker walks once, in its own preferred order; all of
            // its accounts will replay this one walk.
            let walk = Walk::plan_in_order(&map, &tasks, start, config.walking_speed, &mut rng);

            let account_base = next_account;
            for j in 0..spec.accounts {
                let device = device_ids[j % device_ids.len()];
                captures.push(fleet[device].capture(&config.capture, &mut rng));
                owners.push(owner);
                devices.push(device);
                is_sybil.push(true);
                next_account += 1;
            }
            let claim = |honest: f64, rng: &mut StdRng| match spec.strategy {
                FabricationStrategy::Fabricate { value, jitter_std } => {
                    value + normal(rng, 0.0, jitter_std)
                }
                FabricationStrategy::DuplicateMeasurement { jitter_std } => {
                    honest + normal(rng, 0.0, jitter_std)
                }
                FabricationStrategy::Offset { delta, jitter_std } => {
                    honest + delta + normal(rng, 0.0, jitter_std)
                }
            };
            match spec.evasion {
                EvasionTactic::None => {
                    for visit in walk.visits() {
                        let honest = world.measure(visit.task, &profile, &mut rng);
                        // Account switching takes time: submissions are
                        // sequential with tens of seconds between them.
                        let mut offset = rng.gen_range(5.0..20.0);
                        for j in 0..spec.accounts {
                            let value = claim(honest, &mut rng);
                            data.add_report(
                                account_base + j,
                                visit.task,
                                value,
                                visit.arrival + offset,
                            );
                            offset += rng.gen_range(20.0..55.0);
                        }
                    }
                }
                EvasionTactic::PerAccountWalks => {
                    // The attacker physically re-walks the task set once
                    // per account: trajectories become independent.
                    for j in 0..spec.accounts {
                        let mut order = tasks.clone();
                        order.shuffle(&mut rng);
                        let start_j = rng.gen_range(0.0..CAMPAIGN_WINDOW_S);
                        let walk_j = Walk::plan_in_order(
                            &map,
                            &order,
                            start_j,
                            config.walking_speed,
                            &mut rng,
                        );
                        for visit in walk_j.visits() {
                            let honest = world.measure(visit.task, &profile, &mut rng);
                            let value = claim(honest, &mut rng);
                            let submit = visit.arrival + rng.gen_range(5.0..40.0);
                            data.add_report(account_base + j, visit.task, value, submit);
                        }
                    }
                }
                EvasionTactic::SubsetTasks { fraction } => {
                    // One walk, but each account reports only a random
                    // subset of the visited tasks, diversifying task sets.
                    let per_account = ((fraction * walk.visits().len() as f64).ceil() as usize)
                        .clamp(1, walk.visits().len());
                    for visit in walk.visits() {
                        let honest = world.measure(visit.task, &profile, &mut rng);
                        let mut offset = rng.gen_range(5.0..20.0);
                        let mut reporters: Vec<usize> = (0..spec.accounts).collect();
                        reporters.shuffle(&mut rng);
                        // Keep expected per-account coverage at `fraction`.
                        let quota = (spec.accounts as f64 * per_account as f64
                            / walk.visits().len() as f64)
                            .round()
                            .clamp(1.0, spec.accounts as f64)
                            as usize;
                        for &j in reporters.iter().take(quota) {
                            let value = claim(honest, &mut rng);
                            data.add_report(
                                account_base + j,
                                visit.task,
                                value,
                                visit.arrival + offset,
                            );
                            offset += rng.gen_range(20.0..55.0);
                        }
                    }
                }
            }
        }

        // Per-account fingerprint feature extraction (FFTs over ~600-sample
        // streams) is the heaviest pure stage of generation; parallelize it.
        let fingerprints = parallel_map(&captures, fingerprint_features);

        Self {
            data,
            fingerprints,
            ground_truth: world.ground_truths().to_vec(),
            owners,
            devices,
            is_sybil,
            fleet,
            map,
        }
    }

    /// Number of accounts in the campaign.
    pub fn num_accounts(&self) -> usize {
        self.owners.len()
    }

    /// The account→device labeling (ground truth for evaluating AG-FP as a
    /// *device* grouper).
    pub fn device_labels(&self) -> &[usize] {
        &self.devices
    }

    /// The account→owner labeling (ground truth for ARI in Figs. 6/7).
    pub fn owner_labels(&self) -> &[usize] {
        &self.owners
    }
}

/// Manufactures the device fleet and splits it into role pools.
///
/// Follows Table IV for the paper-scale setup and extends it by cycling
/// through the catalog for larger configurations.
fn manufacture_fleet(
    config: &ScenarioConfig,
    rng: &mut StdRng,
) -> (Vec<DeviceInstance>, Vec<usize>, Vec<usize>, Vec<usize>) {
    let catalog = standard_catalog();
    let mut fleet = Vec::new();
    let mut legit_pool = Vec::new();
    let mut attack_i_pool = Vec::new();
    let mut attack_ii_pool = Vec::new();
    for entry in &catalog {
        for unit in 0..entry.quantity {
            let idx = fleet.len();
            fleet.push(entry.model.manufacture(rng));
            // Only the first unit of an attack-role model attacks; spare
            // units (e.g. the second iPhone 6S, Nexus 6P #2/#3) are carried
            // by legitimate users, matching Table IV quantities.
            match (entry.role, unit) {
                (DeviceRole::AttackI, 0) => attack_i_pool.push(idx),
                (DeviceRole::AttackII, 0) => attack_ii_pool.push(idx),
                _ => legit_pool.push(idx),
            }
        }
    }
    // Demand beyond Table IV: manufacture extra units round-robin.
    let need_legit = config.num_legit;
    let need_a1 = config
        .attackers
        .iter()
        .filter(|a| matches!(a.attack_type, crate::attack::AttackType::SingleDevice))
        .count();
    let need_a2: usize = config
        .attackers
        .iter()
        .map(|a| match a.attack_type {
            crate::attack::AttackType::MultiDevice { devices } => devices,
            _ => 0,
        })
        .sum();
    let mut model_cycle = 0usize;
    let mut extend = |pool: &mut Vec<usize>, need: usize, fleet: &mut Vec<DeviceInstance>| {
        while pool.len() < need {
            let entry = &catalog[model_cycle % catalog.len()];
            model_cycle += 1;
            pool.push(fleet.len());
            fleet.push(entry.model.manufacture(rng));
        }
    };
    extend(&mut legit_pool, need_legit, &mut fleet);
    extend(&mut attack_i_pool, need_a1, &mut fleet);
    extend(&mut attack_ii_pool, need_a2, &mut fleet);
    (fleet, legit_pool, attack_i_pool, attack_ii_pool)
}

/// Chooses `k` distinct tasks uniformly, in random visiting order.
fn choose_tasks(num_tasks: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut all: Vec<usize> = (0..num_tasks).collect();
    all.shuffle(rng);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_scenario(seed: u64) -> Scenario {
        Scenario::generate(&ScenarioConfig::paper_default().with_seed(seed))
    }

    #[test]
    fn paper_shape_is_reproduced() {
        let s = paper_scenario(1);
        assert_eq!(s.data.num_tasks(), 10);
        assert_eq!(s.num_accounts(), 18);
        assert_eq!(s.fleet.len(), 11); // Table IV
        assert_eq!(s.fingerprints.len(), 18);
        assert!(s.fingerprints.iter().all(|f| f.len() == 80));
        assert_eq!(s.is_sybil.iter().filter(|&&x| x).count(), 10);
        // Owners: 8 legit users + 2 attackers = 10 physical users.
        let max_owner = *s.owners.iter().max().unwrap();
        assert_eq!(max_owner, 9);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = paper_scenario(5);
        let b = paper_scenario(5);
        assert_eq!(a.data, b.data);
        assert_eq!(a.fingerprints, b.fingerprints);
        let c = paper_scenario(6);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn sybil_accounts_share_their_attacker_task_set() {
        let s = paper_scenario(2);
        for owner in [8usize, 9] {
            let accounts: Vec<usize> = (0..s.num_accounts())
                .filter(|&a| s.owners[a] == owner)
                .collect();
            assert_eq!(accounts.len(), 5);
            let reference = s.data.tasks_of(accounts[0]);
            for &a in &accounts[1..] {
                assert_eq!(s.data.tasks_of(a), reference);
            }
        }
    }

    #[test]
    fn sybil_timestamps_are_sequential_at_each_task() {
        let s = paper_scenario(3);
        let accounts: Vec<usize> = (0..s.num_accounts())
            .filter(|&a| s.owners[a] == 8)
            .collect();
        for &task in &s.data.tasks_of(accounts[0]) {
            let mut times: Vec<f64> = accounts
                .iter()
                .flat_map(|&a| {
                    s.data
                        .account_reports(a)
                        .filter(|r| r.task == task)
                        .map(|r| r.timestamp)
                })
                .collect();
            times.sort_by(f64::total_cmp);
            assert_eq!(times.len(), 5);
            for w in times.windows(2) {
                let gap = w[1] - w[0];
                assert!((15.0..=70.0).contains(&gap), "gap {gap}");
            }
        }
    }

    #[test]
    fn fabricated_values_sit_near_minus_50() {
        let s = paper_scenario(4);
        for (a, &sybil) in s.is_sybil.iter().enumerate() {
            for r in s.data.account_reports(a) {
                if sybil {
                    assert!((r.value + 50.0).abs() < 2.0, "sybil claim {}", r.value);
                } else {
                    let truth = s.ground_truth[r.task];
                    assert!((r.value - truth).abs() < 15.0, "legit claim {}", r.value);
                }
            }
        }
    }

    #[test]
    fn attack_ii_accounts_span_two_devices() {
        let s = paper_scenario(7);
        let devices: std::collections::HashSet<usize> = (0..s.num_accounts())
            .filter(|&a| s.owners[a] == 9)
            .map(|a| s.devices[a])
            .collect();
        assert_eq!(devices.len(), 2);
        // And Attack-I stays on one device.
        let devices_a1: std::collections::HashSet<usize> = (0..s.num_accounts())
            .filter(|&a| s.owners[a] == 8)
            .map(|a| s.devices[a])
            .collect();
        assert_eq!(devices_a1.len(), 1);
    }

    #[test]
    fn activeness_controls_task_counts() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(8)
            .with_activeness(0.2, 0.5);
        let s = Scenario::generate(&cfg);
        for a in 0..s.num_accounts() {
            let k = s.data.tasks_of(a).len();
            if s.is_sybil[a] {
                assert_eq!(k, 5, "attacker accounts at α=0.5 over 10 tasks");
            } else {
                assert_eq!(k, 2, "legit accounts at α=0.2 over 10 tasks");
            }
        }
    }

    #[test]
    fn larger_than_table_iv_configs_extend_the_fleet() {
        let cfg = ScenarioConfig {
            num_legit: 20,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(9);
        let s = Scenario::generate(&cfg);
        assert_eq!(s.num_accounts(), 30);
        assert!(s.fleet.len() >= 23);
    }

    #[test]
    fn per_account_walks_diversify_trajectories() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(21)
            .with_attackers(vec![
                AttackerSpec::paper_attack_i().with_evasion(EvasionTactic::PerAccountWalks)
            ]);
        let s = Scenario::generate(&cfg);
        let accounts: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
        assert_eq!(accounts.len(), 5);
        // Task sets still coincide (same attacker task set)...
        let reference = s.data.tasks_of(accounts[0]);
        for &a in &accounts[1..] {
            assert_eq!(s.data.tasks_of(a), reference);
        }
        // ...but first-submission times are spread far beyond the ~55 s
        // account-switching gaps of the no-evasion attacker.
        let mut first_times: Vec<f64> = accounts
            .iter()
            .map(|&a| {
                s.data
                    .account_reports(a)
                    .map(|r| r.timestamp)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        first_times.sort_by(f64::total_cmp);
        let spread = first_times.last().unwrap() - first_times.first().unwrap();
        assert!(spread > 300.0, "walks not spread: {spread}");
    }

    #[test]
    fn subset_tasks_diversify_task_sets() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(22)
            .with_attackers(vec![AttackerSpec::paper_attack_ii()
                .with_evasion(EvasionTactic::SubsetTasks { fraction: 0.5 })]);
        let s = Scenario::generate(&cfg);
        let accounts: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
        // Accounts no longer share identical task sets.
        let sets: std::collections::HashSet<Vec<usize>> =
            accounts.iter().map(|&a| s.data.tasks_of(a)).collect();
        assert!(sets.len() > 1, "subset evasion produced identical sets");
        // And the attack is diluted: fewer than 5 reports per task.
        for t in 0..s.data.num_tasks() {
            let sybil_reports = s
                .data
                .task_reports(t)
                .filter(|r| s.is_sybil[r.account])
                .count();
            assert!(
                sybil_reports <= 4,
                "task {t} has {sybil_reports} sybil reports"
            );
        }
    }

    #[test]
    fn offset_strategy_shifts_by_delta() {
        let cfg = ScenarioConfig::paper_default()
            .with_seed(23)
            .with_attackers(vec![AttackerSpec::paper_attack_i().with_strategy(
                FabricationStrategy::Offset {
                    delta: -8.0,
                    jitter_std: 0.1,
                },
            )]);
        let s = Scenario::generate(&cfg);
        for (a, &sybil) in s.is_sybil.iter().enumerate() {
            if !sybil {
                continue;
            }
            for r in s.data.account_reports(a) {
                let shift = r.value - s.ground_truth[r.task];
                // Honest measurement noise (attacker profile) + delta.
                assert!(
                    (-8.0 - 9.0..=-8.0 + 9.0).contains(&shift),
                    "offset claim drifted: {shift}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "legit activeness")]
    fn zero_activeness_rejected() {
        ScenarioConfig::paper_default().with_activeness(0.0, 1.0);
    }
}
