//! The process-wide telemetry store behind the `obs` entry points.

use super::history::WindowRecord;
use crate::json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, OnceLock};

/// Histogram bucket upper bounds: 1–2–5 per decade from 1 to 5·10⁹.
/// Values above the last bound land in the overflow bucket.
pub(crate) const BUCKET_BOUNDS: [f64; 30] = [
    1.0, 2.0, 5.0, 1e1, 2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6,
    2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9, 2e9, 5e9,
];

/// A fixed-bucket histogram (see [`BUCKET_BOUNDS`]).
#[derive(Debug, Clone)]
pub(crate) struct Histogram {
    /// One count per bound, plus one overflow slot at the end.
    pub(crate) buckets: [u64; BUCKET_BOUNDS.len() + 1],
    pub(crate) count: u64,
    pub(crate) sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }
}

impl Histogram {
    pub(crate) fn record(&mut self, value: f64) {
        let slot = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum += value;
    }
}

/// Aggregated wall-clock statistics of one span name.
#[derive(Debug, Clone, Default)]
pub(crate) struct SpanStats {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
    pub(crate) min_ns: u64,
    pub(crate) max_ns: u64,
}

impl SpanStats {
    pub(crate) fn record(&mut self, elapsed_ns: u64) {
        if self.count == 0 || elapsed_ns < self.min_ns {
            self.min_ns = elapsed_ns;
        }
        if elapsed_ns > self.max_ns {
            self.max_ns = elapsed_ns;
        }
        self.count += 1;
        self.total_ns += elapsed_ns;
    }
}

/// One structured event record.
#[derive(Debug, Clone)]
pub(crate) struct Event {
    pub(crate) name: String,
    pub(crate) fields: Vec<(String, Json)>,
}

/// One node of a trace tree while its window is still open. Children are
/// keyed (and therefore exported) by name, so the structure depends only
/// on which stages ran — never on emission interleaving.
#[derive(Debug, Default)]
pub(crate) struct TraceBuild {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
    pub(crate) children: BTreeMap<&'static str, TraceBuild>,
}

/// The currently-open telemetry window: trace collection is scoped to the
/// thread that opened it (worker-thread spans stay out of the tree, which
/// is what keeps node structure and counts worker-count-independent).
#[derive(Debug)]
pub(crate) struct OpenWindow {
    pub(crate) opener: std::thread::ThreadId,
    /// Root container; its children are the window's top-level stages.
    pub(crate) trace: TraceBuild,
}

/// Window bookkeeping: the baseline the next delta is computed against
/// (the registry state at the previous `window_end`, or empty after a
/// reset), the open window if any, and the bounded ring of completed
/// windows.
#[derive(Debug, Default)]
pub(crate) struct WindowState {
    pub(crate) base_counters: BTreeMap<String, u64>,
    pub(crate) base_histograms: BTreeMap<String, Histogram>,
    pub(crate) base_events: usize,
    pub(crate) open: Option<OpenWindow>,
    pub(crate) history: VecDeque<WindowRecord>,
    /// Windows completed so far; doubles as the 1-based window index.
    pub(crate) ended: u64,
}

/// Everything collected so far. `BTreeMap` keys give the exports a
/// deterministic (sorted) order regardless of emission interleaving.
#[derive(Debug, Default)]
pub(crate) struct Store {
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) histograms: BTreeMap<String, Histogram>,
    pub(crate) spans: BTreeMap<&'static str, SpanStats>,
    pub(crate) events: Vec<Event>,
    pub(crate) window: WindowState,
}

static STORE: OnceLock<Mutex<Store>> = OnceLock::new();

/// Runs `f` with the store locked.
pub(crate) fn with<R>(f: impl FnOnce(&mut Store) -> R) -> R {
    let mut guard = STORE
        .get_or_init(|| Mutex::new(Store::default()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    f(&mut guard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_decades_and_overflow() {
        let mut h = Histogram::default();
        h.record(0.5); // <= 1 -> bucket 0
        h.record(1.0); // boundary inclusive -> bucket 0
        h.record(3.0); // bucket for bound 5
        h.record(1e12); // overflow
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[BUCKET_BOUNDS.len()], 1);
    }

    #[test]
    fn span_stats_track_min_max_total() {
        let mut s = SpanStats::default();
        s.record(10);
        s.record(4);
        s.record(7);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 21);
        assert_eq!(s.min_ns, 4);
        assert_eq!(s.max_ns, 10);
    }
}
