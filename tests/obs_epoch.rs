//! Golden export for the epoch-loop counters: a full ingest → fold →
//! discover → publish cycle must surface the `server.epoch.*` counters
//! and the `server.epoch` span, and their deterministic JSON export must
//! be byte-identical across worker-thread counts.
//!
//! This file holds a single test on purpose: the obs registry is
//! process-wide, and a second concurrently running test would bleed
//! metrics into the snapshot.

use sybil_td::core::{SingletonGrouping, SybilResistantTd};
use sybil_td::platform::{EpochConfig, EpochEngine};
use sybil_td::runtime::obs;
use sybil_td::runtime::parallel::set_max_threads;

const TASKS: usize = 8;

/// One full lifecycle: 20 accepted reports, one rejected duplicate, two
/// epochs (cold, then steady-state warm).
fn run_lifecycle() -> EpochEngine<SingletonGrouping> {
    let mut engine = EpochEngine::new(
        SybilResistantTd::new(SingletonGrouping),
        TASKS,
        EpochConfig::default(),
    );
    for a in 0..5usize {
        for t in 0..4usize {
            engine
                .ingest(a, t, -70.0 + a as f64 + t as f64, (a * 10 + t) as f64)
                .expect("valid report");
        }
    }
    engine
        .ingest(0, 0, -99.0, 50.0)
        .expect_err("duplicate must be rejected");
    engine.run_epoch();
    engine.run_epoch();
    engine
}

fn counter(report: &obs::Report, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn epoch_counters_export_deterministically_and_track_the_lifecycle() {
    let mut exports = Vec::new();
    let mut reports = Vec::new();
    let mut engines = Vec::new();
    for threads in [1usize, 4] {
        set_max_threads(threads);
        obs::set_enabled(true);
        obs::reset();
        let engine = run_lifecycle();
        let report = obs::snapshot();
        obs::set_enabled(false);
        exports.push(report.deterministic_json());
        reports.push(report);
        engines.push(engine);
    }
    set_max_threads(0);
    assert_eq!(
        exports[0], exports[1],
        "deterministic export must not depend on the worker count"
    );

    // The counters mirror the lifecycle exactly: 20 accepted ingests, all
    // 20 folded in epoch 1 (epoch 2 folds nothing), one snapshot swap per
    // epoch, and at least one Algorithm 2 iteration per epoch.
    let report = &reports[0];
    assert_eq!(counter(report, "server.epoch.ingested"), 20);
    assert_eq!(counter(report, "server.epoch.folded"), 20);
    assert_eq!(counter(report, "server.epoch.snapshot_swaps"), 2);
    assert!(counter(report, "server.epoch.iterations") >= 2);
    for name in [
        "server.epoch.ingested",
        "server.epoch.folded",
        "server.epoch.iterations",
        "server.epoch.snapshot_swaps",
    ] {
        assert!(
            exports[0].contains(name),
            "deterministic export must name `{name}`"
        );
    }
    assert!(
        exports[0].contains("server.epoch"),
        "deterministic export must carry the epoch span"
    );

    // The engines themselves ended in the published steady state: the
    // second epoch warm-started on unchanged data.
    for engine in &engines {
        let snap = engine.latest();
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.num_reports, 20);
        assert!(snap.warm_started, "steady-state epoch must warm-start");
        assert!(snap.iterations <= 2);
        assert_eq!(engine.rejected_reports(), 1);
    }
}
