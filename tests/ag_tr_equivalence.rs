//! Pruned vs full AG-TR equivalence: the pruned pairwise path must give
//! byte-identical groupings (same connected components, same audit
//! report) to the full-matrix path, on paper-scale campaigns and on a
//! 202-group synthetic campaign, at 1 and 4 worker threads.
//!
//! This is the contract that makes the pruning engine safe to enable by
//! default: only the `D_ij < φ` decision feeds the grouping, so a pair
//! may be reported as `∞` without its exact distance — but never
//! misclassified.

use sybil_td::core::{AccountGrouping, AgTr};
use sybil_td::platform::{Platform, PlatformConfig};
use sybil_td::runtime::parallel::set_max_threads;
use sybil_td::runtime::rng::{Rng, SeedableRng, StdRng};
use sybil_td::sensing::{Scenario, ScenarioConfig};
use sybil_td::truth::SensingData;

/// A 202-true-group synthetic campaign: 200 legitimate accounts with
/// random trajectories plus 2 Sybil attackers whose 10 accounts each
/// replay one physical walk with small per-account timestamp offsets —
/// so the pruned path has genuine merges to preserve, not just
/// singletons.
fn campaign_202_groups(seed: u64) -> SensingData {
    const LEGIT: usize = 200;
    const ATTACKERS: usize = 2;
    const SYBILS: usize = 10;
    const TASKS: usize = 100;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = SensingData::new(TASKS);
    for a in 0..LEGIT {
        for t in 0..TASKS {
            if rng.gen_range(0f64..1.0) < 0.25 {
                data.add_report(a, t, -70.0 + rng.gen_range(-5f64..5.0), t as f64 * 30.0);
            }
        }
    }
    for attacker in 0..ATTACKERS {
        // One walk per attacker...
        let mut walk: Vec<(usize, f64)> = Vec::new();
        for t in 0..TASKS {
            if rng.gen_range(0f64..1.0) < 0.25 {
                walk.push((t, t as f64 * 30.0 + rng.gen_range(0f64..5.0)));
            }
        }
        // ...replayed by each of its accounts a few seconds apart.
        for s in 0..SYBILS {
            let account = LEGIT + attacker * SYBILS + s;
            for &(t, ts) in &walk {
                data.add_report(account, t, -50.0, ts + s as f64 * 2.0);
            }
        }
    }
    data
}

/// Asserts the two paths agree on `data`: identical components and, for
/// entries the pruned path kept, bit-identical distances (pruned entries
/// must genuinely lie at or above φ).
fn assert_equivalent(data: &SensingData) {
    let pruned = AgTr::default();
    let full = AgTr::default().with_pruning(false);
    for threads in [1usize, 4] {
        set_max_threads(threads);
        let gp = pruned.group(data, &[]);
        let gf = full.group(data, &[]);
        assert_eq!(
            gp.groups(),
            gf.groups(),
            "groupings diverged at {threads} thread(s)"
        );
        assert_eq!(gp.labels(), gf.labels());
    }
    set_max_threads(0);
    let mp = pruned.dissimilarity_matrix(data);
    let mf = full.dissimilarity_matrix(data);
    let phi = pruned.phi();
    for (i, row) in mp.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            if v.is_finite() {
                assert_eq!(
                    v.to_bits(),
                    mf[i][j].to_bits(),
                    "kept entry ({i},{j}) drifted"
                );
            } else if i != j && mf[i][j].is_finite() {
                assert!(mf[i][j] >= phi, "pruned a below-φ pair ({i},{j})");
            }
        }
    }
}

#[test]
fn paper_scale_campaigns_group_identically() {
    for seed in [0, 3, 17] {
        let scenario = Scenario::generate(&ScenarioConfig::paper_default().with_seed(seed));
        assert_equivalent(&scenario.data);
    }
}

#[test]
fn paper_scale_sparse_activeness_groups_identically() {
    let scenario = Scenario::generate(
        &ScenarioConfig::paper_default()
            .with_activeness(0.4, 0.7)
            .with_seed(11),
    );
    assert_equivalent(&scenario.data);
}

#[test]
fn synthetic_202_group_campaign_groups_identically() {
    let data = campaign_202_groups(42);
    // Sanity: the campaign really contains merges for pruning to preserve
    // (each attacker's replayed walk forms one multi-account component).
    let grouping = AgTr::default().group(&data, &[]);
    assert!(
        grouping.len() <= 202,
        "expected sybil merges, got {} groups",
        grouping.len()
    );
    assert!(
        grouping.groups().iter().any(|g| g.len() >= 10),
        "each attacker's accounts should form one component"
    );
    assert_equivalent(&data);
}

#[test]
fn audit_reports_match_between_pruned_and_full_paths() {
    let scenario = Scenario::generate(&ScenarioConfig::paper_default().with_seed(5));
    let mut platform = Platform::new(PlatformConfig::default());
    platform.publish_tasks(scenario.data.num_tasks());
    let max_ts = scenario
        .data
        .reports()
        .iter()
        .map(|r| r.timestamp)
        .fold(0.0, f64::max);
    platform.advance_clock(max_ts + 1.0);
    let mut ids = Vec::new();
    for fp in &scenario.fingerprints {
        ids.push(platform.enroll(fp.clone(), 0.0).expect("enroll"));
    }
    for (account, &id) in ids.iter().enumerate() {
        for r in scenario.data.trajectory_of(account) {
            platform
                .submit(id, r.task, r.value, r.timestamp)
                .expect("submit");
        }
    }
    let report_pruned = platform.audit(&AgTr::default(), 2);
    let report_full = platform.audit(&AgTr::default().with_pruning(false), 2);
    assert_eq!(report_pruned, report_full);
}
