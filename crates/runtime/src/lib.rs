//! Std-only runtime substrate for the Sybil-resistant truth discovery
//! workspace.
//!
//! Every crate in the workspace builds offline against the standard
//! library alone; this crate owns the pieces that would otherwise come
//! from the crates.io ecosystem:
//!
//! * [`rng`] — a deterministic, seedable PRNG (SplitMix64 seeding feeding
//!   a xoshiro256++ core) with the uniform/normal/shuffle/choice surface
//!   the simulators and clustering code need,
//! * [`parallel`] — deterministic data parallelism (order-preserving
//!   `parallel_map` over contiguous chunks) used by the hot paths: DTW
//!   pairwise dissimilarity matrices, k-means assignment and per-account
//!   fingerprint feature extraction,
//! * [`pool`] — the persistent worker pool behind [`parallel`]: parked
//!   `Mutex`+`Condvar` workers woken per batch, replacing the
//!   spawn-per-call `std::thread::scope` tax (the scoped path remains as
//!   fallback and test oracle),
//! * [`prop`] — a minimal deterministic property-test harness (seeded
//!   generator loop with failure-case reporting) plus the
//!   [`prop_assert!`]/[`prop_assert_eq!`] macros the test suites use,
//! * [`bench`] — a tiny wall-clock benchmark harness (warmup + median of
//!   N samples) backing the `crates/bench` binaries,
//! * [`json`] — a hand-rolled JSON encoder ([`json::ToJson`]) and strict
//!   parser ([`json::parse`]) for the simulation artifacts that
//!   previously derived `serde::Serialize`,
//! * [`obs`] — a zero-cost-when-disabled observability layer (counters,
//!   gauges, histograms, RAII timing spans, structured events) that the
//!   whole SRTD pipeline reports into, gated by `SRTD_OBS=1` and exported
//!   via `SRTD_OBS_JSON=<path>`.
//!
//! Determinism is a design constraint throughout: the PRNG stream depends
//! only on its seed, and every parallel operation returns results in
//! input order, so framework outputs are byte-identical across runs and
//! across worker-thread counts.

// Unsafe is denied, not forbidden: `pool` carries the crate's single
// audited exception (one lifetime transmute behind a completion barrier;
// see its module docs). Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod obs;
pub mod parallel;
pub mod pool;
pub mod prop;
pub mod rng;
