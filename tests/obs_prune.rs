//! Golden export for the DTW pruning counters: one pruned AG-TR run must
//! surface the `timeseries.dtw.*` cascade counters, their deterministic
//! JSON export must be byte-identical across worker-thread counts, the
//! prune rate must be positive on a φ-sparse campaign, and exactly zero
//! when the cutoff is ∞.
//!
//! This file holds a single test on purpose: the obs registry is
//! process-wide, and a second concurrently running test would bleed
//! metrics into the snapshot.

use sybil_td::core::AgTr;
use sybil_td::runtime::obs;
use sybil_td::runtime::parallel::set_max_threads;
use sybil_td::timeseries::PrunedPairwise;
use sybil_td::truth::SensingData;

/// 40 accounts (780 pairs — past the engine's sequential gate) spread far
/// apart in both task index and time, so `φ = 1` prunes heavily.
fn sparse_campaign() -> SensingData {
    let mut data = SensingData::new(200);
    for a in 0..40usize {
        for k in 0..5usize {
            let t = (a * 5 + k) % 200;
            data.add_report(a, t, -60.0, (a * 900 + k * 60) as f64);
        }
    }
    data
}

fn counter(report: &obs::Report, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn pruning_counters_export_deterministically_and_track_the_cascade() {
    let data = sparse_campaign();
    let ag = AgTr::default();

    // Reference stats from the engine itself (outside instrumentation).
    let trajectories = ag.trajectories(&data);
    let (_, stats) = PrunedPairwise::new(ag.phi()).matrix2_with_stats(&trajectories);
    assert_eq!(stats.pairs, 40 * 39 / 2);

    // One instrumented pruned run per thread count; the deterministic
    // export (counters, histograms, events — no wall-clock) must be
    // byte-identical, and this is the golden shape downstream tooling
    // parses.
    let mut exports = Vec::new();
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        set_max_threads(threads);
        obs::set_enabled(true);
        obs::reset();
        let _ = ag.dissimilarity_matrix(&data);
        let report = obs::snapshot();
        obs::set_enabled(false);
        exports.push(report.deterministic_json());
        reports.push(report);
    }
    set_max_threads(0);
    assert_eq!(
        exports[0], exports[1],
        "deterministic export must not depend on the worker count"
    );

    // The exported counters mirror the engine's own stats exactly.
    let report = &reports[0];
    assert_eq!(
        counter(report, "timeseries.dtw.lb_kim_pruned"),
        stats.lb_kim_pruned
    );
    assert_eq!(
        counter(report, "timeseries.dtw.lb_keogh_pruned"),
        stats.lb_keogh_pruned
    );
    assert_eq!(
        counter(report, "timeseries.dtw.pair_early_abandoned"),
        stats.early_abandoned
    );
    assert_eq!(
        counter(report, "timeseries.dtw.full_evals"),
        stats.full_evals
    );
    for name in [
        "timeseries.dtw.lb_kim_pruned",
        "timeseries.dtw.lb_keogh_pruned",
        "timeseries.dtw.pair_early_abandoned",
        "timeseries.dtw.full_evals",
    ] {
        assert!(
            exports[0].contains(name),
            "deterministic export must name `{name}`"
        );
    }

    // φ-sparse campaign: the cascade must actually fire, and the four
    // outcomes partition the pair set.
    assert!(stats.lb_kim_pruned > 0, "{stats:?}");
    assert!(stats.prune_rate() > 0.0);
    assert_eq!(
        stats.pairs,
        stats.lb_kim_pruned + stats.lb_keogh_pruned + stats.early_abandoned + stats.full_evals
    );

    // φ = ∞ disables pruning: every pair runs the full dynamic program.
    let (_, unpruned) = PrunedPairwise::new(f64::INFINITY).matrix2_with_stats(&trajectories);
    assert_eq!(unpruned.lb_kim_pruned, 0);
    assert_eq!(unpruned.lb_keogh_pruned, 0);
    assert_eq!(unpruned.early_abandoned, 0);
    assert_eq!(unpruned.full_evals, unpruned.pairs);
    assert_eq!(unpruned.prune_rate(), 0.0);
}
