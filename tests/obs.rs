//! Observability over the full pipeline: one instrumented SRTD run must
//! produce spans covering feature extraction, clustering/DTW, grouping
//! and the iterative truth discovery loop, and the report must round-trip
//! through the runtime's JSON parser.
//!
//! This file holds a single test on purpose: the obs registry is
//! process-wide, and a second concurrently running test would bleed
//! metrics into the snapshot.

use sybil_td::core::{AgFp, AgTr, SybilResistantTd};
use sybil_td::platform::{Platform, PlatformConfig};
use sybil_td::runtime::json::{parse, Json, ToJson};
use sybil_td::runtime::obs;
use sybil_td::sensing::{Scenario, ScenarioConfig};

#[test]
fn instrumented_pipeline_covers_every_stage_and_exports_valid_json() {
    obs::set_enabled(true);
    obs::reset();

    // A full campaign: fingerprinted accounts, Sybil attacker included.
    let scenario = Scenario::generate(&ScenarioConfig::paper_default().with_seed(3));

    // TD-FP exercises extraction-side clustering (standardize → elbow →
    // k-means); TD-TR exercises the DTW pairwise matrix.
    let fp_result =
        SybilResistantTd::new(AgFp::default()).discover(&scenario.data, &scenario.fingerprints);
    let tr_result =
        SybilResistantTd::new(AgTr::default()).discover(&scenario.data, &scenario.fingerprints);
    assert!(fp_result.iterations > 0 && tr_result.iterations > 0);
    assert_eq!(
        fp_result.convergence_trace.len(),
        fp_result.iterations,
        "one delta per iteration"
    );

    // The platform audit layer on top: enroll every account, replay the
    // campaign's reports, audit with AG-TR.
    let mut platform = Platform::new(PlatformConfig::default());
    platform.publish_tasks(scenario.data.num_tasks());
    let max_ts = scenario
        .data
        .reports()
        .iter()
        .map(|r| r.timestamp)
        .fold(0.0, f64::max);
    platform.advance_clock(max_ts + 1.0);
    let mut ids = Vec::new();
    for fp in &scenario.fingerprints {
        ids.push(platform.enroll(fp.clone(), 0.0).expect("enroll"));
    }
    for (account, &id) in ids.iter().enumerate() {
        for r in scenario.data.trajectory_of(account) {
            platform
                .submit(id, r.task, r.value, r.timestamp)
                .expect("submit");
        }
    }
    let audit = platform.audit(&AgTr::default(), 2);
    assert_eq!(audit.effective_min_group_size(), 2);

    let report = obs::snapshot();
    obs::set_enabled(false);

    // Spans must cover extraction → clustering/DTW → grouping → TD loop.
    let span_names: Vec<&str> = report.spans.iter().map(|s| s.name).collect();
    for required in [
        "signal.stream_features_batch",
        "framework.per_task_build",
        "cluster.kmeans.fit",
        "cluster.elbow",
        "ag_fp.group",
        "ag_tr.group",
        "ag_tr.dtw_edges",
        "framework.discover",
        "framework.td_loop",
        "platform.audit",
    ] {
        assert!(
            span_names.contains(&required),
            "missing span `{required}` in {span_names:?}"
        );
    }

    // DTW work and per-iteration convergence deltas are recorded.
    assert!(report
        .counters
        .iter()
        .any(|(name, count)| name == "timeseries.dtw.cells" && *count > 0));

    // Fused Table-II extraction and the window-coefficient cache are
    // visible: every stream extraction funnels through the fused kernel,
    // and the campaign's shared capture length means the cache misses
    // once per length and hits on every later windowing.
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    assert!(counter("signal.features.fused_calls") > 0);
    assert!(counter("signal.window.cache_misses") >= 1);
    assert!(counter("signal.window.cache_hits") > counter("signal.window.cache_misses"));
    let iteration_events = report
        .events
        .iter()
        .filter(|e| e.name == "framework.iteration")
        .count();
    assert!(
        iteration_events >= fp_result.iterations + tr_result.iterations,
        "expected per-iteration events, got {iteration_events}"
    );
    assert!(report.events.iter().any(|e| e.name == "platform.audit"));

    // The full JSON export parses back through the runtime's own parser.
    let rendered = report.to_json().render();
    let tree = parse(&rendered).expect("obs export is valid JSON");
    let Json::Obj(sections) = tree else {
        panic!("obs export must be a JSON object")
    };
    let keys: Vec<&str> = sections.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["counters", "gauges", "histograms", "spans", "events"]
    );
}
