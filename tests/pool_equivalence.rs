//! Pool-vs-scoped execution equivalence.
//!
//! The persistent worker pool replaced spawn-per-call scoped threads as
//! the default `parallel_map` backend. The contract that makes the swap
//! safe: chunk boundaries and output assembly depend only on the input
//! and `max_threads`, never on which backend (or which pool thread) ran
//! a chunk — so outputs must be **byte-identical** between the two
//! backends at every worker count, panics must propagate the same way,
//! and thread-local scratch must never leak state between jobs.

use sybil_td::runtime::parallel::{
    parallel_map, parallel_reduce, set_backend, set_max_threads, Backend,
};
use sybil_td::runtime::rng::{Rng, SeedableRng, StdRng};
use sybil_td::runtime::{pool, prop, prop_assert};
use sybil_td::signal::{stream_features_batch, FeatureConfig};

/// Runs `f` under the given backend and worker count, restoring the
/// defaults afterwards.
fn with_exec<T>(backend: Backend, threads: usize, f: impl FnOnce() -> T) -> T {
    set_backend(backend);
    set_max_threads(threads);
    let out = f();
    set_max_threads(0);
    set_backend(Backend::Pool);
    out
}

#[test]
fn map_outputs_are_byte_identical_across_backends_and_worker_counts() {
    let items: Vec<f64> = (0..10_007)
        .map(|i| (i as f64 * 0.137).sin() * 1e3)
        .collect();
    let f = |&x: &f64| (x.abs() + 1.0).ln() * x.mul_add(0.25, -3.0);
    let reference: Vec<u64> = with_exec(Backend::Scoped, 1, || parallel_map(&items, f))
        .into_iter()
        .map(f64::to_bits)
        .collect();
    for backend in [Backend::Pool, Backend::Scoped] {
        for threads in [1usize, 2, 4] {
            let got: Vec<u64> = with_exec(backend, threads, || parallel_map(&items, f))
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(got, reference, "{backend:?} at {threads} workers");
        }
    }
}

#[test]
fn reduce_merges_identically_across_backends() {
    let items: Vec<f64> = (0..8_191).map(|i| (i as f64 * 0.91).cos()).collect();
    let sum = |items: &[f64]| {
        parallel_reduce(items, 64, || 0.0f64, |acc, &x| acc + x, |a, b| a + b).to_bits()
    };
    let reference = with_exec(Backend::Scoped, 1, || sum(&items));
    for backend in [Backend::Pool, Backend::Scoped] {
        for threads in [1usize, 2, 4] {
            assert_eq!(
                with_exec(backend, threads, || sum(&items)),
                reference,
                "{backend:?} at {threads} workers"
            );
        }
    }
}

/// A real pipeline stage through both backends: the feature batch runs
/// its FFT jobs inside `parallel_map`, with per-thread scratch arenas on
/// the pool path — bits must not depend on any of it.
#[test]
fn feature_batch_is_backend_invariant() {
    let cfg = FeatureConfig::new(100.0);
    let streams: Vec<Vec<f64>> = (0..6)
        .map(|s| {
            (0..300 + 70 * s)
                .map(|i| (i as f64 * 0.21 + s as f64).sin() * 9.81)
                .collect()
        })
        .collect();
    let run = |backend, threads| {
        with_exec(backend, threads, || {
            stream_features_batch(&streams, &cfg)
                .into_iter()
                .flat_map(|f| f.to_vec())
                .map(f64::to_bits)
                .collect::<Vec<u64>>()
        })
    };
    let reference = run(Backend::Scoped, 1);
    for backend in [Backend::Pool, Backend::Scoped] {
        for threads in [1usize, 2, 4] {
            assert_eq!(run(backend, threads), reference, "{backend:?}/{threads}");
        }
    }
}

#[test]
fn pool_panics_propagate_like_scoped_joins() {
    for backend in [Backend::Pool, Backend::Scoped] {
        let outcome = std::panic::catch_unwind(|| {
            with_exec(backend, 4, || {
                let items: Vec<u64> = (0..100).collect();
                parallel_map(&items, |&x| {
                    assert!(x != 57, "boom");
                    x
                })
            })
        });
        assert!(outcome.is_err(), "{backend:?} must propagate job panics");
        set_max_threads(0);
        set_backend(Backend::Pool);
    }
    // The pool must survive a panicked batch: the next dispatch works.
    let items: Vec<u64> = (0..100).collect();
    let ok = with_exec(Backend::Pool, 4, || parallel_map(&items, |&x| x + 1));
    assert_eq!(ok[99], 100);
}

/// Nested parallel regions: an outer pool batch whose jobs call
/// `parallel_map` again. The inner calls find the dispatch token taken
/// and fall back to scoped threads — outputs must match a flat run.
#[test]
fn nested_parallel_map_inside_pool_jobs_is_identical() {
    let outer: Vec<u64> = (0..16).collect();
    let run = |backend, threads| {
        with_exec(backend, threads, || {
            parallel_map(&outer, |&o| {
                let inner: Vec<u64> = (0..50).map(|i| o * 100 + i).collect();
                parallel_map(&inner, |&x| x.wrapping_mul(2654435761))
            })
        })
    };
    let reference = run(Backend::Scoped, 1);
    for threads in [1usize, 2, 4] {
        assert_eq!(run(Backend::Pool, threads), reference);
    }
}

/// Poisoned-arena property test: jobs that deliberately leave garbage in
/// thread-local scratch must not affect any later job's output. The
/// feature batch checks its arenas out per job and overwrites every slot
/// it reads, so a batch interleaved with "poisoning" batches must still
/// be byte-identical to a clean run.
#[test]
fn scratch_arenas_never_leak_state_between_jobs() {
    let cfg = FeatureConfig::new(100.0);
    prop::check(
        |rng| {
            let count = rng.gen_range(1usize..7);
            let streams: Vec<Vec<f64>> = (0..count)
                .map(|_| {
                    let len = rng.gen_range(2usize..400);
                    (0..len).map(|_| rng.gen_range(-50f64..50.0)).collect()
                })
                .collect();
            (streams, rng.gen_range(0u64..u64::MAX))
        },
        |(streams, poison_seed)| {
            let clean = with_exec(Backend::Scoped, 1, || {
                stream_features_batch(streams, &cfg)
                    .into_iter()
                    .flat_map(|f| f.to_vec())
                    .map(f64::to_bits)
                    .collect::<Vec<u64>>()
            });
            // Poison: run a batch of garbage streams (NaN/huge values,
            // mismatched lengths) through the pool so every worker's
            // arena holds stale bins, then re-run the real batch.
            let mut rng = StdRng::seed_from_u64(*poison_seed);
            let garbage: Vec<Vec<f64>> = (0..4)
                .map(|_| {
                    let len = rng.gen_range(1usize..700);
                    (0..len)
                        .map(|i| {
                            if i % 97 == 13 {
                                f64::NAN
                            } else {
                                rng.gen_range(-1e12f64..1e12)
                            }
                        })
                        .collect()
                })
                .collect();
            let got = with_exec(Backend::Pool, 4, || {
                let _ = stream_features_batch(&garbage, &cfg);
                stream_features_batch(streams, &cfg)
                    .into_iter()
                    .flat_map(|f| f.to_vec())
                    .map(f64::to_bits)
                    .collect::<Vec<u64>>()
            });
            prop_assert!(got == clean, "poisoned arena changed feature bits");
            Ok(())
        },
    );
}

#[test]
fn pool_stats_move_when_the_pool_dispatches() {
    // Dispatch straight through the pool API (not `parallel_map`) so the
    // assertion cannot race other tests toggling the backend flag.
    let token = loop {
        if let Some(t) = pool::try_dispatch() {
            break t;
        }
        std::thread::yield_now();
    };
    let before = pool::stats();
    pool::run(5, &|_| {}, token);
    let after = pool::stats();
    assert_eq!(after.jobs, before.jobs + 5, "{before:?} -> {after:?}");
}
