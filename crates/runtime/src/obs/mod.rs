//! Zero-dependency observability: metrics, spans and structured events.
//!
//! Every pipeline stage of the workspace — feature extraction, FFT,
//! k-means/elbow, DTW matrices, account grouping, the Algorithm 2
//! weight/truth loop, platform auditing — reports into one process-wide
//! registry defined here. The subsystem is **inert by default**: all
//! entry points check [`enabled`] first (a single relaxed atomic load),
//! so instrumented code costs nothing measurable until observability is
//! switched on with `SRTD_OBS=1` or [`set_enabled`].
//!
//! Three kinds of telemetry are collected:
//!
//! * **metrics** — named [counters](counter_add), [gauges](gauge_set)
//!   and fixed-bucket [histograms](observe),
//! * **spans** — RAII wall-clock timers ([`span`]) aggregated per name
//!   (count / total / min / max ns); guards nest freely and may be
//!   dropped from `parallel_map` worker threads,
//! * **events** — one-shot structured records ([`event`]) such as a
//!   per-iteration convergence delta or the elbow-chosen `k`.
//!
//! [`snapshot`] captures everything as a [`Report`] that renders as a
//! human table ([`Report::render_table`]) or JSON
//! ([`Report::to_json`](crate::json::ToJson::to_json), parseable back by
//! [`crate::json::parse`]). [`export_json_if_requested`] honours the
//! `SRTD_OBS_JSON=<path>` environment contract.
//!
//! Determinism: counter totals, histogram bucket counts and event
//! payloads depend only on the work performed, never on the worker-thread
//! count; [`Report::deterministic_json`] exports exactly that subset, and
//! the runtime test-suite pins it byte-identical across 1- and 4-thread
//! runs. Span durations and gauges are wall-clock facts and are excluded.
//!
//! # Well-known metric names
//!
//! Instrumented crates register under dotted prefixes; the DTW family in
//! particular follows a fixed vocabulary that downstream golden-file
//! tests pin:
//!
//! * `timeseries.dtw.calls` / `timeseries.dtw.bounded_calls` — dynamic
//!   programs started (plain / upper-bounded),
//! * `timeseries.dtw.cells` — DP cells actually visited (banded and
//!   early-abandoned runs visit fewer),
//! * `timeseries.dtw.early_abandoned` — bounded DPs that abandoned
//!   mid-way,
//! * `timeseries.dtw.lb_kim_pruned` / `timeseries.dtw.lb_keogh_pruned` /
//!   `timeseries.dtw.pair_early_abandoned` / `timeseries.dtw.full_evals`
//!   — the pruned-pairwise cascade's per-pair outcome partition (the
//!   four always sum to the pair count of the matrices built).
//!
//! # Examples
//!
//! ```
//! use srtd_runtime::obs;
//!
//! obs::set_enabled(true);
//! obs::reset();
//! {
//!     let _timer = obs::span("example.stage");
//!     obs::counter_add("example.items", 3);
//! }
//! let report = obs::snapshot();
//! assert_eq!(report.counters, vec![("example.items".to_string(), 3)]);
//! assert_eq!(report.spans[0].name, "example.stage");
//! obs::set_enabled(false);
//! ```

mod history;
pub mod prom;
mod report;
mod span;
mod store;

pub use history::{TraceNode, WindowRecord};
pub use report::{EventSnapshot, HistogramSnapshot, Report, SpanSnapshot};
pub use span::{Span, TraceSuppressGuard};

use crate::json::Json;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Tri-state switch: unset (consult `SRTD_OBS` once), off, on.
static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Returns `true` when telemetry is being collected.
///
/// The first call resolves the `SRTD_OBS` environment variable (any
/// non-empty value other than `0` enables collection); [`set_enabled`]
/// overrides the environment in both directions.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = std::env::var_os("SRTD_OBS").is_some_and(|v| !v.is_empty() && v != *"0");
            ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns collection on or off programmatically (e.g. the CLI `--obs`
/// flag), overriding the `SRTD_OBS` environment variable.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Discards every collected metric, span and event (the on/off state is
/// untouched). Tests use this to isolate runs against the process-wide
/// registry.
pub fn reset() {
    store::with(|s| *s = store::Store::default());
}

/// Adds `delta` to the named monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    store::with(|s| *s.counters.entry(name.to_string()).or_insert(0) += delta);
}

/// Sets the named gauge to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    store::with(|s| {
        s.gauges.insert(name.to_string(), value);
    });
}

/// Records `value` into the named fixed-bucket histogram (1–2–5 decade
/// buckets from 1 to 5·10⁹, plus an overflow bucket).
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    store::with(|s| {
        s.histograms
            .entry(name.to_string())
            .or_default()
            .record(value)
    });
}

/// Starts a wall-clock span; the elapsed time is recorded under `name`
/// when the returned guard drops. A no-op (no clock read) while
/// collection is disabled.
pub fn span(name: &'static str) -> Span {
    Span::start(name)
}

/// Suppresses trace-tree recording on the current thread until the
/// returned guard drops (flat span aggregates still record).
///
/// `parallel_map` wraps its inline single-worker fallback in this so
/// spans inside item closures stay out of the window's trace tree at
/// every worker count alike — on worker threads they are excluded by the
/// opener-thread rule already.
pub fn suppress_trace() -> TraceSuppressGuard {
    TraceSuppressGuard::new()
}

/// Appends a structured one-shot event.
///
/// Field order is preserved in the export. Events should only be emitted
/// from deterministic (single-threaded) pipeline stages — worker threads
/// use counters/histograms instead — so the event log is reproducible.
pub fn event<'a>(name: &str, fields: impl IntoIterator<Item = (&'a str, Json)>) {
    if !enabled() {
        return;
    }
    let fields: Vec<(String, Json)> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    store::with(|s| {
        s.events.push(store::Event {
            name: name.to_string(),
            fields,
        })
    });
}

/// Captures the current contents of the registry.
pub fn snapshot() -> Report {
    store::with(|s| Report::from_store(s))
}

/// Ring-buffer capacity for completed windows: 0 = unresolved (consult
/// `SRTD_OBS_HISTORY` on first use, default 64).
static HISTORY_CAPACITY: AtomicUsize = AtomicUsize::new(0);

const DEFAULT_HISTORY_CAPACITY: usize = 64;

fn history_capacity() -> usize {
    match HISTORY_CAPACITY.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("SRTD_OBS_HISTORY")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_HISTORY_CAPACITY);
            HISTORY_CAPACITY.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Sets how many completed windows [`history`] retains (clamped to ≥ 1),
/// overriding the `SRTD_OBS_HISTORY` environment variable. Passing 0
/// resets to the environment/default resolution. Shrinking takes effect
/// at the next [`window_end`].
pub fn set_history_capacity(n: usize) {
    HISTORY_CAPACITY.store(n, Ordering::Relaxed);
}

/// Opens a telemetry window on the current thread: trace-tree collection
/// starts for spans dropped on this thread, and the next [`window_end`]
/// will close it. A window already open is discarded and replaced (its
/// trace is lost; counters are safe — deltas are computed against the
/// previous *completed* window, not against `window_begin`). A no-op
/// while collection is disabled.
pub fn window_begin() {
    if !enabled() {
        return;
    }
    let opener = std::thread::current().id();
    store::with(|s| {
        s.window.open = Some(store::OpenWindow {
            opener,
            trace: store::TraceBuild::default(),
        });
    });
}

/// Closes the open window: computes the delta [`Report`] against the
/// previous window boundary (counters, histogram buckets, events; gauges
/// report their current value; flat span aggregates are replaced by the
/// trace tree), advances the boundary, and retains the record in the
/// history ring buffer. Returns `None` when no window is open (including
/// whenever collection is disabled).
pub fn window_end(label: &str) -> Option<WindowRecord> {
    if !enabled() {
        return None;
    }
    let capacity = history_capacity();
    store::with(|s| history::end_window(s, label, capacity))
}

/// Returns the last `n` completed windows, oldest first (fewer when the
/// ring holds fewer).
pub fn history(n: usize) -> Vec<WindowRecord> {
    store::with(|s| {
        let len = s.window.history.len();
        s.window
            .history
            .iter()
            .skip(len.saturating_sub(n))
            .cloned()
            .collect()
    })
}

/// Returns the most recently completed window, if any.
pub fn latest_window() -> Option<WindowRecord> {
    store::with(|s| s.window.history.back().cloned())
}

/// Writes the current [`snapshot`] as JSON to the path named by the
/// `SRTD_OBS_JSON` environment variable, if set. Since the timeline
/// landed, the export also carries a `history` array of the retained
/// windows ([`WindowRecord`] JSON), so offline runs get the same
/// timeline the server serves at `/metrics/history`.
///
/// Returns the path written to, or `None` when the variable is unset.
/// Collection does not need to be [`enabled`] — an empty report is still
/// valid JSON — but callers normally invoke this once, after an
/// instrumented run.
pub fn export_json_if_requested() -> std::io::Result<Option<std::path::PathBuf>> {
    let Some(path) = std::env::var_os("SRTD_OBS_JSON") else {
        return Ok(None);
    };
    let path = std::path::PathBuf::from(path);
    let (report, windows) = store::with(|s| {
        (
            Report::from_store(s),
            s.window.history.iter().cloned().collect::<Vec<_>>(),
        )
    });
    let Json::Obj(mut fields) = crate::json::ToJson::to_json(&report) else {
        unreachable!("a report always renders as a JSON object");
    };
    fields.push((
        "history".to_string(),
        Json::arr(windows.iter().map(crate::json::ToJson::to_json)),
    ));
    std::fs::write(&path, Json::Obj(fields).render())?;
    Ok(Some(path))
}

pub(crate) mod internal {
    //! Hook for the span guard: direct store access on drop.
    pub(crate) use super::store::with;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;
    use std::sync::Mutex;

    /// Serializes tests that toggle the process-wide registry.
    pub(super) static OBS_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        OBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_collection_is_inert() {
        let _g = guard();
        set_enabled(false);
        reset();
        counter_add("c", 1);
        gauge_set("g", 2.0);
        observe("h", 3.0);
        event("e", [("k", Json::Num(1.0))]);
        drop(span("s"));
        let r = snapshot();
        assert!(r.counters.is_empty());
        assert!(r.gauges.is_empty());
        assert!(r.histograms.is_empty());
        assert!(r.spans.is_empty());
        assert!(r.events.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_events_round_trip() {
        let _g = guard();
        set_enabled(true);
        reset();
        counter_add("pipeline.items", 2);
        counter_add("pipeline.items", 3);
        gauge_set("pipeline.workers", 4.0);
        gauge_set("pipeline.workers", 8.0);
        observe("pipeline.len", 3.0);
        observe("pipeline.len", 70.0);
        event(
            "pipeline.done",
            [("k", 3usize.to_json()), ("ok", true.to_json())],
        );
        let r = snapshot();
        set_enabled(false);
        assert_eq!(r.counters, vec![("pipeline.items".to_string(), 5)]);
        assert_eq!(r.gauges, vec![("pipeline.workers".to_string(), 8.0)]);
        assert_eq!(r.histograms.len(), 1);
        assert_eq!(r.histograms[0].count, 2);
        assert_eq!(r.histograms[0].sum, 73.0);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].name, "pipeline.done");
        assert_eq!(r.events[0].fields[0].0, "k");
    }

    #[test]
    fn spans_aggregate_per_name_and_nest() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
        }
        let r = snapshot();
        set_enabled(false);
        let inner = r.spans.iter().find(|s| s.name == "inner").expect("inner");
        let outer = r.spans.iter().find(|s| s.name == "outer").expect("outer");
        assert_eq!(inner.count, 3);
        assert_eq!(outer.count, 1);
        assert!(inner.min_ns <= inner.max_ns);
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn spans_record_from_worker_threads() {
        let _g = guard();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| drop(span("worker")));
            }
        });
        let r = snapshot();
        set_enabled(false);
        assert_eq!(
            r.spans.iter().find(|s| s.name == "worker").unwrap().count,
            4
        );
    }

    #[test]
    fn windows_capture_deltas_trace_trees_and_evict() {
        let _g = guard();
        set_enabled(true);
        reset();
        set_history_capacity(2);
        // Emitted before any window: charged to window 1's delta, since
        // deltas are taken against the previous *completed* boundary.
        counter_add("w.pre", 5);
        window_begin();
        {
            let _outer = span("stage.outer");
            let _inner = span("stage.inner");
        }
        counter_add("w.items", 2);
        let w1 = window_end("first").expect("window 1");
        assert_eq!(w1.index, 1);
        assert_eq!(w1.label, "first");
        assert_eq!(
            w1.report.counters,
            vec![("w.items".to_string(), 2), ("w.pre".to_string(), 5)]
        );
        assert_eq!(w1.stage_names(), vec!["stage.outer", "stage.inner"]);
        assert_eq!(w1.trace[0].children[0].count, 1);

        window_begin();
        counter_add("w.items", 3);
        let w2 = window_end("second").expect("window 2");
        assert_eq!(w2.report.counters, vec![("w.items".to_string(), 3)]);

        // Empty window: no deltas, no stages.
        window_begin();
        let w3 = window_end("third").expect("window 3");
        assert!(w3.report.counters.is_empty());
        assert!(w3.trace.is_empty());

        // Window deltas tile the timeline: per-window counts sum to the
        // cumulative registry value.
        let total: u64 = history(10)
            .iter()
            .chain([&w1])
            .flat_map(|w| &w.report.counters)
            .filter(|(name, _)| name == "w.items")
            .map(|(_, v)| *v)
            .sum();
        let cumulative = snapshot()
            .counters
            .iter()
            .find(|(name, _)| name == "w.items")
            .map(|(_, v)| *v);
        assert_eq!(Some(total), cumulative);

        // Capacity 2: window 1 was evicted from the ring.
        let retained = history(10);
        assert_eq!(
            retained.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(history(1).len(), 1);
        assert_eq!(latest_window().expect("latest").index, 3);
        assert!(window_end("no window open").is_none());

        set_history_capacity(0);
        set_enabled(false);
    }

    #[test]
    fn suppressed_and_worker_thread_spans_stay_out_of_trace() {
        let _g = guard();
        set_enabled(true);
        reset();
        window_begin();
        drop(span("kept"));
        {
            let _hide = suppress_trace();
            drop(span("hidden"));
        }
        std::thread::scope(|scope| {
            scope.spawn(|| drop(span("worker")));
        });
        let w = window_end("w").expect("window");
        assert_eq!(w.stage_names(), vec!["kept"]);
        // Flat aggregates still record every span.
        let r = snapshot();
        set_enabled(false);
        for name in ["kept", "hidden", "worker"] {
            assert!(
                r.spans.iter().any(|s| s.name == name),
                "flat aggregate for {name} missing"
            );
        }
    }

    #[test]
    fn snapshot_json_parses_back() {
        let _g = guard();
        set_enabled(true);
        reset();
        counter_add("a", 1);
        observe("h", 42.0);
        event("e", [("x", Json::str("y"))]);
        drop(span("s"));
        let rendered = snapshot().to_json().render();
        set_enabled(false);
        let parsed = crate::json::parse(&rendered).expect("valid JSON");
        let Json::Obj(fields) = parsed else {
            panic!("report must be an object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["counters", "gauges", "histograms", "spans", "events"]
        );
    }
}
