//! Device models and manufactured device instances.

use crate::noise::{normal, normal3};
use srtd_runtime::json::{Json, ToJson};
use srtd_runtime::rng::Rng;

/// Operating system of a smartphone model (Table IV groups by OS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceOs {
    /// Apple iOS device.
    Ios,
    /// Android device.
    Android,
}

impl std::fmt::Display for DeviceOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceOs::Ios => write!(f, "iOS"),
            DeviceOs::Android => write!(f, "Android"),
        }
    }
}

/// Population-level MEMS parameters of a smartphone model.
///
/// The *centers* differ between models (different sensor chips and
/// mounting), while the *spreads* describe chip-to-chip manufacturing
/// variation within the model. The defaults below are in the range reported
/// for commodity MEMS parts (bias of a few mg / a few mdps, gain errors a
/// few per mille) — exact values only shape the simulation, not the
/// algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemsParameters {
    /// Model-level accelerometer bias center per axis (m/s²).
    pub accel_bias_center: f64,
    /// Chip-to-chip spread of the accelerometer bias (m/s²).
    pub accel_bias_spread: f64,
    /// Chip-to-chip spread of the accelerometer gain error (relative).
    pub accel_scale_spread: f64,
    /// Accelerometer output noise σ per sample (m/s²).
    pub accel_noise: f64,
    /// Model-level gyroscope bias center per axis (rad/s).
    pub gyro_bias_center: f64,
    /// Chip-to-chip spread of the gyroscope bias (rad/s).
    pub gyro_bias_spread: f64,
    /// Chip-to-chip spread of the gyroscope gain error (relative).
    pub gyro_scale_spread: f64,
    /// Gyroscope output noise σ per sample (rad/s).
    pub gyro_noise: f64,
    /// Model-level resonance of the MEMS proof-mass suspension (Hz).
    ///
    /// Hand tremor excites this mode; its frequency is a strong model
    /// signature and shifts slightly chip to chip.
    pub resonance_hz: f64,
    /// Chip-to-chip spread of the resonance frequency (Hz).
    pub resonance_spread_hz: f64,
    /// Amplitude of the resonance response in the accelerometer (m/s²).
    pub resonance_gain: f64,
}

/// A smartphone model — a family of devices sharing MEMS characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Marketing name, e.g. `"iPhone 6S"`.
    pub name: String,
    /// Operating system.
    pub os: DeviceOs,
    /// Population-level MEMS parameters.
    pub mems: MemsParameters,
}

impl DeviceModel {
    /// Creates a model with the given name, OS and MEMS population
    /// parameters.
    pub fn new(name: impl Into<String>, os: DeviceOs, mems: MemsParameters) -> Self {
        Self {
            name: name.into(),
            os,
            mems,
        }
    }

    /// Manufactures one physical device: draws its chip-level
    /// imperfections around the model's population parameters.
    pub fn manufacture<R: Rng + ?Sized>(&self, rng: &mut R) -> DeviceInstance {
        let m = &self.mems;
        DeviceInstance {
            model_name: self.name.clone(),
            accel_bias: normal3(rng, m.accel_bias_center, m.accel_bias_spread),
            accel_scale: normal3(rng, 1.0, m.accel_scale_spread),
            accel_noise: m.accel_noise * normal(rng, 1.0, 0.1).clamp(0.5, 1.5),
            gyro_bias: normal3(rng, m.gyro_bias_center, m.gyro_bias_spread),
            gyro_scale: normal3(rng, 1.0, m.gyro_scale_spread),
            gyro_noise: m.gyro_noise * normal(rng, 1.0, 0.1).clamp(0.5, 1.5),
            resonance_hz: normal(rng, m.resonance_hz, m.resonance_spread_hz).clamp(1.0, 45.0),
            resonance_gain: (m.resonance_gain * normal(rng, 1.0, 0.15)).max(0.0),
        }
    }
}

/// One manufactured device with its chip-level MEMS imperfections.
///
/// These values are fixed at "manufacture" time and shared by every capture
/// taken on the device — the stability that makes fingerprinting work.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceInstance {
    /// Name of the model this device belongs to.
    pub model_name: String,
    /// Accelerometer bias per axis (m/s²).
    pub accel_bias: [f64; 3],
    /// Accelerometer gain per axis (1.0 = perfect).
    pub accel_scale: [f64; 3],
    /// Accelerometer noise σ (m/s²).
    pub accel_noise: f64,
    /// Gyroscope bias per axis (rad/s).
    pub gyro_bias: [f64; 3],
    /// Gyroscope gain per axis (1.0 = perfect).
    pub gyro_scale: [f64; 3],
    /// Gyroscope noise σ (rad/s).
    pub gyro_noise: f64,
    /// Resonance frequency of this chip (Hz).
    pub resonance_hz: f64,
    /// Resonance response amplitude (m/s²).
    pub resonance_gain: f64,
}

impl ToJson for DeviceOs {
    fn to_json(&self) -> Json {
        Json::str(self.to_string())
    }
}

impl ToJson for MemsParameters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("accel_bias_center", self.accel_bias_center.to_json()),
            ("accel_bias_spread", self.accel_bias_spread.to_json()),
            ("accel_scale_spread", self.accel_scale_spread.to_json()),
            ("accel_noise", self.accel_noise.to_json()),
            ("gyro_bias_center", self.gyro_bias_center.to_json()),
            ("gyro_bias_spread", self.gyro_bias_spread.to_json()),
            ("gyro_scale_spread", self.gyro_scale_spread.to_json()),
            ("gyro_noise", self.gyro_noise.to_json()),
            ("resonance_hz", self.resonance_hz.to_json()),
            ("resonance_spread_hz", self.resonance_spread_hz.to_json()),
            ("resonance_gain", self.resonance_gain.to_json()),
        ])
    }
}

impl ToJson for DeviceModel {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("os", self.os.to_json()),
            ("mems", self.mems.to_json()),
        ])
    }
}

impl ToJson for DeviceInstance {
    fn to_json(&self) -> Json {
        Json::obj([
            ("model_name", self.model_name.to_json()),
            ("accel_bias", self.accel_bias.to_json()),
            ("accel_scale", self.accel_scale.to_json()),
            ("accel_noise", self.accel_noise.to_json()),
            ("gyro_bias", self.gyro_bias.to_json()),
            ("gyro_scale", self.gyro_scale.to_json()),
            ("gyro_noise", self.gyro_noise.to_json()),
            ("resonance_hz", self.resonance_hz.to_json()),
            ("resonance_gain", self.resonance_gain.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;
    use srtd_runtime::rng::SeedableRng;
    use srtd_runtime::rng::StdRng;

    fn any_model() -> DeviceModel {
        standard_catalog()[0].model.clone()
    }

    #[test]
    fn manufacture_is_deterministic_given_seed() {
        let model = any_model();
        let a = model.manufacture(&mut StdRng::seed_from_u64(9));
        let b = model.manufacture(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn chips_of_one_model_differ() {
        let model = any_model();
        let mut rng = StdRng::seed_from_u64(1);
        let a = model.manufacture(&mut rng);
        let b = model.manufacture(&mut rng);
        assert_ne!(a.accel_bias, b.accel_bias);
        assert_eq!(a.model_name, b.model_name);
    }

    #[test]
    fn imperfections_are_near_population_centers() {
        let model = any_model();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let d = model.manufacture(&mut rng);
            for axis in 0..3 {
                let dev = (d.accel_bias[axis] - model.mems.accel_bias_center).abs();
                assert!(dev < 6.0 * model.mems.accel_bias_spread);
                assert!((d.accel_scale[axis] - 1.0).abs() < 6.0 * model.mems.accel_scale_spread);
            }
            assert!(d.resonance_hz >= 1.0 && d.resonance_hz <= 45.0);
            assert!(d.resonance_gain >= 0.0);
            assert!(d.accel_noise > 0.0);
        }
    }

    #[test]
    fn os_display() {
        assert_eq!(DeviceOs::Ios.to_string(), "iOS");
        assert_eq!(DeviceOs::Android.to_string(), "Android");
    }
}
