//! Scaled campaign generation for the 100k–1M-account grouping benchmarks.
//!
//! [`crate::Scenario`] reproduces the paper's 18-account experiment with
//! full physical fidelity — Wi-Fi propagation, FFT device fingerprints,
//! POI walks. None of that survives a 100 000-account campaign: a single
//! fingerprint capture is ~600 samples × 4 streams of FFT work, and the
//! campus map holds 10 POIs. This module trades physical fidelity for
//! *structural* fidelity at scale: the generated campaign preserves
//! exactly the statistics the grouping stage keys on —
//!
//! * sparse per-account task sets (a handful of tasks out of thousands),
//! * trajectories as (task, timestamp) series spread over a long window,
//!   with Sybil rings replaying one walk back to back,
//! * low-dimensional fingerprint sketches clustered around per-device
//!   centers, with each ring sharing one device,
//!
//! while skipping radio modelling and FFTs entirely. Generation is a
//! single sequential pass over one RNG stream — deterministic in the seed
//! and linear in the account count, so a 100k-account campaign
//! materializes in well under a second.

use srtd_runtime::rng::{Rng, SeedableRng, StdRng};
use srtd_truth::SensingData;

/// Configuration of a scaled synthetic campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledCampaignConfig {
    /// Total accounts, Sybil ring members included.
    pub num_accounts: usize,
    /// Sensing tasks `m`. The default keeps ~50 accounts per task so task
    /// sets stay sparse, as in a metropolitan campaign.
    pub num_tasks: usize,
    /// Distinct tasks each account reports.
    pub tasks_per_account: usize,
    /// Sybil rings; each contributes [`Self::accounts_per_ring`] accounts
    /// replaying one shared walk on one shared device.
    pub num_rings: usize,
    /// Accounts per Sybil ring.
    pub accounts_per_ring: usize,
    /// Device families the fingerprint sketches cluster around.
    pub num_devices: usize,
    /// Dimensionality of the fingerprint sketch vectors.
    pub sketch_dims: usize,
    /// Campaign window in seconds over which walks start.
    pub window_s: f64,
    /// RNG seed; every generated artifact is deterministic in it.
    pub seed: u64,
}

impl ScaledCampaignConfig {
    /// A campaign with `num_accounts` accounts and scale-proportional
    /// defaults: one task per ~50 accounts (at least 20), 6 tasks per
    /// account, one 5-account Sybil ring per ~1000 accounts, 32 device
    /// families, 8-dimensional sketches, a 30-day window.
    pub fn new(num_accounts: usize) -> Self {
        Self {
            num_accounts,
            num_tasks: (num_accounts / 50).max(20),
            tasks_per_account: 6,
            num_rings: num_accounts / 1000,
            accounts_per_ring: 5,
            num_devices: 32,
            sketch_dims: 8,
            window_s: 30.0 * 24.0 * 3600.0,
            seed: 0,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero where one is required, if the task set
    /// cannot be distinct, or if the rings don't fit in the account count.
    pub fn validate(&self) {
        assert!(self.num_accounts > 0, "campaign needs accounts");
        assert!(self.num_tasks > 0, "campaign needs tasks");
        assert!(
            self.tasks_per_account > 0 && self.tasks_per_account <= self.num_tasks,
            "tasks per account must be in 1..=num_tasks"
        );
        assert!(self.num_devices > 0, "campaign needs device families");
        assert!(self.sketch_dims > 0, "sketches need dimensions");
        assert!(
            self.window_s > 0.0 && self.window_s.is_finite(),
            "window must be positive"
        );
        assert!(
            self.num_rings * self.accounts_per_ring <= self.num_accounts,
            "Sybil rings ({} × {}) exceed the account count {}",
            self.num_rings,
            self.accounts_per_ring,
            self.num_accounts
        );
    }
}

/// A generated scaled campaign with ground truth for evaluation.
#[derive(Debug, Clone)]
pub struct ScaledCampaign {
    /// The report matrix handed to grouping and truth discovery.
    pub data: SensingData,
    /// Per-account fingerprint sketch vectors.
    pub fingerprints: Vec<Vec<f64>>,
    /// True owner of each account; ring members share an owner.
    pub owners: Vec<usize>,
    /// Whether each account belongs to a Sybil ring.
    pub is_sybil: Vec<bool>,
    /// Device families used (ground truth `k` for AG-FP).
    pub num_devices: usize,
}

impl ScaledCampaign {
    /// Generates a campaign from a configuration. Deterministic in
    /// `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ScaledCampaignConfig::validate`]).
    pub fn generate(config: &ScaledCampaignConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let truths: Vec<f64> = (0..config.num_tasks)
            .map(|_| rng.gen_range(-90.0..-40.0))
            .collect();
        let centers: Vec<Vec<f64>> = (0..config.num_devices)
            .map(|_| {
                (0..config.sketch_dims)
                    .map(|_| rng.gen_range(-3.0..3.0))
                    .collect()
            })
            .collect();

        let num_sybil = config.num_rings * config.accounts_per_ring;
        let num_legit = config.num_accounts - num_sybil;
        let mut data = SensingData::new(config.num_tasks);
        let mut fingerprints = Vec::with_capacity(config.num_accounts);
        let mut owners = Vec::with_capacity(config.num_accounts);
        let mut is_sybil = Vec::with_capacity(config.num_accounts);

        let sketch = |center: &[f64], rng: &mut StdRng| -> Vec<f64> {
            center.iter().map(|&c| c + rng.normal(0.0, 0.1)).collect()
        };

        // Legitimate accounts: own task set, own walk, own device draw.
        for account in 0..num_legit {
            let tasks = sample_distinct(config.num_tasks, config.tasks_per_account, &mut rng);
            let mut arrival = rng.gen_range(0.0..config.window_s);
            for &task in &tasks {
                arrival += rng.gen_range(30.0..300.0);
                let value = truths[task] + rng.normal(0.0, 2.0);
                data.add_report(account, task, value, arrival);
            }
            let device = rng.gen_range(0..config.num_devices);
            fingerprints.push(sketch(&centers[device], &mut rng));
            owners.push(account);
            is_sybil.push(false);
        }

        // Sybil rings: one walk, replayed by every member with the tens-of
        // seconds account-switching offsets of Table III, on one device.
        for ring in 0..config.num_rings {
            let owner = num_legit + ring;
            let base = num_legit + ring * config.accounts_per_ring;
            let tasks = sample_distinct(config.num_tasks, config.tasks_per_account, &mut rng);
            let device = rng.gen_range(0..config.num_devices);
            let mut arrival = rng.gen_range(0.0..config.window_s);
            let mut visits = Vec::with_capacity(tasks.len());
            for &task in &tasks {
                arrival += rng.gen_range(30.0..300.0);
                visits.push((task, arrival, truths[task] + rng.normal(0.0, 2.0)));
            }
            for member in 0..config.accounts_per_ring {
                let account = base + member;
                let mut offset = rng.gen_range(5.0..20.0) + member as f64 * 20.0;
                for &(task, when, honest) in &visits {
                    offset += rng.gen_range(0.0..15.0);
                    let value = honest + rng.normal(0.0, 0.3);
                    data.add_report(account, task, value, when + offset);
                }
                fingerprints.push(sketch(&centers[device], &mut rng));
                owners.push(owner);
                is_sybil.push(true);
            }
        }

        Self {
            data,
            fingerprints,
            owners,
            is_sybil,
            num_devices: config.num_devices,
        }
    }

    /// Number of accounts in the campaign.
    pub fn num_accounts(&self) -> usize {
        self.owners.len()
    }
}

/// Floyd's algorithm: `k` distinct draws from `0..n` in O(k) expected
/// time — `n` here is thousands of tasks, so shuffling a full index vector
/// per account (as the paper-scale generator does) would dominate
/// generation. Returned in insertion order, which is itself random.
fn sample_distinct(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut chosen = Vec::with_capacity(k);
    for j in n - k..n {
        let t = rng.gen_range(0..j + 1);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = ScaledCampaignConfig::new(2000).with_seed(7);
        let a = ScaledCampaign::generate(&cfg);
        assert_eq!(a.num_accounts(), 2000);
        assert_eq!(a.data.num_tasks(), 40);
        assert_eq!(a.is_sybil.iter().filter(|&&s| s).count(), 2 * 5);
        assert!(a.fingerprints.iter().all(|f| f.len() == 8));
        for account in 0..a.num_accounts() {
            assert_eq!(a.data.tasks_of(account).len(), 6, "account {account}");
        }
        let b = ScaledCampaign::generate(&cfg);
        assert_eq!(a.data, b.data);
        assert_eq!(a.fingerprints, b.fingerprints);
        let c = ScaledCampaign::generate(&cfg.with_seed(8));
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn ring_members_replay_one_walk() {
        let cfg = ScaledCampaignConfig::new(3000).with_seed(3);
        let s = ScaledCampaign::generate(&cfg);
        let members: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
        assert_eq!(members.len(), 15);
        let by_owner = |owner: usize| -> Vec<usize> {
            members
                .iter()
                .copied()
                .filter(|&a| s.owners[a] == owner)
                .collect()
        };
        let first_owner = s.owners[members[0]];
        let ring = by_owner(first_owner);
        assert_eq!(ring.len(), 5);
        let reference = s.data.tasks_of(ring[0]);
        for &a in &ring[1..] {
            assert_eq!(s.data.tasks_of(a), reference, "ring task sets differ");
        }
        // Replay offsets stay within minutes of the walk.
        let t0: Vec<f64> = s
            .data
            .trajectory_of(ring[0])
            .iter()
            .map(|r| r.timestamp)
            .collect();
        let t4: Vec<f64> = s
            .data
            .trajectory_of(ring[4])
            .iter()
            .map(|r| r.timestamp)
            .collect();
        for (a, b) in t0.iter().zip(&t4) {
            assert!((a - b).abs() < 600.0, "replay drifted: {a} vs {b}");
        }
    }

    #[test]
    fn values_track_ground_truth() {
        let cfg = ScaledCampaignConfig::new(500).with_seed(11);
        let s = ScaledCampaign::generate(&cfg);
        for account in 0..s.num_accounts() {
            for r in s.data.account_reports(account) {
                assert!((-100.0..=-30.0).contains(&r.value), "value {}", r.value);
            }
        }
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let n = rng.gen_range(1..50);
            let k = rng.gen_range(0..n + 1);
            let s = sample_distinct(n, k, &mut rng);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {s:?}");
            assert!(s.iter().all(|&t| t < n));
        }
    }

    #[test]
    #[should_panic(expected = "exceed the account count")]
    fn oversized_rings_rejected() {
        let mut cfg = ScaledCampaignConfig::new(100);
        cfg.num_rings = 30;
        ScaledCampaign::generate(&cfg);
    }
}
