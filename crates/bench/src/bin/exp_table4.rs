//! Experiment `table4` — prints the simulated Table IV device inventory
//! and its role assignment.
//!
//! Run with: `cargo run -p srtd-bench --bin exp_table4`

use srtd_bench::table::Table;
use srtd_fingerprint::catalog::{standard_catalog, DeviceRole};

fn main() {
    println!("Table IV — models of smartphones used in the experiment\n");
    let catalog = standard_catalog();
    let mut t = Table::new(
        ["OS", "model", "quantity", "role"]
            .map(String::from)
            .to_vec(),
    );
    let mut total = 0usize;
    for e in &catalog {
        total += e.quantity;
        let role = match e.role {
            DeviceRole::Legitimate => "",
            DeviceRole::AttackI => "* Attack-I",
            DeviceRole::AttackII => "** Attack-II",
        };
        t.add_row(vec![
            e.model.os.to_string(),
            e.model.name.clone(),
            e.quantity.to_string(),
            role.to_string(),
        ]);
    }
    t.add_row(vec![
        "Total".into(),
        String::new(),
        total.to_string(),
        String::new(),
    ]);
    println!("{}", t.render());
    println!("* one unit conducts Attack-I; ** units conduct Attack-II");
    println!("\nsimulated MEMS population parameters per model:");
    let mut p = Table::new(
        [
            "model",
            "accel bias",
            "gyro bias",
            "resonance Hz",
            "res. gain",
        ]
        .map(String::from)
        .to_vec(),
    );
    for e in &catalog {
        p.add_row(vec![
            e.model.name.clone(),
            format!("{:+.3}", e.model.mems.accel_bias_center),
            format!("{:+.4}", e.model.mems.gyro_bias_center),
            format!("{:.1}", e.model.mems.resonance_hz),
            format!("{:.3}", e.model.mems.resonance_gain),
        ]);
    }
    println!("{}", p.render());
    assert_eq!(total, 11);
    println!("[inventory matches Table IV: 8 models, 11 units]");
}
