//! `srtd-server` — the campaign-as-a-service front end.
//!
//! A std-only HTTP/1.1 server (bare `TcpListener`, the workspace's own
//! JSON wire format) over the platform's [`EpochEngine`]: reports stream
//! in over `POST /ingest`, an epoch boundary is an explicit `POST /epoch`,
//! and readers fetch the latest published snapshot while the next epoch
//! computes. The PR-2 observability layer doubles as the metrics endpoint.
//!
//! ```text
//! srtd-server [--port N] [--tasks N] [--method ag-tr|ag-ts|singletons] [--shards N]
//!             [--epoch-interval-ms N]
//! ```
//!
//! Endpoints:
//!
//! * `GET  /healthz`  — readiness: epoch and generation counters, ingest
//!   backlog, last-epoch duration
//! * `POST /ingest`   — `{"reports":[{"account":A,"task":T,"value":V,"timestamp":S},…]}`;
//!   each report is validated and buffered, the response counts
//!   acceptances and rejections (with reasons)
//! * `POST /epoch`    — drain the buffers, fold, re-group incrementally
//!   (cached decision edges + persistent union-find; identical to a
//!   from-scratch rebuild), run warm-started Algorithm 2, publish;
//!   returns the new snapshot
//! * `GET  /truths`   — the latest published snapshot (epoch, truths, …)
//! * `GET  /groups`   — the latest grouping: labels and group weights
//! * `GET  /metrics`  — the obs registry's deterministic JSON export;
//!   `?format=prom` switches to Prometheus text exposition of the full
//!   snapshot (gauges and spans included)
//! * `GET  /metrics/history?n=N` — the last N completed epoch windows
//!   (delta reports + trace trees), oldest first
//! * `GET  /trace`    — the latest completed epoch's trace tree
//! * `POST /shutdown` — acknowledge and exit cleanly
//!
//! Every request additionally feeds the obs registry: a
//! `server.http.requests` counter, per-status-class counters
//! (`server.http.status.2xx`, …) and a `server.http.request_us` latency
//! histogram.
//!
//! Requests are handled sequentially on the accept thread: the engine is
//! deterministic, and the serving story is snapshot handoff, not request
//! parallelism — the heavy lifting inside an epoch already runs on the
//! runtime's persistent worker pool.
//!
//! With `--epoch-interval-ms N` a ticker thread drives epochs on a
//! timer: every `N` milliseconds it takes the engine lock and, if any
//! reports are pending, runs the same incremental epoch `POST /epoch`
//! would (explicit `POST /epoch` keeps working alongside the timer —
//! both paths serialize on the engine mutex). Ticks and timer-driven
//! epochs are counted in `server.epoch.timer_{ticks,epochs}`. The
//! shutdown route stops the ticker and joins it before the process
//! exits, so a timer-driven server still shuts down cleanly.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::{Arc, Condvar, Mutex};

use sybil_td::core::{AgTr, AgTs, SingletonGrouping, SybilResistantTd};
use sybil_td::platform::{EpochConfig, EpochEngine, EpochSnapshot, IngestError};
use sybil_td::runtime::json::{parse, Json, ToJson};
use sybil_td::runtime::obs;

const USAGE: &str = "\
srtd-server — epoch-driven truth discovery service

USAGE:
  srtd-server [--port N] [--tasks N] [--method ag-tr|ag-ts|singletons] [--shards N]
              [--epoch-interval-ms N]

--port 0 (the default) binds an ephemeral loopback port; the chosen port
is announced on stdout as `listening on 127.0.0.1:PORT`.
--epoch-interval-ms N runs an epoch every N ms whenever reports are
pending (0, the default, disables the timer; epochs then run only on
POST /epoch).";

/// The grouping-method dispatch: one engine variant per supported method,
/// so the generic `EpochEngine<G>` stays monomorphic behind one enum.
enum Engine {
    AgTr(EpochEngine<AgTr>),
    AgTs(EpochEngine<AgTs>),
    Singletons(EpochEngine<SingletonGrouping>),
}

impl Engine {
    fn new(method: &str, num_tasks: usize, config: EpochConfig) -> Result<Self, String> {
        Ok(match method {
            "ag-tr" => Engine::AgTr(EpochEngine::new(
                SybilResistantTd::new(AgTr::default()),
                num_tasks,
                config,
            )),
            "ag-ts" => Engine::AgTs(EpochEngine::new(
                SybilResistantTd::new(AgTs::default()),
                num_tasks,
                config,
            )),
            "singletons" => Engine::Singletons(EpochEngine::new(
                SybilResistantTd::new(SingletonGrouping),
                num_tasks,
                config,
            )),
            other => return Err(format!("unknown grouping method `{other}`")),
        })
    }

    fn ingest(
        &mut self,
        account: usize,
        task: usize,
        value: f64,
        timestamp: f64,
    ) -> Result<(), IngestError> {
        match self {
            Engine::AgTr(e) => e.ingest(account, task, value, timestamp),
            Engine::AgTs(e) => e.ingest(account, task, value, timestamp),
            Engine::Singletons(e) => e.ingest(account, task, value, timestamp),
        }
    }

    fn run_epoch(&mut self) -> std::sync::Arc<EpochSnapshot> {
        // All three methods are `EdgeGrouping`s, so the server always
        // takes the incremental re-grouping path: only pairs touching a
        // dirty account are re-decided, and the published snapshot is
        // pinned identical to the batch rebuild (server-check drives an
        // in-process batch engine alongside an HTTP server and compares
        // every epoch).
        match self {
            Engine::AgTr(e) => e.run_epoch_incremental(),
            Engine::AgTs(e) => e.run_epoch_incremental(),
            Engine::Singletons(e) => e.run_epoch_incremental(),
        }
    }

    fn latest(&self) -> std::sync::Arc<EpochSnapshot> {
        match self {
            Engine::AgTr(e) => e.latest(),
            Engine::AgTs(e) => e.latest(),
            Engine::Singletons(e) => e.latest(),
        }
    }

    fn pending_reports(&self) -> usize {
        match self {
            Engine::AgTr(e) => e.pending_reports(),
            Engine::AgTs(e) => e.pending_reports(),
            Engine::Singletons(e) => e.pending_reports(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let flags = parse_flags(args)?;
    let port: u16 = flag_parse(&flags, "port", 0)?;
    let tasks: usize = flag_parse(&flags, "tasks", 64)?;
    let shards: usize = flag_parse(&flags, "shards", 4)?;
    let epoch_interval_ms: u64 = flag_parse(&flags, "epoch-interval-ms", 0)?;
    let method = flags.get("method").map_or("ag-tr", String::as_str);
    if tasks == 0 {
        return Err("--tasks must be at least 1".into());
    }

    let engine = Engine::new(
        method,
        tasks,
        EpochConfig {
            num_shards: shards,
            warm_start: true,
        },
    )?;
    obs::set_enabled(true);

    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {addr}");
    std::io::stdout().flush().ok();

    // The accept loop and the (optional) epoch ticker share the engine
    // behind one mutex; requests stay effectively sequential, the timer
    // just interleaves whole epochs between them.
    let engine = Arc::new(Mutex::new(engine));
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let ticker = (epoch_interval_ms > 0)
        .then(|| spawn_epoch_ticker(epoch_interval_ms, &engine, &stop))
        .transpose()?;

    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("accept error: {e}");
                continue;
            }
        };
        match handle_connection(stream, &engine) {
            Ok(keep_serving) => {
                if !keep_serving {
                    break;
                }
            }
            Err(e) => eprintln!("connection error: {e}"),
        }
    }

    // Clean shutdown: wake the ticker, tell it to stop, wait for any
    // in-flight timer epoch to finish.
    let (flag, wake) = &*stop;
    *flag.lock().expect("stop flag poisoned") = true;
    wake.notify_all();
    if let Some(handle) = ticker {
        handle
            .join()
            .map_err(|_| "epoch ticker panicked".to_string())?;
    }
    Ok(())
}

/// Spawns the timer thread behind `--epoch-interval-ms`: every interval
/// it runs one incremental epoch if (and only if) reports are pending,
/// so an idle server does not spin epoch numbers. The `stop` pair wakes
/// it immediately on shutdown.
fn spawn_epoch_ticker(
    interval_ms: u64,
    engine: &Arc<Mutex<Engine>>,
    stop: &Arc<(Mutex<bool>, Condvar)>,
) -> Result<std::thread::JoinHandle<()>, String> {
    let engine = Arc::clone(engine);
    let stop = Arc::clone(stop);
    let interval = std::time::Duration::from_millis(interval_ms);
    std::thread::Builder::new()
        .name("srtd-epoch-timer".into())
        .spawn(move || {
            let (flag, wake) = &*stop;
            let mut stopped = flag.lock().expect("stop flag poisoned");
            loop {
                let (guard, timeout) = wake
                    .wait_timeout(stopped, interval)
                    .expect("stop flag poisoned");
                stopped = guard;
                if *stopped {
                    return;
                }
                if timeout.timed_out() {
                    // Drop the stop lock while the epoch runs so shutdown
                    // is never blocked behind engine work.
                    drop(stopped);
                    obs::counter_add("server.epoch.timer_ticks", 1);
                    {
                        let mut engine = engine.lock().expect("engine poisoned");
                        if engine.pending_reports() > 0 {
                            engine.run_epoch();
                            obs::counter_add("server.epoch.timer_epochs", 1);
                        }
                    }
                    stopped = flag.lock().expect("stop flag poisoned");
                }
            }
        })
        .map_err(|e| format!("cannot spawn epoch ticker: {e}"))
}

/// Handles one request on `stream`; `Ok(false)` means a clean shutdown
/// was requested.
fn handle_connection(stream: TcpStream, engine: &Mutex<Engine>) -> Result<bool, String> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|e| e.to_string())?;
    let mut parts = request_line.split_whitespace();
    let (Some(verb), Some(path)) = (parts.next(), parts.next()) else {
        return respond(
            reader.into_inner(),
            &Response::json(400, error_json("malformed request line")),
        )
        .map(|()| true);
    };
    let (verb, path) = (verb.to_string(), path.to_string());

    // Headers: only Content-Length matters for this wire format.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad Content-Length".to_string())?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let stream = reader.into_inner();

    let started = std::time::Instant::now();
    let (path, query) = split_query(&path);
    let (response, keep_serving) = {
        let mut engine = engine.lock().expect("engine poisoned");
        route(&verb, path, &query, &body, &mut engine)
    };

    // Per-request telemetry: total + status-class counters and a latency
    // histogram. Recorded before the write so even a failed send counts.
    obs::counter_add("server.http.requests", 1);
    obs::counter_add(
        &format!("server.http.status.{}xx", response.status / 100),
        1,
    );
    obs::observe(
        "server.http.request_us",
        started.elapsed().as_secs_f64() * 1e6,
    );

    respond(stream, &response)?;
    Ok(keep_serving)
}

/// One route's outcome, before it is written to the socket.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            body,
        }
    }
}

/// Dispatches one parsed request; the bool is `false` after `/shutdown`.
fn route(
    verb: &str,
    path: &str,
    query: &[(String, String)],
    body: &str,
    engine: &mut Engine,
) -> (Response, bool) {
    let param = |name: &str| {
        query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let response = match (verb, path) {
        ("GET", "/healthz") => {
            let snap = engine.latest();
            let doc = Json::obj([
                ("status", Json::str("ok")),
                // Ready once a first snapshot has been published: before
                // epoch 1 every truth is still `None`.
                ("ready", (snap.epoch > 0).to_json()),
                ("epoch", snap.epoch.to_json()),
                ("generation", snap.generation.to_json()),
                ("pending", engine.pending_reports().to_json()),
                ("last_epoch_duration_ns", snap.duration_ns.to_json()),
            ]);
            Response::json(200, doc.render())
        }
        ("POST", "/ingest") => match ingest_batch(engine, body) {
            Ok(doc) => Response::json(200, doc.render()),
            Err(e) => Response::json(400, error_json(&e)),
        },
        ("POST", "/epoch") => {
            let snap = engine.run_epoch();
            Response::json(200, snap.to_json().render())
        }
        ("GET", "/truths") => Response::json(200, engine.latest().to_json().render()),
        ("GET", "/groups") => {
            let snap = engine.latest();
            let doc = Json::obj([
                ("epoch", snap.epoch.to_json()),
                ("num_groups", snap.num_groups().to_json()),
                ("labels", snap.labels.to_json()),
                ("group_weights", snap.group_weights.to_json()),
            ]);
            Response::json(200, doc.render())
        }
        ("GET", "/metrics") => match param("format") {
            Some("prom") => Response::text(200, obs::prom::render(&obs::snapshot())),
            Some(other) => Response::json(400, error_json(&format!("unknown format `{other}`"))),
            None => Response::json(200, obs::snapshot().deterministic_json()),
        },
        ("GET", "/metrics/history") => {
            let n = match param("n").map(str::parse::<usize>) {
                None => usize::MAX,
                Some(Ok(n)) => n,
                Some(Err(_)) => {
                    return (
                        Response::json(400, error_json("`n` must be a non-negative integer")),
                        true,
                    )
                }
            };
            let windows = obs::history(n);
            let doc = Json::obj([
                ("count", windows.len().to_json()),
                ("windows", Json::arr(windows.iter().map(ToJson::to_json))),
            ]);
            Response::json(200, doc.render())
        }
        ("GET", "/trace") => match obs::latest_window() {
            Some(w) => {
                let doc = Json::obj([
                    ("window", w.index.to_json()),
                    ("label", Json::str(w.label.as_str())),
                    ("trace", Json::arr(w.trace.iter().map(ToJson::to_json))),
                ]);
                Response::json(200, doc.render())
            }
            None => Response::json(404, error_json("no completed epoch window yet")),
        },
        ("POST", "/shutdown") => {
            let doc = Json::obj([("status", Json::str("shutting down"))]);
            return (Response::json(200, doc.render()), false);
        }
        _ => Response::json(404, error_json(&format!("no route {verb} {path}"))),
    };
    (response, true)
}

/// Splits `/path?k=v&k2=v2` into the path and its query pairs (values
/// may be empty; no percent-decoding — the wire format never needs it).
fn split_query(path: &str) -> (&str, Vec<(String, String)>) {
    match path.split_once('?') {
        None => (path, Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (pair.to_string(), String::new()),
                })
                .collect();
            (path, pairs)
        }
    }
}

/// Parses an ingest body and feeds each report to the engine. Invalid
/// JSON is a request-level error; per-report rejections are part of a
/// successful response.
fn ingest_batch(engine: &mut Engine, body: &str) -> Result<Json, String> {
    let doc = parse(body).map_err(|e| e.to_string())?;
    let Json::Obj(fields) = &doc else {
        return Err("expected a JSON object".into());
    };
    let reports = fields
        .iter()
        .find(|(k, _)| k == "reports")
        .map(|(_, v)| v)
        .ok_or_else(|| "missing `reports` array".to_string())?;
    let Json::Arr(reports) = reports else {
        return Err("`reports` must be an array".into());
    };
    let mut accepted = 0usize;
    let mut rejections = Vec::new();
    for (i, report) in reports.iter().enumerate() {
        let (account, task, value, timestamp) = report_fields(report)
            .ok_or_else(|| format!("report {i}: need account, task, value, timestamp"))?;
        match engine.ingest(account, task, value, timestamp) {
            Ok(()) => accepted += 1,
            Err(e) => rejections.push(Json::obj([
                ("index", i.to_json()),
                ("reason", Json::str(e.to_string())),
            ])),
        }
    }
    Ok(Json::obj([
        ("accepted", accepted.to_json()),
        ("rejected", rejections.len().to_json()),
        ("rejections", Json::Arr(rejections)),
        ("pending", engine.pending_reports().to_json()),
    ]))
}

fn report_fields(report: &Json) -> Option<(usize, usize, f64, f64)> {
    let Json::Obj(fields) = report else {
        return None;
    };
    let num = |name: &str| -> Option<f64> {
        fields.iter().find_map(|(k, v)| match v {
            Json::Num(x) if k == name => Some(*x),
            _ => None,
        })
    };
    let index = |name: &str| -> Option<usize> {
        let x = num(name)?;
        (x.fract() == 0.0 && x >= 0.0).then_some(x as usize)
    };
    Some((
        index("account")?,
        index("task")?,
        num("value")?,
        num("timestamp")?,
    ))
}

fn error_json(message: &str) -> String {
    Json::obj([("error", Json::str(message))]).render()
}

fn respond(mut stream: TcpStream, response: &Response) -> Result<(), String> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let wire = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.content_type,
        response.body.len(),
        response.body
    );
    stream
        .write_all(wire.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| e.to_string())
}

/// Flags that take no value; their presence alone is the signal.
const BOOLEAN_FLAGS: &[&str] = &[];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_string(), String::from("1"));
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{raw}`")),
        None => Ok(default),
    }
}
