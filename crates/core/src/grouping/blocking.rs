//! Blocking / candidate generation for the pairwise grouping signals.
//!
//! Every grouping method in this crate ends in the same shape: some
//! pairwise score is thresholded and the surviving pairs become edges of a
//! components problem. Visiting all `n(n−1)/2` pairs is what makes the
//! signals quadratic in accounts; this module buckets accounts by cheap
//! invariants so only *same-or-adjacent-bucket* pairs ever reach a score
//! computation, while provably generating a **superset** of the pairs the
//! threshold would keep — blocking can only skip pairs the exhaustive path
//! would also reject, so grouping decisions stay bit-identical.
//!
//! Bucket keys per signal:
//!
//! * **AG-TS** ([`ts_candidates`]) — a two-level prefix filter over
//!   globally-rare tasks. Eq. 6's affinity `A = (T − 2L)(T + L)/m` can
//!   only exceed a non-negative `ρ` when `T > 2L`, which forces the
//!   Jaccard overlap of the two task sets above 2/3; in particular any
//!   qualifying pair shares strictly more than `2a/3` tasks, where `a` is
//!   either set's size (see the proof on [`ts_candidates`]). The k-prefix
//!   theorem then guarantees **two** shared tasks inside each set's
//!   `⌈a/3⌉+1`-element rarity prefix, so accounts are indexed under
//!   unordered *pairs* of prefix tasks (the blocking second key) instead
//!   of single tasks — a bucket only forms when two accounts agree on two
//!   rare tasks at once, which happens orders of magnitude less often
//!   than agreeing on one. A length-ratio filter (`3·min(a,b) >
//!   2·max(a,b)`, forced by `T ≤ min` and `T > 2·max/3`) prunes the
//!   emitted pairs further. Both levels are deterministic prefix
//!   filtering from the set-similarity-join literature (no MinHash false
//!   negatives).
//! * **AG-TR** ([`tr_candidates`]) — quantized trajectory endpoints, a
//!   coarsening of LB_Kim. The first-first and last-last alignments lie on
//!   every DTW warping path, so each squared endpoint difference is itself
//!   a lower bound on the pair's raw DTW cost; `D < φ` forces every
//!   endpoint coordinate within `√φ`. Accounts hash to the 4-D cell of
//!   their `(X_first, X_last, Y_first, Y_last)` endpoints at cell width
//!   `√φ`, and candidates are same-cell plus adjacent-cell pairs (a ≥ 2
//!   cell gap on any axis already proves `D ≥ φ`). Inactive accounts have
//!   no endpoints and stay out of every bucket — exactly the singleton
//!   treatment the exhaustive path enforces by masking their rows to `∞`.
//! * **AG-FP** — the fingerprint signal is centroid-based, not pairwise;
//!   its blocking lives in `srtd-cluster` as a norm-sketch bound on the
//!   k-means assignment step. The counters recorded here keep the three
//!   signals comparable under one `grouping.pairs.*` scheme.

use srtd_runtime::obs;
use std::collections::HashMap;

/// The outcome of one blocking pass: the candidate pairs that must be
/// scored, plus the bookkeeping the obs layer and benches report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidates {
    /// Candidate pairs `(i, j)` with `i < j`, sorted lexicographically,
    /// deduplicated. A superset of the pairs the signal's threshold keeps.
    pub pairs: Vec<(usize, usize)>,
    /// Non-empty buckets the accounts hashed into.
    pub buckets: usize,
    /// Pairs the exhaustive path would visit: `n(n−1)/2` without a dirty
    /// mask, and only pairs touching a dirty account with one.
    pub total_pairs: u64,
}

impl Candidates {
    /// Pairs blocking skipped (never scored).
    pub fn skipped(&self) -> u64 {
        self.total_pairs.saturating_sub(self.pairs.len() as u64)
    }

    /// An exhaustive (no-blocking) candidate set over `n` accounts,
    /// optionally restricted to pairs touching a dirty account. Used by
    /// the fallback paths so the `grouping.pairs.*` counters stay a
    /// partition (`candidate == total`, nothing skipped).
    pub fn exhaustive(n: usize, dirty: Option<&[bool]>) -> Self {
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if dirty.is_none_or(|d| d[i] || d[j]) {
                    pairs.push((i, j));
                }
            }
        }
        let total_pairs = pairs.len() as u64;
        Self {
            pairs,
            buckets: usize::from(n > 0),
            total_pairs,
        }
    }

    /// Records the `grouping.pairs.{total,candidate,skipped_by_blocking}`
    /// counters (global and per-signal) and the `grouping.buckets` gauges
    /// for this pass. `signal` is the short lowercase name (`ag_ts`,
    /// `ag_tr`, `ag_fp`).
    pub fn record(&self, signal: &str) {
        record_pair_counts(
            signal,
            self.total_pairs,
            self.pairs.len() as u64,
            self.buckets as u64,
        );
    }
}

/// Shared recording of the blocking counters: `total` pairs the exhaustive
/// path would visit, of which `candidate` were actually scored; the
/// remainder were skipped by blocking. Also sets the bucket gauges.
pub fn record_pair_counts(signal: &str, total: u64, candidate: u64, buckets: u64) {
    let skipped = total.saturating_sub(candidate);
    obs::counter_add("grouping.pairs.total", total);
    obs::counter_add("grouping.pairs.candidate", candidate);
    obs::counter_add("grouping.pairs.skipped_by_blocking", skipped);
    obs::counter_add(&format!("grouping.{signal}.pairs.total"), total);
    obs::counter_add(&format!("grouping.{signal}.pairs.candidate"), candidate);
    obs::counter_add(
        &format!("grouping.{signal}.pairs.skipped_by_blocking"),
        skipped,
    );
    obs::gauge_set("grouping.buckets", buckets as f64);
    obs::gauge_set(&format!("grouping.{signal}.buckets"), buckets as f64);
}

/// Unordered pairs over `n` accounts that touch at least one dirty
/// account; `n(n−1)/2` when no mask is given.
fn total_pairs(n: usize, dirty: Option<&[bool]>) -> u64 {
    let n = n as u64;
    let all = n * n.saturating_sub(1) / 2;
    match dirty {
        None => all,
        Some(mask) => {
            let clean = mask.iter().filter(|&&d| !d).count() as u64;
            all - clean * clean.saturating_sub(1) / 2
        }
    }
}

/// AG-TS candidate generation by two-level prefix filtering over task
/// rarity: accounts bucket under **pairs** of rare tasks (the second
/// blocking key), and bucket members must additionally pass a
/// length-ratio filter before a pair is emitted.
///
/// `task_sets[i]` is account `i`'s sorted accomplished-task list;
/// `num_tasks` is the campaign's `m`. Sound for thresholds `ρ ≥ 0` (the
/// caller must fall back to the exhaustive path for negative `ρ`):
///
/// **Overlap bound.** Write `a = |S_i|`, `b = |S_j|`,
/// `T = |S_i ∩ S_j|`, `L = a + b − 2T`. `A > ρ ≥ 0` needs `T − 2L > 0`
/// (the factor `(T + L)/m` is non-negative), i.e. `5T > 2(a + b)`.
/// Combined with `T ≤ min(a, b)` this gives `T > 2a/3` *and*
/// `T > 2b/3`: if `b ≥ a` then `T > 2(a+b)/5 ≥ 4a/5 > 2a/3`; if `b < a`
/// then `b ≥ T > 2(a+b)/5` forces `b > 2a/3` and so
/// `T > 2(a + 2a/3)/5 = 2a/3`. So qualifying pairs have integer overlap
/// `T ≥ ⌊2a/3⌋ + 1` (and symmetrically for `b`).
///
/// **Pair-key soundness (k-prefix theorem, k = 2).** Fix any global
/// total order on tasks and sort each set by it; let `c_1 < c_2 < …`
/// be the common tasks of a qualifying pair in that order. In `S_i`,
/// the tasks ranked after `c_2` include the `T − 2` common tasks
/// `c_3, …, c_T`, so `c_2` sits at position `≤ a − (T − 2) = a − T + 2`
/// — with `T ≥ ⌊2a/3⌋ + 1` that is `≤ ⌈a/3⌉ + 1`. Hence `c_1` and `c_2`
/// *both* lie in the `min(⌈a/3⌉ + 1, a)`-element prefix of `S_i`, and
/// symmetrically in `S_j`'s prefix: the two accounts share the unordered
/// key `{c_1, c_2}`. Indexing each account under all `C(p, 2)` task
/// pairs of its `p`-element rarity prefix therefore co-buckets every
/// qualifying pair with `a, b ≥ 2` (note `a ≥ 2 ⟹ T ≥ 2`, so `c_2`
/// exists). A qualifying pair with `a = 1` forces `T = 1` and then
/// `b < 3T/2` ⟹ `b = 1` — identical singletons — which bucket under the
/// degenerate key `(t, t)`. Ordering tasks by ascending global frequency
/// keeps the pair buckets tiny: two accounts must now agree on two rare
/// tasks at once, which on campaign-scale workloads cuts candidates by
/// orders of magnitude compared to the single-task prefix filter.
///
/// **Length-ratio filter.** `T ≤ min(a, b)` and `T > 2·max(a, b)/3`
/// force `3·min(a, b) > 2·max(a, b)`; bucket members failing this can
/// never qualify and are not emitted.
///
/// With a `dirty` mask, only pairs touching a dirty account are emitted
/// (the incremental re-grouping path); `total_pairs` shrinks accordingly.
pub fn ts_candidates(
    task_sets: &[Vec<usize>],
    num_tasks: usize,
    dirty: Option<&[bool]>,
) -> Candidates {
    let n = task_sets.len();
    if let Some(mask) = dirty {
        assert_eq!(mask.len(), n, "dirty mask must cover every account");
    }
    let total = total_pairs(n, dirty);

    // Global task frequencies, then a total order: rarest first, ties by
    // task id (deterministic).
    let mut freq = vec![0u32; num_tasks];
    for set in task_sets {
        for &t in set {
            freq[t] += 1;
        }
    }
    let mut order: Vec<usize> = (0..num_tasks).collect();
    order.sort_by_key(|&t| (freq[t], t));
    let mut rank = vec![0usize; num_tasks];
    for (r, &t) in order.iter().enumerate() {
        rank[t] = r;
    }

    // Index every account under all unordered pairs from the
    // min(⌈a/3⌉ + 1, a) rarest tasks of its set; singletons under the
    // degenerate (t, t) key. Keys are rank-ordered task-id pairs, so the
    // same two tasks form the same key in every account.
    let mut buckets: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    let mut scratch: Vec<usize> = Vec::new();
    for (i, set) in task_sets.iter().enumerate() {
        if set.is_empty() {
            continue;
        }
        if let [t] = set.as_slice() {
            buckets.entry((*t, *t)).or_default().push(i);
            continue;
        }
        scratch.clear();
        scratch.extend_from_slice(set);
        scratch.sort_by_key(|&t| rank[t]);
        let prefix = (set.len().div_ceil(3) + 1).min(set.len());
        for u in 0..prefix {
            for v in u + 1..prefix {
                buckets.entry((scratch[u], scratch[v])).or_default().push(i);
            }
        }
    }

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for bucket in buckets.values() {
        for (x, &i) in bucket.iter().enumerate() {
            let a = task_sets[i].len();
            for &j in &bucket[x + 1..] {
                let b = task_sets[j].len();
                if 3 * a.min(b) > 2 * a.max(b) && dirty.is_none_or(|d| d[i] || d[j]) {
                    pairs.push((i.min(j), i.max(j)));
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    Candidates {
        pairs,
        buckets: buckets.len(),
        total_pairs: total,
    }
}

/// The 4-D endpoint cell of one trajectory at cell width `w`; `None` for
/// inactive accounts (no reports, no endpoints).
fn endpoint_cell(x: &[f64], y: &[f64], w: f64) -> Option<[i64; 4]> {
    let (&x0, &xl) = (x.first()?, x.last()?);
    let (&y0, &yl) = (y.first()?, y.last()?);
    let q = |v: f64| (v / w).floor() as i64;
    Some([q(x0), q(xl), q(y0), q(yl)])
}

/// AG-TR candidate generation by quantized trajectory endpoints.
///
/// `trajectories[i]` is account `i`'s `(X_i, Y_i)` series pair (as
/// produced by `AgTr::trajectories`); `phi` is the Eq. 8 threshold in raw
/// DTW-cost space. Soundness: every warping path aligns `X_i[0]` with
/// `X_j[0]` and the two last points with each other, and all cell costs
/// are non-negative squared differences, so each of the four squared
/// endpoint differences individually lower-bounds
/// `D = DTW(X_i, X_j) + DTW(Y_i, Y_j)` (this also holds for banded DTW,
/// whose paths still include both corner cells). `D < φ` therefore forces
/// every endpoint difference below `√φ` — and two values at least two
/// cells apart at width `√φ` differ by more than `√φ`. Same-cell and
/// adjacent-cell pairs are thus a superset of every below-φ pair.
///
/// Length is used only through its empty/non-empty coarsening: DTW warps
/// freely across unequal lengths, so a finer length key would not be
/// sound. Inactive accounts stay out of all buckets and never pair.
///
/// # Panics
///
/// Panics if `phi` is not finite and positive.
pub fn tr_candidates(
    trajectories: &[(Vec<f64>, Vec<f64>)],
    phi: f64,
    dirty: Option<&[bool]>,
) -> Candidates {
    assert!(
        phi.is_finite() && phi > 0.0,
        "endpoint blocking needs a positive finite threshold"
    );
    let n = trajectories.len();
    if let Some(mask) = dirty {
        assert_eq!(mask.len(), n, "dirty mask must cover every account");
    }
    let total = total_pairs(n, dirty);
    let w = phi.sqrt();

    let mut cells: HashMap<[i64; 4], Vec<usize>> = HashMap::new();
    for (i, (x, y)) in trajectories.iter().enumerate() {
        if let Some(key) = endpoint_cell(x, y, w) {
            cells.entry(key).or_default().push(i);
        }
    }
    // Deterministic traversal order regardless of hash state.
    let mut keys: Vec<[i64; 4]> = cells.keys().copied().collect();
    keys.sort_unstable();

    // Each lexicographically positive offset pairs every cell with one
    // neighbor exactly once; the zero offset covers within-cell pairs.
    let mut offsets: Vec<[i64; 4]> = Vec::new();
    for d0 in -1i64..=1 {
        for d1 in -1i64..=1 {
            for d2 in -1i64..=1 {
                for d3 in -1i64..=1 {
                    let off = [d0, d1, d2, d3];
                    if off > [0, 0, 0, 0] {
                        offsets.push(off);
                    }
                }
            }
        }
    }

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut emit = |i: usize, j: usize| {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        if dirty.is_none_or(|d| d[a] || d[b]) {
            pairs.push((a, b));
        }
    };
    for key in &keys {
        let members = &cells[key];
        for (x, &i) in members.iter().enumerate() {
            for &j in &members[x + 1..] {
                emit(i, j);
            }
        }
        for off in &offsets {
            let neighbor = [
                key[0] + off[0],
                key[1] + off[1],
                key[2] + off[2],
                key[3] + off[3],
            ];
            if let Some(others) = cells.get(&neighbor) {
                for &i in members {
                    for &j in others {
                        emit(i, j);
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    Candidates {
        pairs,
        buckets: keys.len(),
        total_pairs: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::{Rng, SeedableRng, StdRng};

    fn contains(c: &Candidates, i: usize, j: usize) -> bool {
        c.pairs.binary_search(&(i.min(j), i.max(j))).is_ok()
    }

    /// Eq. 6 for two sorted task sets (test oracle).
    fn affinity(a: &[usize], b: &[usize], m: f64) -> f64 {
        let t = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
        let l = (a.len() - t) + (b.len() - t);
        (t as f64 - 2.0 * l as f64) * (t + l) as f64 / m
    }

    #[test]
    fn ts_candidates_cover_every_above_threshold_pair() {
        srtd_runtime::prop::check(
            |rng| {
                let m = rng.gen_range(3usize..12);
                let sets = srtd_runtime::prop::vec_with(rng, 2..14, |r| {
                    let mut s: Vec<usize> =
                        (0..m).filter(|_| r.gen_range(0f64..1.0) < 0.4).collect();
                    s.dedup();
                    s
                });
                let rho = rng.gen_range(0f64..2.0);
                (sets, m, rho)
            },
            |(sets, m, rho)| {
                let c = ts_candidates(sets, *m, None);
                for i in 0..sets.len() {
                    for j in i + 1..sets.len() {
                        let a = affinity(&sets[i], &sets[j], *m as f64);
                        if a > *rho {
                            srtd_runtime::prop_assert!(
                                contains(&c, i, j),
                                "pair ({i},{j}) with affinity {a} > ρ={rho} was blocked"
                            );
                        }
                    }
                }
                srtd_runtime::prop_assert!(c.pairs.len() as u64 + c.skipped() == c.total_pairs);
                Ok(())
            },
        );
    }

    #[test]
    fn ts_disjoint_rare_sets_are_blocked() {
        // Two accounts with disjoint sets over many tasks: affinity is
        // negative, and their rare-task prefixes cannot collide.
        let sets = vec![vec![0, 1, 2], vec![7, 8, 9]];
        let c = ts_candidates(&sets, 10, None);
        assert!(c.pairs.is_empty());
        assert_eq!(c.total_pairs, 1);
        assert_eq!(c.skipped(), 1);
    }

    #[test]
    fn ts_identical_sets_are_candidates() {
        let sets = vec![vec![1, 4, 6], vec![1, 4, 6], vec![1, 4, 6]];
        let c = ts_candidates(&sets, 8, None);
        assert_eq!(c.pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn ts_empty_sets_never_pair() {
        let sets = vec![vec![], vec![0, 1], vec![]];
        let c = ts_candidates(&sets, 4, None);
        assert!(!contains(&c, 0, 2));
        assert!(!contains(&c, 0, 1));
    }

    #[test]
    fn ts_identical_singletons_pair_and_distinct_singletons_do_not() {
        // a = 1 qualifying pairs force b = 1 with the same task; the
        // degenerate (t, t) key must catch exactly those.
        let sets = vec![vec![3], vec![3], vec![5], vec![]];
        let c = ts_candidates(&sets, 8, None);
        assert_eq!(c.pairs, vec![(0, 1)]);
    }

    /// The motivating workload for the pair key: every account has the
    /// same set size (fixed tasks-per-account campaigns), so pure length
    /// filters prune nothing — yet sharing *two* rare tasks is far rarer
    /// than sharing one. The pair key must stay a superset of the
    /// qualifying pairs while producing far fewer candidates than the
    /// single-task prefix filter it replaced.
    #[test]
    fn ts_pair_key_prunes_fixed_size_campaigns() {
        let m = 60usize;
        let mut rng = StdRng::seed_from_u64(42);
        let sets: Vec<Vec<usize>> = (0..300)
            .map(|_| {
                let mut s: Vec<usize> = Vec::new();
                while s.len() < 6 {
                    let t = rng.gen_range(0usize..m);
                    if !s.contains(&t) {
                        s.push(t);
                    }
                }
                s.sort_unstable();
                s
            })
            .collect();
        let c = ts_candidates(&sets, m, None);
        // Superset check against the Eq. 6 oracle at ρ = 0.
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                if affinity(&sets[i], &sets[j], m as f64) > 0.0 {
                    assert!(contains(&c, i, j), "qualifying pair ({i},{j}) blocked");
                }
            }
        }
        // The single-task prefix filter co-buckets every two accounts
        // sharing one rare task; reproduce its candidate count here and
        // require the pair key to beat it by a wide margin.
        let mut freq = vec![0u32; m];
        for s in &sets {
            for &t in s {
                freq[t] += 1;
            }
        }
        let mut single: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, s) in sets.iter().enumerate() {
            let mut by_rank = s.clone();
            by_rank.sort_by_key(|&t| (freq[t], t));
            for &t in &by_rank[..s.len().div_ceil(3)] {
                single[t].push(i);
            }
        }
        let mut old_pairs: Vec<(usize, usize)> = Vec::new();
        for b in &single {
            for (x, &i) in b.iter().enumerate() {
                for &j in &b[x + 1..] {
                    old_pairs.push((i.min(j), i.max(j)));
                }
            }
        }
        old_pairs.sort_unstable();
        old_pairs.dedup();
        assert!(
            c.pairs.len() * 10 <= old_pairs.len(),
            "pair key produced {} candidates vs {} single-key — expected ≥10× fewer",
            c.pairs.len(),
            old_pairs.len()
        );
    }

    #[test]
    fn ts_dirty_mask_restricts_to_touching_pairs() {
        let sets = vec![vec![0, 1], vec![0, 1], vec![0, 1]];
        let mut mask = vec![false, false, true];
        let c = ts_candidates(&sets, 4, Some(&mask));
        assert_eq!(c.pairs, vec![(0, 2), (1, 2)]);
        assert_eq!(c.total_pairs, 2);
        mask = vec![false; 3];
        let none = ts_candidates(&sets, 4, Some(&mask));
        assert!(none.pairs.is_empty());
        assert_eq!(none.total_pairs, 0);
    }

    #[test]
    fn tr_candidates_cover_every_below_phi_pair() {
        use srtd_timeseries::Dtw;
        srtd_runtime::prop::check(
            |rng| {
                let items = srtd_runtime::prop::vec_with(rng, 2..10, |r| {
                    let len = r.gen_range(0usize..7);
                    (
                        (0..len)
                            .map(|_| r.gen_range(-6f64..6.0))
                            .collect::<Vec<f64>>(),
                        (0..len)
                            .map(|_| r.gen_range(-6f64..6.0))
                            .collect::<Vec<f64>>(),
                    )
                });
                let phi = rng.gen_range(0.1f64..30.0);
                (items, phi)
            },
            |(items, phi)| {
                let c = tr_candidates(items, *phi, None);
                let dtw = Dtw::new().raw();
                for i in 0..items.len() {
                    for j in i + 1..items.len() {
                        if items[i].0.is_empty() || items[j].0.is_empty() {
                            continue; // inactive accounts stay singletons
                        }
                        let d = dtw.distance(&items[i].0, &items[j].0)
                            + dtw.distance(&items[i].1, &items[j].1);
                        if d < *phi {
                            srtd_runtime::prop_assert!(
                                contains(&c, i, j),
                                "pair ({i},{j}) with D={d} < φ={phi} was blocked"
                            );
                        }
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn tr_adjacent_cells_pair_and_distant_cells_do_not() {
        // φ = 1 → cell width 1. Endpoints 0.9 vs 1.1 straddle a boundary
        // (adjacent cells, must pair); 0.0 vs 5.0 are far (blocked).
        let trajs = vec![
            (vec![0.9], vec![0.0]),
            (vec![1.1], vec![0.0]),
            (vec![5.0], vec![0.0]),
        ];
        let c = tr_candidates(&trajs, 1.0, None);
        assert!(contains(&c, 0, 1));
        assert!(!contains(&c, 0, 2));
        assert!(!contains(&c, 1, 2));
        assert_eq!(c.buckets, 3);
    }

    #[test]
    fn tr_inactive_accounts_have_no_candidates() {
        let trajs = vec![
            (Vec::new(), Vec::new()),
            (vec![1.0], vec![1.0]),
            (Vec::new(), Vec::new()),
        ];
        let c = tr_candidates(&trajs, 1.0, None);
        assert!(c.pairs.is_empty());
        assert_eq!(c.buckets, 1);
    }

    #[test]
    fn tr_dirty_mask_restricts_pairs() {
        let trajs: Vec<_> = (0..4).map(|_| (vec![1.0, 2.0], vec![0.5, 0.9])).collect();
        let mask = vec![true, false, false, false];
        let c = tr_candidates(&trajs, 1.0, Some(&mask));
        assert_eq!(c.pairs, vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(c.total_pairs, 3);
    }

    #[test]
    fn exhaustive_candidates_visit_everything() {
        let c = Candidates::exhaustive(4, None);
        assert_eq!(c.pairs.len(), 6);
        assert_eq!(c.total_pairs, 6);
        assert_eq!(c.skipped(), 0);
        let masked = Candidates::exhaustive(4, Some(&[false, true, false, false]));
        assert_eq!(masked.pairs, vec![(0, 1), (1, 2), (1, 3)]);
    }

    #[test]
    fn candidate_order_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let trajs: Vec<(Vec<f64>, Vec<f64>)> = (0..30)
            .map(|_| {
                let len = rng.gen_range(1usize..5);
                (
                    (0..len).map(|_| rng.gen_range(0f64..4.0)).collect(),
                    (0..len).map(|_| rng.gen_range(0f64..4.0)).collect(),
                )
            })
            .collect();
        let a = tr_candidates(&trajs, 2.0, None);
        let b = tr_candidates(&trajs, 2.0, None);
        assert_eq!(a, b);
        assert!(a.pairs.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
    }

    #[test]
    #[should_panic(expected = "positive finite threshold")]
    fn tr_rejects_non_finite_phi() {
        tr_candidates(&[], f64::INFINITY, None);
    }
}
