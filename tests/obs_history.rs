//! Golden tests for the epoch telemetry timeline: per-epoch delta
//! exports must be byte-identical across worker-thread counts, window
//! deltas must tile to the cumulative counters, the ring buffer must
//! evict oldest-first, and empty windows must export cleanly.
//!
//! The obs registry is process-wide, so every test serializes on one
//! lock and resets the registry before running.

use std::sync::Mutex;

use sybil_td::core::{SingletonGrouping, SybilResistantTd};
use sybil_td::platform::{EpochConfig, EpochEngine};
use sybil_td::runtime::obs;
use sybil_td::runtime::parallel::set_max_threads;

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const TASKS: usize = 8;

/// Drives a 3-epoch lifecycle: a large cold batch, a small incremental
/// batch, then a steady-state empty epoch.
fn drive_three_epochs() -> Vec<obs::WindowRecord> {
    let mut engine = EpochEngine::new(
        SybilResistantTd::new(SingletonGrouping),
        TASKS,
        EpochConfig::default(),
    );
    let mut windows = Vec::new();
    for a in 0..5usize {
        for t in 0..4usize {
            engine
                .ingest(a, t, -70.0 + a as f64 + t as f64, (a * 10 + t) as f64)
                .expect("valid report");
        }
    }
    engine.run_epoch();
    windows.push(obs::latest_window().expect("epoch 1 window"));
    engine.ingest(5, 4, -68.0, 60.0).expect("valid report");
    engine.run_epoch();
    windows.push(obs::latest_window().expect("epoch 2 window"));
    engine.run_epoch();
    windows.push(obs::latest_window().expect("epoch 3 window"));
    windows
}

#[test]
fn per_epoch_deltas_are_byte_identical_across_thread_counts() {
    let _g = guard();
    let mut exports: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 4] {
        set_max_threads(threads);
        obs::set_enabled(true);
        obs::reset();
        let windows = drive_three_epochs();
        obs::set_enabled(false);
        assert_eq!(windows.len(), 3);
        exports.push(
            windows
                .iter()
                .map(obs::WindowRecord::deterministic_json)
                .collect(),
        );
    }
    set_max_threads(0);
    assert_eq!(
        exports[0], exports[1],
        "per-window deterministic exports must not depend on the worker count"
    );
    for (i, export) in exports[0].iter().enumerate() {
        assert!(
            export.contains(&format!("\"label\":\"epoch-{}\"", i + 1)),
            "window {i} mislabelled:\n{export}"
        );
    }
}

#[test]
fn window_deltas_tile_to_the_cumulative_counters() {
    let _g = guard();
    obs::set_enabled(true);
    obs::reset();
    let windows = drive_three_epochs();
    let cumulative = obs::snapshot();
    obs::set_enabled(false);

    // Epoch attribution: the big batch folds in window 1, the increment
    // in window 2, the steady-state epoch folds nothing.
    let folded = |w: &obs::WindowRecord| {
        w.report
            .counters
            .iter()
            .find(|(n, _)| n == "server.epoch.folded")
            .map_or(0, |(_, v)| *v)
    };
    assert_eq!(folded(&windows[0]), 20);
    assert_eq!(folded(&windows[1]), 1);
    assert_eq!(folded(&windows[2]), 0);

    // Every cumulative counter equals the sum of its window deltas:
    // consecutive windows tile the timeline with no gaps or overlaps.
    for (name, total) in &cumulative.counters {
        let delta_sum: u64 = windows
            .iter()
            .flat_map(|w| &w.report.counters)
            .filter(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(
            delta_sum, *total,
            "`{name}`: window deltas must sum to the cumulative value"
        );
    }

    // The trace tree of every epoch attributes the pipeline stages under
    // the epoch span, with the framework's own spans nested below the
    // discover stage.
    for w in &windows {
        let stages = w.stage_names();
        for stage in ["server.epoch", "epoch.discover", "epoch.fold", "epoch.swap"] {
            assert!(
                stages.contains(&stage),
                "window {} trace is missing `{stage}`: {stages:?}",
                w.index
            );
        }
        let root = &w.trace[0];
        assert_eq!(root.name, "server.epoch");
        assert_eq!(root.count, 1, "one epoch span per window");
        let discover = root
            .children
            .iter()
            .find(|c| c.name == "epoch.discover")
            .expect("discover stage");
        assert_eq!(discover.count, 1, "each stage runs once per epoch");
        assert!(
            discover
                .children
                .iter()
                .any(|c| c.name == "framework.discover"),
            "framework spans must nest under the discover stage: {:?}",
            discover.children
        );
    }
}

#[test]
fn ring_buffer_evicts_oldest_and_capacity_one_keeps_latest() {
    let _g = guard();
    obs::set_enabled(true);
    obs::reset();
    obs::set_history_capacity(2);
    let windows = drive_three_epochs();
    let retained = obs::history(usize::MAX);
    assert_eq!(
        retained.iter().map(|w| w.index).collect::<Vec<_>>(),
        vec![2, 3],
        "capacity 2 must evict the oldest window"
    );
    assert_eq!(obs::history(1).len(), 1);
    assert_eq!(obs::history(1)[0].index, 3);
    // Eviction drops retention, not the record handed back at the time.
    assert_eq!(windows[0].index, 1);

    obs::set_history_capacity(1);
    obs::window_begin();
    obs::window_end("only");
    let retained = obs::history(usize::MAX);
    obs::set_history_capacity(0);
    obs::set_enabled(false);
    assert_eq!(retained.len(), 1);
    assert_eq!(retained[0].label, "only");
}

#[test]
fn empty_windows_export_cleanly() {
    let _g = guard();
    obs::set_enabled(true);
    obs::reset();
    assert!(
        obs::window_end("never opened").is_none(),
        "ending without a begin is a no-op"
    );
    obs::window_begin();
    let w = obs::window_end("idle").expect("open window must close");
    obs::set_enabled(false);
    assert!(w.report.counters.is_empty());
    assert!(w.report.histograms.is_empty());
    assert!(w.report.events.is_empty());
    assert!(w.trace.is_empty());
    let det = w.deterministic_json();
    assert_eq!(
        det,
        r#"{"window":1,"label":"idle","counters":{},"histograms":{},"events":[],"trace":[]}"#
    );
}
