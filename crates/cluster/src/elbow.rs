//! The elbow method for estimating the number of clusters.
//!
//! §IV-C of the paper: run k-means for `k = 1..n`, record the SSE for each
//! `k`, and "choose the value of k at which SSE starts to diminish". This
//! module locates that knee with the discrete maximum-curvature criterion
//! (the largest drop in successive SSE improvements), which is the standard
//! formalization of the eyeball rule the paper cites (Kodinariya & Makwana
//! 2013).

use crate::kmeans::{KMeans, KMeansConfig};

/// Outcome of an elbow sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ElbowResult {
    /// The estimated number of clusters.
    pub k: usize,
    /// SSE per candidate `k`, starting at `k = 1`.
    pub sse_curve: Vec<f64>,
}

/// Estimates the number of clusters in `points` by the elbow method.
///
/// Runs k-means for every `k` in `1..=max_k` (clamped to the number of
/// points) and picks the knee of the SSE curve. `base` supplies shared
/// k-means settings (seed, restarts); its `k` field is overridden by the
/// sweep.
///
/// # Panics
///
/// Panics if `points` is empty or `max_k == 0`.
///
/// # Examples
///
/// ```
/// use srtd_cluster::{elbow, KMeansConfig};
///
/// let points = vec![
///     vec![0.0], vec![0.1], vec![0.2],
///     vec![10.0], vec![10.1], vec![10.2],
///     vec![20.0], vec![20.1], vec![20.2],
/// ];
/// let result = elbow(&points, 6, KMeansConfig::new(1));
/// assert_eq!(result.k, 3);
/// ```
pub fn elbow(points: &[Vec<f64>], max_k: usize, base: KMeansConfig) -> ElbowResult {
    assert!(
        !points.is_empty(),
        "cannot estimate k for an empty point set"
    );
    assert!(max_k > 0, "max_k must be positive");
    let _span = srtd_runtime::obs::span("cluster.elbow");
    let max_k = max_k.min(points.len());
    let sse_curve: Vec<f64> = (1..=max_k)
        .map(|k| {
            let cfg = KMeansConfig { k, ..base };
            KMeans::new(cfg).fit(points).sse
        })
        .collect();
    let k = knee_of(&sse_curve);
    srtd_runtime::obs::event(
        "cluster.elbow",
        [
            ("k", srtd_runtime::json::ToJson::to_json(&k)),
            ("max_k", srtd_runtime::json::ToJson::to_json(&max_k)),
            (
                "candidates",
                srtd_runtime::json::ToJson::to_json(&sse_curve.len()),
            ),
        ],
    );
    ElbowResult { k, sse_curve }
}

/// Index (1-based `k`) of the knee of a non-increasing SSE curve.
///
/// Uses the distance-to-chord criterion (the "Kneedle" idea): normalize the
/// curve to the unit square, draw the chord from the first to the last
/// point, and pick the `k` whose point lies farthest below the chord. This
/// matches the visual "where the curve starts to diminish" reading the
/// paper describes, and unlike discrete curvature it lands on the last
/// significant drop for evenly separated clusters.
///
/// Degenerate curves fall back sensibly: flat curves (including all-zero
/// ones) mean one blob (`k = 1`); a two-point curve returns 2 only if the
/// second cluster removed at least 90% of the variance.
pub fn knee_of(sse: &[f64]) -> usize {
    match sse.len() {
        0 | 1 => 1,
        2 => {
            if sse[0] > 0.0 && sse[1] < 0.1 * sse[0] {
                2
            } else {
                1
            }
        }
        _ => {
            let first = sse[0];
            let last = *sse.last().expect("len >= 3");
            let total_drop = first - last;
            // A flat curve (no meaningful drop anywhere) means one blob.
            if total_drop <= 0.05 * first.max(f64::MIN_POSITIVE) {
                return 1;
            }
            let n = sse.len();
            let mut best_k = 1;
            let mut best_gap = f64::NEG_INFINITY;
            for (i, &s) in sse.iter().enumerate() {
                let x = i as f64 / (n - 1) as f64;
                let chord = first + (last - first) * x;
                let gap = (chord - s) / total_drop;
                if gap > best_gap {
                    best_gap = gap;
                    best_k = i + 1;
                }
            }
            best_k
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: &[f64], spread: f64, n: usize, out: &mut Vec<Vec<f64>>) {
        for i in 0..n {
            let jitter = spread * ((i as f64 * 0.77).sin());
            out.push(center.iter().map(|c| c + jitter).collect());
        }
    }

    #[test]
    fn finds_three_blobs() {
        let mut pts = Vec::new();
        blob(&[0.0, 0.0], 0.2, 8, &mut pts);
        blob(&[10.0, 0.0], 0.2, 8, &mut pts);
        blob(&[0.0, 10.0], 0.2, 8, &mut pts);
        let r = elbow(&pts, 8, KMeansConfig::new(1));
        assert_eq!(r.k, 3);
        assert_eq!(r.sse_curve.len(), 8);
    }

    #[test]
    fn single_blob_estimates_at_most_two() {
        // Max-curvature knees over-split smooth single-cluster SSE curves
        // by at most one; anything beyond k = 2 would be a regression.
        let mut pts = Vec::new();
        blob(&[5.0, 5.0], 0.3, 12, &mut pts);
        let r = elbow(&pts, 6, KMeansConfig::new(1));
        assert!(r.k <= 2, "single blob split into {} clusters", r.k);
    }

    #[test]
    fn identical_points_estimate_one() {
        let pts = vec![vec![4.0, 2.0]; 10];
        let r = elbow(&pts, 5, KMeansConfig::new(1));
        assert_eq!(r.k, 1);
    }

    #[test]
    fn two_blobs_estimate_two() {
        let mut pts = Vec::new();
        blob(&[0.0], 0.1, 10, &mut pts);
        blob(&[100.0], 0.1, 10, &mut pts);
        let r = elbow(&pts, 6, KMeansConfig::new(1));
        assert_eq!(r.k, 2);
    }

    #[test]
    fn knee_of_degenerate_curves() {
        assert_eq!(knee_of(&[]), 1);
        assert_eq!(knee_of(&[5.0]), 1);
        assert_eq!(knee_of(&[5.0, 4.9]), 1);
        assert_eq!(knee_of(&[5.0, 0.01]), 2);
        assert_eq!(knee_of(&[0.0, 0.0, 0.0]), 1);
    }

    #[test]
    fn sse_curve_is_nonincreasing() {
        let mut pts = Vec::new();
        blob(&[0.0, 1.0], 0.5, 10, &mut pts);
        blob(&[4.0, 2.0], 0.5, 10, &mut pts);
        let r = elbow(&pts, 6, KMeansConfig::new(1).with_restarts(16));
        for w in r.sse_curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "curve not monotone: {:?}", r.sse_curve);
        }
    }

    #[test]
    fn max_k_clamped_to_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let r = elbow(&pts, 10, KMeansConfig::new(1));
        assert_eq!(r.sse_curve.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_points_panic() {
        elbow(&[], 3, KMeansConfig::new(1));
    }
}
