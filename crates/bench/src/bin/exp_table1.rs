//! Experiment `table1` — reproduces Table I: the vulnerability of CRH to
//! the Sybil attack on the paper's exact 4-task example.
//!
//! Run with: `cargo run -p srtd-bench --bin exp_table1`

use srtd_bench::table::{cell, Table};
use srtd_truth::{Crh, SensingData, TruthDiscovery};

const ACCOUNTS: [&str; 6] = ["1", "2", "3", "4'", "4''", "4'''"];

/// The exact report values of Table I (timestamps from Table III).
fn reports(with_sybil: bool) -> Vec<(usize, usize, f64, f64)> {
    let ts = |m: f64, s: f64| 10.0 * 3600.0 + m * 60.0 + s;
    let mut r = vec![
        (0, 0, -84.48, ts(0.0, 35.0)),
        (0, 1, -82.11, ts(2.0, 42.0)),
        (0, 2, -75.16, ts(10.0, 22.0)),
        (0, 3, -72.71, ts(13.0, 41.0)),
        (1, 1, -72.27, ts(4.0, 15.0)),
        (1, 2, -77.21, ts(6.0, 1.0)),
        (2, 0, -72.41, ts(1.0, 21.0)),
        (2, 1, -91.49, ts(4.0, 5.0)),
        (2, 3, -73.55, ts(8.0, 28.0)),
    ];
    if with_sybil {
        r.extend([
            (3, 0, -50.0, ts(1.0, 10.0)),
            (3, 2, -50.0, ts(15.0, 24.0)),
            (3, 3, -50.0, ts(20.0, 6.0)),
            (4, 0, -50.0, ts(1.0, 34.0)),
            (4, 2, -50.0, ts(16.0, 8.0)),
            (4, 3, -50.0, ts(21.0, 25.0)),
            (5, 0, -50.0, ts(2.0, 35.0)),
            (5, 2, -50.0, ts(17.0, 35.0)),
            (5, 3, -50.0, ts(22.0, 2.0)),
        ]);
    }
    r
}

fn data(with_sybil: bool) -> SensingData {
    let mut d = SensingData::new(4);
    for (a, t, v, ts) in reports(with_sybil) {
        d.add_report(a, t, v, ts);
    }
    d
}

fn main() {
    println!("Table I — Sybil attack on truth discovery (CRH)\n");
    let mut t = Table::new(
        ["account", "T1", "T2", "T3", "T4"]
            .map(String::from)
            .to_vec(),
    );
    let attacked = data(true);
    for (a, name) in ACCOUNTS.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for task in 0..4 {
            let value = attacked
                .task_reports(task)
                .find(|r| r.account == a)
                .map(|r| r.value);
            row.push(cell(value, 2));
        }
        t.add_row(row);
    }
    let clean_result = Crh::default().discover(&data(false));
    let attacked_result = Crh::default().discover(&attacked);
    let mut row = vec!["TD w/o attack".to_string()];
    row.extend(clean_result.truths.iter().map(|&v| cell(v, 2)));
    t.add_row(row);
    let mut row = vec!["TD w/ attack".to_string()];
    row.extend(attacked_result.truths.iter().map(|&v| cell(v, 2)));
    t.add_row(row);
    println!("{}", t.render());

    println!("paper reports   : w/o attack  -84.23  -82.01  -75.22  -72.72");
    println!("                  w/  attack  -56.06  -86.17  -53.29  -55.35");
    println!();
    println!("expected shape: with the attack, T1/T3/T4 are dragged from the");
    println!("-70..-85 dBm band toward the fabricated -50 dBm; T2 (no Sybil");
    println!("reports) stays put.");
    for task in [0usize, 2, 3] {
        let clean = clean_result.truths[task].expect("reported");
        let bad = attacked_result.truths[task].expect("reported");
        assert!(
            bad > clean + 10.0,
            "task {task} was not dragged: {clean} -> {bad}"
        );
    }
    println!("\n[shape check passed]");
}
