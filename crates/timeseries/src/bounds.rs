//! Cheap lower bounds on the raw DTW cost, for pruning pairwise
//! comparisons.
//!
//! AG-TR computes all `O(n²)` pairwise DTW distances and keeps only pairs
//! below a threshold `φ`. Both bounds here under-estimate the raw
//! cumulative DTW cost in `O(m)` time, so a pair whose *bound* already
//! exceeds `φ` can be skipped without running the `O(m·n)` dynamic
//! program.

#[cfg(test)]
use crate::Dtw;
use std::collections::VecDeque;

/// Precomputed Sakoe–Chiba envelope of one series: running min/max over a
/// centered window of half-width `band`.
///
/// The envelope is what makes an LB_Keogh *cascade* cheap: it depends only
/// on the reference series and the band, so a pairwise driver computes one
/// envelope per series up front and reuses it against every query
/// ([`lb_keogh_env`] is then `O(n)` per pair with no window scan). Built
/// with the monotonic-deque sliding min/max, so construction is `O(n)`
/// regardless of the band width.
///
/// # Examples
///
/// ```
/// use srtd_timeseries::{lb_keogh, lb_keogh_env, Envelope};
///
/// let q = [0.0, 1.0, 2.0, 1.0];
/// let r = [1.0, 1.0, 1.0, 1.0];
/// let env = Envelope::new(&r, 1);
/// assert_eq!(lb_keogh_env(&q, &env), lb_keogh(&q, &r, 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    upper: Vec<f64>,
    lower: Vec<f64>,
    band: usize,
}

impl Envelope {
    /// The envelope of `series` for Sakoe–Chiba half-width `band`
    /// (clamped to the series length — wider adds nothing).
    pub fn new(series: &[f64], band: usize) -> Self {
        let n = series.len();
        let w = band.min(n.saturating_sub(1));
        let mut upper = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        // Monotonic deques of indices: `maxq` decreasing, `minq`
        // increasing; the front is always the window extremum.
        let mut maxq: VecDeque<usize> = VecDeque::new();
        let mut minq: VecDeque<usize> = VecDeque::new();
        let mut next = 0usize;
        for i in 0..n {
            while next <= (i + w).min(n - 1) {
                while maxq.back().is_some_and(|&k| series[k] <= series[next]) {
                    maxq.pop_back();
                }
                maxq.push_back(next);
                while minq.back().is_some_and(|&k| series[k] >= series[next]) {
                    minq.pop_back();
                }
                minq.push_back(next);
                next += 1;
            }
            let lo = i.saturating_sub(w);
            while maxq.front().is_some_and(|&k| k < lo) {
                maxq.pop_front();
            }
            while minq.front().is_some_and(|&k| k < lo) {
                minq.pop_front();
            }
            upper.push(series[maxq[0]]);
            lower.push(series[minq[0]]);
        }
        Self {
            upper,
            lower,
            band: w,
        }
    }

    /// Number of points (same as the underlying series).
    pub fn len(&self) -> usize {
        self.upper.len()
    }

    /// `true` for the envelope of an empty series.
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty()
    }

    /// The clamped band half-width this envelope was built for.
    pub fn band(&self) -> usize {
        self.band
    }
}

/// LB_Keogh against a precomputed [`Envelope`]: the squared distance from
/// `query` to the envelope, a lower bound on the **banded** raw DTW cost
/// with the envelope's window (and on unbanded DTW only when the window
/// spans the whole reference).
///
/// # Panics
///
/// Panics if `query.len() != env.len()` — the classic LB_Keogh setting
/// requires equal lengths; callers with ragged series fall back to
/// [`lb_kim`] (which is length-agnostic) instead.
pub fn lb_keogh_env(query: &[f64], env: &Envelope) -> f64 {
    assert_eq!(
        query.len(),
        env.len(),
        "LB_Keogh requires equal-length series"
    );
    let mut bound = 0.0;
    for (i, &q) in query.iter().enumerate() {
        let upper = env.upper[i];
        let lower = env.lower[i];
        if q > upper {
            bound += (q - upper).powi(2);
        } else if q < lower {
            bound += (lower - q).powi(2);
        }
    }
    bound
}

/// LB_Kim (simplified): every warping path aligns the first points and
/// the last points, so their squared distances always contribute.
///
/// Returns a lower bound on `Dtw::new().raw().distance(a, b)`. Degenerate
/// inputs follow the DTW conventions (`0` for two empty series, `∞` when
/// exactly one is empty).
///
/// # Examples
///
/// ```
/// use srtd_timeseries::{lb_kim, Dtw};
///
/// let a = [0.0, 5.0, 1.0];
/// let b = [2.0, 2.0, 2.0];
/// assert!(lb_kim(&a, &b) <= Dtw::new().raw().distance(&a, &b) + 1e-12);
/// ```
pub fn lb_kim(a: &[f64], b: &[f64]) -> f64 {
    match (a.len(), b.len()) {
        (0, 0) => 0.0,
        (0, _) | (_, 0) => f64::INFINITY,
        (1, _) | (_, 1) => {
            // With a single point on one side, every point of the other
            // aligns to it; the closest single contribution still bounds.

            (a[0] - b[0]).powi(2)
        }
        _ => {
            let first = (a[0] - b[0]).powi(2);
            let last = (a[a.len() - 1] - b[b.len() - 1]).powi(2);
            first + last
        }
    }
}

/// LB_Keogh: the squared distance from `query` to the Sakoe–Chiba
/// envelope of `reference`, a lower bound on *banded* raw DTW with window
/// `w` (and therefore also on unbanded DTW only when `w` spans the whole
/// series).
///
/// Series must have equal lengths (the classic LB_Keogh setting); use
/// [`lb_kim`] for unequal lengths.
///
/// # Panics
///
/// Panics if the series lengths differ.
///
/// # Examples
///
/// ```
/// use srtd_timeseries::{lb_keogh, Dtw};
///
/// let a = [0.0, 1.0, 2.0, 1.0];
/// let b = [1.0, 1.0, 1.0, 1.0];
/// let bound = lb_keogh(&a, &b, 1);
/// let exact = Dtw::new().raw().with_band(1).distance(&a, &b);
/// assert!(bound <= exact + 1e-12);
/// ```
pub fn lb_keogh(query: &[f64], reference: &[f64], w: usize) -> f64 {
    assert_eq!(
        query.len(),
        reference.len(),
        "LB_Keogh requires equal-length series"
    );
    lb_keogh_env(query, &Envelope::new(reference, w))
}

/// Computes the pairwise raw unbanded-DTW dissimilarity matrix with lower
/// bound pruning: pairs whose LB_Kim/LB_Keogh bound already exceeds
/// `cutoff`, or whose dynamic program provably overshoots it, are
/// reported as `f64::INFINITY`; every pair at or below the cutoff carries
/// its exact distance.
///
/// This is a convenience wrapper over the full
/// [`PrunedPairwise`](crate::PrunedPairwise) engine (which AG-TR uses
/// directly with banding and Eq. 8 two-channel sums); the returned matrix
/// is symmetric with a zero diagonal.
pub fn pruned_raw_dtw_matrix(series: &[Vec<f64>], cutoff: f64) -> Vec<Vec<f64>> {
    crate::PrunedPairwise::new(cutoff)
        .with_band(crate::BandPolicy::None)
        .matrix(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert, prop_assert_eq};

    #[test]
    fn kim_bound_zero_for_identical() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(lb_kim(&xs, &xs), 0.0);
    }

    #[test]
    fn kim_degenerate_conventions_match_dtw() {
        assert_eq!(lb_kim(&[], &[]), 0.0);
        assert_eq!(lb_kim(&[], &[1.0]), f64::INFINITY);
        assert_eq!(lb_kim(&[1.0], &[]), f64::INFINITY);
    }

    #[test]
    fn keogh_zero_when_inside_envelope() {
        let q = [1.0, 1.0, 1.0];
        let r = [0.0, 2.0, 0.0];
        assert_eq!(lb_keogh(&q, &r, 1), 0.0);
    }

    #[test]
    fn keogh_wide_window_still_bounds() {
        let q = [10.0, 10.0];
        let r = [0.0, 0.0];
        let bound = lb_keogh(&q, &r, 5);
        let exact = Dtw::new().raw().distance(&q, &r);
        assert!(bound <= exact + 1e-12);
        assert!(bound > 0.0);
    }

    #[test]
    fn pruned_matrix_marks_far_pairs_infinite() {
        let series = vec![
            vec![0.0, 0.0, 0.0],
            vec![0.1, 0.0, 0.1],
            vec![100.0, 100.0, 100.0],
        ];
        let m = pruned_raw_dtw_matrix(&series, 1.0);
        assert!(m[0][1].is_finite());
        assert_eq!(m[0][2], f64::INFINITY);
        assert_eq!(m[1][2], f64::INFINITY);
        assert_eq!(m[0][0], 0.0);
    }

    /// LB_Kim never exceeds the raw DTW cost.
    #[test]
    fn kim_is_a_lower_bound() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 1..25, |r| r.gen_range(-50f64..50.0)),
                    prop::vec_with(rng, 1..25, |r| r.gen_range(-50f64..50.0)),
                )
            },
            |(a, b)| {
                let exact = Dtw::new().raw().distance(a, b);
                prop_assert!(lb_kim(a, b) <= exact + 1e-9);
                Ok(())
            },
        );
    }

    /// LB_Keogh never exceeds the banded raw DTW cost.
    #[test]
    fn keogh_is_a_lower_bound() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 1..25, |r| {
                        (r.gen_range(-50f64..50.0), r.gen_range(-50f64..50.0))
                    }),
                    rng.gen_range(0usize..6),
                )
            },
            |(data, w)| {
                let w = *w;
                let a: Vec<f64> = data.iter().map(|d| d.0).collect();
                let b: Vec<f64> = data.iter().map(|d| d.1).collect();
                let exact = Dtw::new().raw().with_band(w).distance(&a, &b);
                prop_assert!(lb_keogh(&a, &b, w) <= exact + 1e-9);
                Ok(())
            },
        );
    }

    /// The full bound chain, in its *correct* order: for equal-length
    /// series and any window `w`,
    ///
    /// ```text
    /// lb_kim ≤ full raw DTW ≤ banded raw DTW(w)    and
    /// lb_keogh(w) ≤ banded raw DTW(w)
    /// ```
    ///
    /// Note the directions: a band *restricts* warping, so the banded
    /// minimum can only be ≥ the unconstrained one, and LB_Keogh bounds
    /// the *banded* cost (it only bounds full DTW when the window spans
    /// the series). Neither of `lb_kim`/`lb_keogh` dominates the other —
    /// the cascade orders them by evaluation cost (`O(1)` vs `O(n)`), not
    /// by tightness.
    #[test]
    fn bound_chain_orders_correctly() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 0..25, |r| {
                        (r.gen_range(-50f64..50.0), r.gen_range(-50f64..50.0))
                    }),
                    rng.gen_range(0usize..6),
                )
            },
            |(data, w)| {
                let w = *w;
                let a: Vec<f64> = data.iter().map(|d| d.0).collect();
                let b: Vec<f64> = data.iter().map(|d| d.1).collect();
                let full = Dtw::new().raw().distance(&a, &b);
                let banded = Dtw::new().raw().with_band(w).distance(&a, &b);
                let kim = lb_kim(&a, &b);
                let keogh = lb_keogh(&a, &b, w);
                let tol = 1e-9 * banded.max(1.0);
                if full.is_finite() {
                    prop_assert!(kim <= full + tol, "kim {kim} > full {full}");
                    prop_assert!(full <= banded + tol, "full {full} > banded {banded}");
                    prop_assert!(keogh <= banded + tol, "keogh {keogh} > banded {banded}");
                    // The wide-window envelope bounds even unbanded DTW.
                    let keogh_wide = lb_keogh(&a, &b, a.len().max(1) - 1);
                    prop_assert!(keogh_wide <= full + tol);
                } else {
                    // Both empty: every quantity degenerates consistently.
                    prop_assert_eq!(a.len(), 0);
                }
                Ok(())
            },
        );
    }

    /// The deque-built envelope equals the naive windowed min/max scan.
    #[test]
    fn envelope_matches_naive_window_scan() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 0..40, |r| r.gen_range(-10f64..10.0)),
                    rng.gen_range(0usize..45),
                )
            },
            |(series, w)| {
                let env = Envelope::new(series, *w);
                prop_assert_eq!(env.len(), series.len());
                for i in 0..series.len() {
                    let lo = i.saturating_sub(*w);
                    let hi = (i + *w).min(series.len() - 1);
                    let upper = series[lo..=hi].iter().cloned().fold(f64::MIN, f64::max);
                    let lower = series[lo..=hi].iter().cloned().fold(f64::MAX, f64::min);
                    prop_assert_eq!(env.upper[i], upper);
                    prop_assert_eq!(env.lower[i], lower);
                }
                Ok(())
            },
        );
    }

    #[test]
    fn envelope_of_empty_series_is_empty() {
        let env = Envelope::new(&[], 3);
        assert!(env.is_empty());
        assert_eq!(env.band(), 0);
        assert_eq!(lb_keogh_env(&[], &env), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn lb_keogh_env_rejects_ragged_queries() {
        let env = Envelope::new(&[1.0, 2.0], 1);
        lb_keogh_env(&[1.0, 2.0, 3.0], &env);
    }

    /// Pruning never changes finite entries below the cutoff.
    #[test]
    fn pruning_is_sound() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 2..6, |r| {
                        prop::vec_with(r, 2..8, |r2| r2.gen_range(-20f64..20.0))
                    }),
                    rng.gen_range(0.0f64..500.0),
                )
            },
            |(series, cutoff)| {
                let pruned = pruned_raw_dtw_matrix(series, *cutoff);
                let dtw = Dtw::new().raw();
                for i in 0..series.len() {
                    for j in 0..series.len() {
                        if i == j {
                            continue;
                        }
                        let exact = dtw.distance(&series[i], &series[j]);
                        if exact <= *cutoff {
                            prop_assert_eq!(pruned[i][j], exact);
                        }
                    }
                }
                Ok(())
            },
        );
    }
}
