//! Sybil attack models (§III-C).

use srtd_runtime::json::{Json, ToJson};

/// Whether the Sybil attacker spreads its accounts over one device or
/// several.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackType {
    /// Attack-I: a single device, multiple accounts. Account switching
    /// takes time (different timestamps) but every account shares the same
    /// device fingerprint.
    SingleDevice,
    /// Attack-II: multiple devices, multiple accounts. Accounts are spread
    /// round-robin over the devices, so fingerprints differ within the
    /// attacker.
    MultiDevice {
        /// Number of physical devices the attacker owns (≥ 2 for the
        /// attack to differ from Attack-I; the paper's attacker uses 2).
        devices: usize,
    },
}

/// What data the Sybil accounts submit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FabricationStrategy {
    /// Malicious: every account claims `value` (± small per-account jitter
    /// `jitter_std`, the "simple modification" of §III-C). The paper's
    /// attackers claim −50 dBm to fake a strong signal.
    Fabricate {
        /// The fabricated claim.
        value: f64,
        /// Per-account jitter σ applied to the claim.
        jitter_std: f64,
    },
    /// Rapacious: the attacker measures honestly once and every account
    /// submits a jittered copy — reward farming without extra effort.
    DuplicateMeasurement {
        /// Per-account jitter σ applied to the copied measurement.
        jitter_std: f64,
    },
    /// Subtle manipulation: every account submits the honest measurement
    /// shifted by `delta` — the claims stay inside the plausible value
    /// band, so they cannot be filtered as outliers by value alone.
    Offset {
        /// Systematic shift applied to the honest measurement (dBm).
        delta: f64,
        /// Per-account jitter σ.
        jitter_std: f64,
    },
}

/// How hard the attacker works to evade behavioural grouping.
///
/// These tactics extend the paper's model: a grouping-aware adversary can
/// spend extra effort making its accounts look behaviourally independent.
/// Each tactic trades attack power or attacker effort for stealth, which
/// the `exp_attack_strategies` experiment quantifies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EvasionTactic {
    /// No evasion: one physical walk, accounts submit back to back (the
    /// paper's attacker).
    #[default]
    None,
    /// Each account gets its *own* physical walk over the attacker's task
    /// set (own visiting order, own start time). Evades AG-TR's trajectory
    /// matching — but costs the attacker one full walk per account,
    /// removing the "without sensing effort" economy that motivates the
    /// Sybil attack in the first place.
    PerAccountWalks,
    /// Each account reports only a random fraction of the attacker's
    /// visited tasks, making the accounts' task sets diverge. Evades
    /// AG-TS's affinity signal at the cost of proportionally fewer
    /// malicious reports per task.
    SubsetTasks {
        /// Fraction of the attacker's visited tasks each account reports,
        /// clamped to `(0, 1]`.
        fraction: f64,
    },
}

impl FabricationStrategy {
    /// The paper's malicious attacker: claim −50 dBm everywhere.
    pub fn paper_default() -> Self {
        Self::Fabricate {
            value: -50.0,
            jitter_std: 0.3,
        }
    }
}

/// Specification of one Sybil attacker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerSpec {
    /// Number of accounts (the paper's attackers hold 5 each).
    pub accounts: usize,
    /// Attack-I or Attack-II.
    pub attack_type: AttackType,
    /// Data strategy.
    pub strategy: FabricationStrategy,
    /// Grouping-evasion tactic (the paper's attacker uses none).
    pub evasion: EvasionTactic,
}

impl AttackerSpec {
    /// The paper's Attack-I attacker: 5 accounts on one iPhone 6S,
    /// fabricating −50 dBm, no evasion.
    pub fn paper_attack_i() -> Self {
        Self {
            accounts: 5,
            attack_type: AttackType::SingleDevice,
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::None,
        }
    }

    /// The paper's Attack-II attacker: 5 accounts over 2 devices
    /// (iPhone SE + Nexus 6P), fabricating −50 dBm, no evasion.
    pub fn paper_attack_ii() -> Self {
        Self {
            accounts: 5,
            attack_type: AttackType::MultiDevice { devices: 2 },
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::None,
        }
    }

    /// Replaces the data strategy.
    pub fn with_strategy(mut self, strategy: FabricationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the evasion tactic.
    pub fn with_evasion(mut self, evasion: EvasionTactic) -> Self {
        self.evasion = evasion;
        self
    }

    /// Number of distinct devices this attacker uses.
    pub fn device_count(&self) -> usize {
        match self.attack_type {
            AttackType::SingleDevice => 1,
            AttackType::MultiDevice { devices } => devices.max(1),
        }
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if the attacker has no accounts, or a multi-device attacker
    /// declares fewer than 2 devices.
    pub fn validate(&self) {
        assert!(self.accounts > 0, "an attacker needs at least one account");
        if let AttackType::MultiDevice { devices } = self.attack_type {
            assert!(
                devices >= 2,
                "Attack-II needs at least 2 devices, got {devices}"
            );
        }
        if let EvasionTactic::SubsetTasks { fraction } = self.evasion {
            assert!(
                fraction > 0.0 && fraction <= 1.0,
                "subset fraction must be in (0,1], got {fraction}"
            );
        }
    }
}

impl ToJson for AttackType {
    fn to_json(&self) -> Json {
        match self {
            AttackType::SingleDevice => Json::obj([("type", Json::str("single_device"))]),
            AttackType::MultiDevice { devices } => Json::obj([
                ("type", Json::str("multi_device")),
                ("devices", devices.to_json()),
            ]),
        }
    }
}

impl ToJson for FabricationStrategy {
    fn to_json(&self) -> Json {
        match self {
            FabricationStrategy::Fabricate { value, jitter_std } => Json::obj([
                ("strategy", Json::str("fabricate")),
                ("value", value.to_json()),
                ("jitter_std", jitter_std.to_json()),
            ]),
            FabricationStrategy::DuplicateMeasurement { jitter_std } => Json::obj([
                ("strategy", Json::str("duplicate_measurement")),
                ("jitter_std", jitter_std.to_json()),
            ]),
            FabricationStrategy::Offset { delta, jitter_std } => Json::obj([
                ("strategy", Json::str("offset")),
                ("delta", delta.to_json()),
                ("jitter_std", jitter_std.to_json()),
            ]),
        }
    }
}

impl ToJson for EvasionTactic {
    fn to_json(&self) -> Json {
        match self {
            EvasionTactic::None => Json::obj([("tactic", Json::str("none"))]),
            EvasionTactic::PerAccountWalks => {
                Json::obj([("tactic", Json::str("per_account_walks"))])
            }
            EvasionTactic::SubsetTasks { fraction } => Json::obj([
                ("tactic", Json::str("subset_tasks")),
                ("fraction", fraction.to_json()),
            ]),
        }
    }
}

impl ToJson for AttackerSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("accounts", self.accounts.to_json()),
            ("attack_type", self.attack_type.to_json()),
            ("strategy", self.strategy.to_json()),
            ("evasion", self.evasion.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_experiment_setup() {
        let a1 = AttackerSpec::paper_attack_i();
        let a2 = AttackerSpec::paper_attack_ii();
        assert_eq!(a1.accounts, 5);
        assert_eq!(a2.accounts, 5);
        assert_eq!(a1.device_count(), 1);
        assert_eq!(a2.device_count(), 2);
        a1.validate();
        a2.validate();
    }

    #[test]
    fn fabricate_default_is_minus_50() {
        match FabricationStrategy::paper_default() {
            FabricationStrategy::Fabricate { value, .. } => assert_eq!(value, -50.0),
            other => panic!("unexpected strategy {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 devices")]
    fn single_device_attack_ii_rejected() {
        AttackerSpec {
            accounts: 3,
            attack_type: AttackType::MultiDevice { devices: 1 },
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::None,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "subset fraction")]
    fn bad_subset_fraction_rejected() {
        AttackerSpec::paper_attack_i()
            .with_evasion(EvasionTactic::SubsetTasks { fraction: 0.0 })
            .validate();
    }

    #[test]
    fn builders_replace_fields() {
        let spec = AttackerSpec::paper_attack_i()
            .with_strategy(FabricationStrategy::Offset {
                delta: -8.0,
                jitter_std: 0.2,
            })
            .with_evasion(EvasionTactic::PerAccountWalks);
        assert_eq!(spec.evasion, EvasionTactic::PerAccountWalks);
        matches!(spec.strategy, FabricationStrategy::Offset { .. });
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "at least one account")]
    fn zero_accounts_rejected() {
        AttackerSpec {
            accounts: 0,
            attack_type: AttackType::SingleDevice,
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::None,
        }
        .validate();
    }
}
