//! CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD
//! 2014), the paper's representative baseline.

use crate::convergence::ConvergenceCriterion;
use crate::data::SensingData;
use crate::traits::{TruthDiscovery, TruthDiscoveryResult};

/// Configuration for [`Crh`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CrhConfig {
    /// Convergence control.
    pub convergence: ConvergenceCriterion,
    /// Normalize each task's loss term by the standard deviation of its
    /// claims (CRH's continuous-data normalization). Disabled, tasks with
    /// wide value ranges dominate the loss.
    pub normalize_by_task_std: bool,
}

impl CrhConfig {
    /// The standard CRH setup: normalized losses, 1000-iteration cap, 1e-6
    /// tolerance.
    pub fn new() -> Self {
        Self {
            convergence: ConvergenceCriterion::default(),
            normalize_by_task_std: true,
        }
    }
}

/// The CRH truth discovery algorithm.
///
/// Iterates the two steps of Algorithm 1:
///
/// * **weight update** — account `i` gets
///   `w_i = ln( Σ_i' loss_i' / loss_i )`, where
///   `loss_i = Σ_{τ_j ∈ T_i} ((d_j^i − d_j) / σ_j)²` and `σ_j` is the task's
///   claim standard deviation,
/// * **truth update** — `d_j = Σ_{i ∈ U_j} w_i d_j^i / Σ w_i`.
///
/// Truths are initialized to per-task means (a deterministic stand-in for
/// the random initialization in Algorithm 1 — CRH's fixed point does not
/// depend on the start).
///
/// # Examples
///
/// ```
/// use srtd_truth::{Crh, SensingData, TruthDiscovery};
///
/// let mut data = SensingData::new(2);
/// for (acct, values) in [(0, [5.0, 7.0]), (1, [5.2, 7.1]), (2, [9.0, 2.0])] {
///     data.add_report(acct, 0, values[0], 0.0);
///     data.add_report(acct, 1, values[1], 1.0);
/// }
/// let result = Crh::default().discover(&data);
/// assert!(result.converged);
/// // The two agreeing accounts dominate the outlier.
/// assert!((result.truths[0].unwrap() - 5.1).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Crh {
    config: CrhConfig,
}

impl Crh {
    /// Creates a CRH instance with the given configuration.
    pub fn new(config: CrhConfig) -> Self {
        Self { config }
    }

    fn initial_truths(data: &SensingData) -> Vec<Option<f64>> {
        data.task_means()
    }

    fn losses(
        data: &SensingData,
        truths: &[Option<f64>],
        stds: &[Option<f64>],
        normalize: bool,
    ) -> Vec<f64> {
        let n = data.num_accounts();
        let mut losses = vec![0.0; n];
        for r in data.reports() {
            let Some(truth) = truths[r.task] else {
                continue;
            };
            let mut err = r.value - truth;
            if normalize {
                let sigma = stds[r.task].unwrap_or(1.0).max(1e-9);
                err /= sigma;
            }
            losses[r.account] += err * err;
        }
        losses
    }
}

impl TruthDiscovery for Crh {
    fn discover(&self, data: &SensingData) -> TruthDiscoveryResult {
        let n = data.num_accounts();
        if data.is_empty() || n == 0 {
            return TruthDiscoveryResult {
                truths: Self::initial_truths(data),
                weights: vec![0.0; n],
                iterations: 0,
                converged: true,
            };
        }
        // Precondition the numbers: iterate on per-task *residuals* from
        // the initial mean and add the centers back at the end (see
        // `SensingData::centered`).
        let (centered, centers) = data.centered();
        let data = &centered;
        let mut truths = Self::initial_truths(data);
        let stds = data.task_value_std();
        let mut weights = vec![1.0; n];
        let mut iterations = 0;
        let mut converged = false;
        for iter in 0..self.config.convergence.max_iterations {
            iterations = iter + 1;
            // Weight update.
            let losses = Self::losses(data, &truths, &stds, self.config.normalize_by_task_std);
            let total_loss: f64 = losses.iter().sum();
            // Scale-aware floor: an account with (near-)zero loss gets a
            // large but bounded weight. An absolute epsilon would hand it
            // a winner-take-all weight and can put the iteration into a
            // limit cycle on small campaigns.
            let floor = (total_loss / n as f64).max(1e-12) * 1e-6;
            for (w, &loss) in weights.iter_mut().zip(&losses) {
                let target = (total_loss.max(1e-12) / loss.max(floor)).ln().max(0.0);
                // Damping keeps the weight/truth alternation from
                // oscillating between competing fixed points.
                *w = 0.3 * *w + 0.7 * target;
            }
            // If every account has zero weight (e.g. a single account),
            // fall back to uniform so truths stay defined.
            if weights.iter().all(|&w| w == 0.0) {
                weights.fill(1.0);
            }
            // Truth update.
            let mut next = vec![None; data.num_tasks()];
            let mut num = vec![0.0; data.num_tasks()];
            let mut den = vec![0.0; data.num_tasks()];
            for r in data.reports() {
                num[r.task] += weights[r.account] * r.value;
                den[r.task] += weights[r.account];
            }
            for t in 0..data.num_tasks() {
                if den[t] > 0.0 {
                    next[t] = Some(num[t] / den[t]);
                } else {
                    // All reporters have zero weight: plain mean.
                    let reports = data.task_reports(t);
                    if reports.len() > 0 {
                        let count = reports.len();
                        next[t] = Some(reports.map(|r| r.value).sum::<f64>() / count as f64);
                    }
                }
            }
            // Convergence is judged on the *undamped* residual, then the
            // step is halved: for a fixed-point map with an oscillatory
            // slope λ ∈ (−3, 1) at the root, the damped map's slope
            // 1 + (λ−1)/2 lies in (−1, 1), so period-2 limit cycles that
            // plague winner-take-all weighting collapse instead of
            // persisting. The fixed points themselves are unchanged.
            let done = self.config.convergence.is_converged(&truths, &next);
            for (current, target) in truths.iter_mut().zip(&next) {
                *current = match (&current, target) {
                    (Some(c), Some(t)) => Some(0.5 * *c + 0.5 * t),
                    _ => *target,
                };
            }
            if done {
                truths = next;
                converged = true;
                break;
            }
        }
        // Undo the centering.
        let truths = truths
            .iter()
            .zip(&centers)
            .map(|(t, c)| match (t, c) {
                (Some(t), Some(c)) => Some(t + c),
                _ => None,
            })
            .collect();
        TruthDiscoveryResult {
            truths,
            weights,
            iterations,
            converged,
        }
    }

    fn name(&self) -> &'static str {
        "CRH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table I example: 4 tasks, 3 legitimate accounts, with account 3
    /// (index 3..=5 as Sybil accounts 4', 4'', 4''') fabricating −50 dBm.
    fn table_i_data(with_sybil: bool) -> SensingData {
        let mut d = SensingData::new(4);
        // Account 1.
        d.add_report(0, 0, -84.48, 35.0);
        d.add_report(0, 1, -82.11, 162.0);
        d.add_report(0, 2, -75.16, 622.0);
        d.add_report(0, 3, -72.71, 821.0);
        // Account 2.
        d.add_report(1, 1, -72.27, 255.0);
        d.add_report(1, 2, -77.21, 361.0);
        // Account 3.
        d.add_report(2, 0, -72.41, 81.0);
        d.add_report(2, 1, -91.49, 245.0);
        d.add_report(2, 3, -73.55, 508.0);
        if with_sybil {
            for (acct, base_ts) in [(3, 70.0), (4, 94.0), (5, 155.0)] {
                d.add_report(acct, 0, -50.0, base_ts);
                d.add_report(acct, 2, -50.0, base_ts + 850.0);
                d.add_report(acct, 3, -50.0, base_ts + 1130.0);
            }
        }
        d
    }

    #[test]
    fn table_i_without_attack_stays_in_legit_range() {
        let r = Crh::default().discover(&table_i_data(false));
        assert!(r.converged);
        for (t, range) in [
            (0, (-85.0, -72.0)),
            (1, (-92.0, -72.0)),
            (2, (-78.0, -75.0)),
            (3, (-74.0, -72.0)),
        ] {
            let v = r.truths[t].unwrap();
            assert!(v >= range.0 && v <= range.1, "task {t}: {v}");
        }
    }

    #[test]
    fn table_i_with_attack_is_dragged_toward_minus_50() {
        let r = Crh::default().discover(&table_i_data(true));
        // The Sybil accounts hold the majority for tasks 1, 3, 4 (indices
        // 0, 2, 3) and CRH follows them — the paper's vulnerability demo.
        for t in [0, 2, 3] {
            let v = r.truths[t].unwrap();
            assert!(v > -62.0, "task {t} should be dragged to ~-50, got {v}");
        }
        // Task 2 (index 1) has no Sybil reports and stays legitimate.
        let v1 = r.truths[1].unwrap();
        assert!(v1 < -70.0, "untouched task moved: {v1}");
    }

    #[test]
    fn sybil_attack_hurts_accuracy_vs_no_attack() {
        let clean = Crh::default().discover(&table_i_data(false));
        let attacked = Crh::default().discover(&table_i_data(true));
        let mut drift = 0.0;
        for t in 0..4 {
            drift += (clean.truths[t].unwrap() - attacked.truths[t].unwrap()).abs();
        }
        assert!(drift > 30.0, "attack should move estimates a lot: {drift}");
    }

    #[test]
    fn reliable_accounts_get_higher_weight() {
        let mut d = SensingData::new(3);
        // Account 0 reports exactly the consensus; account 1 is noisy.
        for t in 0..3 {
            d.add_report(0, t, 10.0 * t as f64, 0.0);
            d.add_report(1, t, 10.0 * t as f64 + 4.0, 0.0);
            d.add_report(2, t, 10.0 * t as f64 - 0.5, 0.0);
        }
        let r = Crh::default().discover(&d);
        assert!(r.weights[0] > r.weights[1]);
        assert!(r.weights[2] > r.weights[1]);
    }

    #[test]
    fn empty_data_is_fine() {
        let r = Crh::default().discover(&SensingData::new(3));
        assert_eq!(r.truths, vec![None, None, None]);
        assert!(r.converged);
    }

    #[test]
    fn single_account_returns_its_values() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 3.0, 0.0);
        d.add_report(0, 1, 4.0, 1.0);
        let r = Crh::default().discover(&d);
        assert_eq!(r.truths[0], Some(3.0));
        assert_eq!(r.truths[1], Some(4.0));
    }

    #[test]
    fn truth_estimates_stay_within_report_hull() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(1, 0, 5.0, 0.0);
        d.add_report(2, 0, 3.0, 0.0);
        let r = Crh::default().discover(&d);
        let v = r.truths[0].unwrap();
        assert!((1.0..=5.0).contains(&v));
    }
}
