//! Extension experiment: the whole truth-discovery family under the Sybil
//! attack — including robust (weighted-median) aggregation — versus the
//! grouping framework.
//!
//! The point: robustness alone (median, RobustCRH) survives only while
//! the Sybil accounts hold a weight *minority*; once attacker activeness
//! gives them per-task majorities, every account-level method falls and
//! only group-level discovery stands. This locates the paper's
//! contribution inside the broader robust-aggregation design space.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_td_family [seeds]`

use srtd_bench::table::Table;
use srtd_bench::ATTACKER_ACTIVENESS_GRID;
use srtd_core::{AgTr, SybilResistantTd};
use srtd_metrics::mae;
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_truth::{Catd, Crh, Gtm, MeanVote, MedianVote, RobustCrh, TruthDiscovery};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("Extension — TD family under attack ({seeds} seeds, legit activeness 1.0)\n");

    let algorithms: Vec<Box<dyn TruthDiscovery>> = vec![
        Box::new(MeanVote),
        Box::new(MedianVote),
        Box::new(Crh::default()),
        Box::new(Catd::default()),
        Box::new(Gtm::default()),
        Box::new(RobustCrh::default()),
    ];
    let mut header = vec!["attacker activeness".to_string()];
    header.extend(algorithms.iter().map(|a| a.name().to_string()));
    header.push("TD-TR".into());
    let mut t = Table::new(header);

    let mut curves: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len() + 1];
    for &alpha in &ATTACKER_ACTIVENESS_GRID {
        let mut row_vals = vec![0.0f64; algorithms.len() + 1];
        for seed in 0..seeds {
            let s = Scenario::generate(
                &ScenarioConfig::paper_default()
                    .with_seed(seed)
                    .with_activeness(1.0, alpha),
            );
            for (i, algo) in algorithms.iter().enumerate() {
                let estimates = algo.discover(&s.data).truths_or(0.0);
                row_vals[i] += mae(&estimates, &s.ground_truth).expect("lengths");
            }
            let r = SybilResistantTd::new(AgTr::default()).discover(&s.data, &s.fingerprints);
            row_vals[algorithms.len()] += mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths");
        }
        let mut row = vec![format!("{alpha:.1}")];
        for (i, v) in row_vals.iter().enumerate() {
            let avg = v / seeds as f64;
            curves[i].push(avg);
            row.push(format!("{avg:.2}"));
        }
        t.add_row(row);
    }
    println!("{}", t.render());
    println!("expected shape: at low attacker activeness the Sybil accounts");
    println!("are a minority per task, so the median-based methods hold up;");
    println!("as activeness rises they gain per-task majorities (10 Sybil vs");
    println!("8 legit claims) and every account-level method — robust or not —");
    println!("is dragged toward -50 dBm. TD-TR stays flat: grouping removes");
    println!("the majority itself.");

    let last = ATTACKER_ACTIVENESS_GRID.len() - 1;
    // Median family beats the mean family early on.
    assert!(
        curves[1][0] < curves[0][0],
        "median should beat mean under a minority attack"
    );
    // At full activeness, every account-level method is far off...
    for (i, algo_curve) in curves[..curves.len() - 1].iter().enumerate() {
        assert!(
            algo_curve[last] > 8.0,
            "account-level method {i} unexpectedly survived: {}",
            algo_curve[last]
        );
    }
    // ...while the framework stays accurate.
    let td_tr = &curves[curves.len() - 1];
    assert!(
        td_tr[last] < 4.0,
        "TD-TR should stay accurate: {}",
        td_tr[last]
    );
    println!("\n[shape checks passed]");
}
