//! Truth discovery algorithms for mobile crowdsensing.
//!
//! A truth discovery algorithm aggregates conflicting numeric reports from
//! sources of unknown reliability by jointly estimating per-source weights
//! and per-task truths (Algorithm 1 of the paper): sources whose data sit
//! close to the current truth estimates gain weight, and truths are
//! re-estimated as weight-averaged reports, until convergence.
//!
//! This crate provides:
//!
//! * [`SensingData`] — the account × task report matrix (with timestamps)
//!   shared by every algorithm and by the Sybil-resistant framework built
//!   on top in `srtd-core`,
//! * [`Crh`] — the CRH algorithm (Li et al., SIGMOD 2014), the paper's
//!   baseline and representative of the truth discovery family,
//! * [`MeanVote`] / [`MedianVote`] — unweighted baselines,
//! * [`Catd`] — a confidence-aware variant that inflates the weights of
//!   long-tail sources (Li et al., VLDB 2014),
//! * [`Gtm`] — a Gaussian truth model solved by coordinate ascent (EM
//!   style),
//! * the [`TruthDiscovery`] trait tying them together.
//!
//! # Examples
//!
//! ```
//! use srtd_truth::{Crh, SensingData, TruthDiscovery};
//!
//! let mut data = SensingData::new(1);
//! data.add_report(0, 0, 10.0, 0.0); // account 0 says 10
//! data.add_report(1, 0, 10.2, 1.0); // account 1 says 10.2
//! data.add_report(2, 0, 30.0, 2.0); // account 2 is way off
//! let result = Crh::default().discover(&data);
//! let truth = result.truths[0].unwrap();
//! assert!((truth - 10.1).abs() < 1.0); // outlier is down-weighted
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categorical;

mod baselines;
mod catd;
mod convergence;
mod crh;
mod data;
mod evolving;
mod gtm;
mod robust;
mod traits;

pub use baselines::{MeanVote, MedianVote};
pub use catd::Catd;
pub use convergence::{max_abs_delta, ConvergenceCriterion};
pub use crh::{Crh, CrhConfig};
pub use data::{Report, SensingData};
pub use evolving::{StreamingConfig, StreamingCrh};
pub use gtm::{Gtm, GtmConfig};
pub use robust::{weighted_median, RobustCrh};
pub use traits::{TruthDiscovery, TruthDiscoveryResult};
