//! Extension experiment: framework robustness against adaptive attackers.
//!
//! The paper's attacker replays one walk and fabricates a constant value.
//! A grouping-aware attacker can work harder: shift values subtly
//! (`Offset`), re-walk per account (`PerAccountWalks`, evading AG-TR), or
//! split its task set across accounts (`SubsetTasks`, evading AG-TS).
//! This experiment quantifies what each tactic buys the attacker and what
//! it costs, measuring CRH and TD-TR MAE plus AG-TR grouping ARI.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_attack_strategies [seeds]`

use srtd_bench::table::Table;
use srtd_core::{
    AccountGrouping, AgFp, AgTr, AgVal, CombineMode, CombinedGrouping, SybilResistantTd,
};
use srtd_metrics::{adjusted_rand_index, mae};
use srtd_sensing::{AttackerSpec, EvasionTactic, FabricationStrategy, Scenario, ScenarioConfig};
use srtd_truth::{Crh, TruthDiscovery};

struct Case {
    name: &'static str,
    strategy: FabricationStrategy,
    evasion: EvasionTactic,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "fabricate -50 (paper)",
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::None,
        },
        Case {
            name: "duplicate measurement",
            strategy: FabricationStrategy::DuplicateMeasurement { jitter_std: 0.3 },
            evasion: EvasionTactic::None,
        },
        Case {
            name: "offset -8 dBm",
            strategy: FabricationStrategy::Offset {
                delta: -8.0,
                jitter_std: 0.3,
            },
            evasion: EvasionTactic::None,
        },
        Case {
            name: "fabricate + per-account walks",
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::PerAccountWalks,
        },
        Case {
            name: "fabricate + subset tasks 0.5",
            strategy: FabricationStrategy::paper_default(),
            evasion: EvasionTactic::SubsetTasks { fraction: 0.5 },
        },
    ]
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("Extension — adaptive attack strategies ({seeds} seeds, full activeness)\n");

    let mut t = Table::new(
        [
            "attack",
            "CRH MAE",
            "TD-TR MAE",
            "TD-JOIN MAE",
            "TD-JOIN+VAL MAE",
            "AG-TR ARI",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut measured: Vec<(&'static str, f64, f64, f64, f64, f64)> = Vec::new();
    for case in cases() {
        let (mut crh, mut ours, mut joined, mut joined_val, mut ari) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for seed in 0..seeds {
            let attackers = vec![
                AttackerSpec::paper_attack_i()
                    .with_strategy(case.strategy)
                    .with_evasion(case.evasion),
                AttackerSpec::paper_attack_ii()
                    .with_strategy(case.strategy)
                    .with_evasion(case.evasion),
            ];
            let s = Scenario::generate(
                &ScenarioConfig::paper_default()
                    .with_seed(seed)
                    .with_attackers(attackers),
            );
            crh += mae(
                &Crh::default().discover(&s.data).truths_or(0.0),
                &s.ground_truth,
            )
            .expect("lengths");
            let r = SybilResistantTd::new(AgTr::default()).discover(&s.data, &s.fingerprints);
            ours += mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths");
            let g = AgTr::default().group(&s.data, &s.fingerprints);
            ari += adjusted_rand_index(g.labels(), &s.owners);
            // Join of device evidence (AG-FP, immune to behavioural
            // evasion) and trajectory evidence (AG-TR).
            let join = CombinedGrouping::new(
                vec![Box::new(AgFp::default()), Box::new(AgTr::default())],
                CombineMode::Join,
            );
            let r = SybilResistantTd::new(AgTr::default())
                .discover_with_grouping(&s.data, join.group(&s.data, &s.fingerprints));
            joined += mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths");
            // Value-coordination evidence closes the behavioural-evasion
            // gap: evading accounts still push coordinated claims.
            let join_val = CombinedGrouping::new(
                vec![
                    Box::new(AgFp::default()),
                    Box::new(AgTr::default()),
                    Box::new(AgVal::default()),
                ],
                CombineMode::Join,
            );
            let r = SybilResistantTd::new(AgTr::default())
                .discover_with_grouping(&s.data, join_val.group(&s.data, &s.fingerprints));
            joined_val += mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths");
        }
        let n = seeds as f64;
        measured.push((
            case.name,
            crh / n,
            ours / n,
            joined / n,
            joined_val / n,
            ari / n,
        ));
        t.add_row(vec![
            case.name.to_string(),
            format!("{:.2}", crh / n),
            format!("{:.2}", ours / n),
            format!("{:.2}", joined / n),
            format!("{:.2}", joined_val / n),
            format!("{:.3}", ari / n),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape:");
    println!("  * paper attack: TD-TR crushes it (high ARI, low MAE);");
    println!("  * duplicate-measurement (rapacious): barely hurts accuracy at");
    println!("    all — the copies are honest data;");
    println!("  * offset: bounds the attacker's damage to |delta| even for CRH,");
    println!("    and TD-TR keeps it smaller;");
    println!("  * per-account walks / subset tasks: AG-TR's ARI collapses —");
    println!("    the accounts' reported trajectories really are independent —");
    println!("    and TD-TR degrades to CRH. The evasions work, but cost the");
    println!("    attacker real per-account effort or attack power;");
    println!("  * TD-JOIN (AG-FP ∪ AG-TR): device-fingerprint evidence is");
    println!("    immune to behavioural evasion, so the combined grouping");
    println!("    keeps MAE below CRH even under both evasion tactics — the");
    println!("    concrete payoff of the paper's future-work combination;");
    println!("  * TD-JOIN+VAL adds value-coordination evidence (AG-VAL, our");
    println!("    extension): a manipulating attacker must push coordinated");
    println!("    values no matter how it randomizes behaviour, so the full");
    println!("    join stays near the no-evasion accuracy for every tactic");
    println!("    except duplicate-measurement — which needs no defense.");

    let paper = measured[0];
    assert!(
        paper.2 < paper.1 * 0.5,
        "TD-TR should crush the paper attack"
    );
    let duplicate = measured[1];
    assert!(
        duplicate.1 < 6.0,
        "duplicate attack should be nearly harmless to CRH"
    );
    let offset = measured[2];
    assert!(
        offset.1 < 9.0,
        "offset attack damage must be bounded by |delta|"
    );
    assert!(
        offset.2 <= offset.1 + 0.5,
        "TD-TR should not lose to CRH under offset"
    );
    let evasive = measured[3];
    assert!(
        evasive.5 < paper.5 - 0.2,
        "per-account walks should break AG-TR grouping"
    );
    assert!(
        evasive.3 < evasive.1 - 2.0,
        "TD-JOIN should stay below CRH under per-account-walk evasion"
    );
    assert!(
        evasive.4 < 6.0,
        "TD-JOIN+VAL should nearly neutralize walk evasion: {}",
        evasive.4
    );
    let subset = measured[4];
    assert!(
        subset.1 < paper.1,
        "subset attack is weaker than the full attack"
    );
    assert!(
        subset.3 < subset.1 + 0.5,
        "TD-JOIN should not lose to CRH under subset evasion"
    );
    assert!(
        subset.4 < 6.0,
        "TD-JOIN+VAL should nearly neutralize subset evasion: {}",
        subset.4
    );
    println!("\n[shape checks passed]");
}
