//! Experiment `scaling` — the §IV-C efficiency claim: "the running time
//! of the elbow method is linear in the number of users … AG-FP is
//! efficient in practice", plus the cost of the other pipeline stages as
//! campaigns grow.
//!
//! Measures wall time of each grouping method and of end-to-end TD-TR on
//! campaigns of growing size.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_scaling`

use srtd_bench::table::Table;
use srtd_core::{AccountGrouping, AgFp, AgTr, AgTs, SybilResistantTd};
use srtd_sensing::{Scenario, ScenarioConfig};
use std::time::Instant;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    println!("Scaling — grouping and framework cost vs. campaign size\n");
    let mut t = Table::new(
        [
            "legit users",
            "accounts",
            "AG-FP ms",
            "AG-TS ms",
            "AG-TR ms",
            "TD-TR ms",
        ]
        .map(String::from)
        .to_vec(),
    );
    let sizes = [8usize, 16, 32, 64, 128];
    let mut fp_times = Vec::new();
    for &n in &sizes {
        let cfg = ScenarioConfig {
            num_legit: n,
            num_tasks: 20,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(77);
        let s = Scenario::generate(&cfg);
        let (_, fp_ms) = timed(|| AgFp::default().group(&s.data, &s.fingerprints));
        let (_, ts_ms) = timed(|| AgTs::default().group(&s.data, &s.fingerprints));
        let (_, tr_ms) = timed(|| AgTr::default().group(&s.data, &s.fingerprints));
        let (_, td_ms) =
            timed(|| SybilResistantTd::new(AgTr::default()).discover(&s.data, &s.fingerprints));
        fp_times.push(fp_ms);
        t.add_row(vec![
            n.to_string(),
            s.num_accounts().to_string(),
            format!("{fp_ms:.1}"),
            format!("{ts_ms:.1}"),
            format!("{tr_ms:.1}"),
            format!("{td_ms:.1}"),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: AG-TS and AG-TR stay well under a second even at");
    println!("128 users (quadratic in accounts, tiny constants); AG-FP dominates");
    println!("the cost — its elbow sweep runs k-means for every candidate k");
    println!("(k-means itself is O(nkdi), §IV-C) — yet remains interactive at");
    println!("the 'number of selected users per task is usually limited' scales");
    println!("the paper argues for.");
    // Sanity: the largest campaign still groups in interactive time.
    let largest = *fp_times.last().expect("non-empty");
    assert!(
        largest < 30_000.0,
        "AG-FP took {largest} ms at 128 users — not 'efficient in practice'"
    );
    println!("\n[scaling check passed]");
}
