//! Account grouping: partitioning accounts by suspected physical owner.

pub mod blocking;
mod combined;
mod fp;
mod tr;
mod ts;
mod val;

pub use blocking::Candidates;
pub use combined::{CombineMode, CombinedGrouping};
pub use fp::{AgFp, FpClustering};
pub use tr::AgTr;
pub use ts::AgTs;
pub use val::AgVal;

use srtd_truth::SensingData;

/// A partition of accounts `0..n` into groups.
///
/// Invariants (the paper's `g_i ∩ g_j = ∅`, `∪ g_i = U`): every account
/// appears in exactly one group, groups are non-empty, members are sorted,
/// and groups are ordered by smallest member.
///
/// # Examples
///
/// ```
/// use srtd_core::Grouping;
///
/// let g = Grouping::from_labels(&[0, 1, 0, 2]);
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.groups()[0], vec![0, 2]);
/// assert_eq!(g.group_of(3), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    groups: Vec<Vec<usize>>,
    labels: Vec<usize>,
}

impl Grouping {
    /// Builds a grouping from group member lists.
    ///
    /// # Panics
    ///
    /// Panics if the lists are not a partition of `0..n` (duplicate,
    /// missing or out-of-range accounts, or empty groups).
    pub fn new(mut groups: Vec<Vec<usize>>) -> Self {
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "groups must be non-empty"
        );
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort_by_key(|g| g[0]);
        let n: usize = groups.iter().map(Vec::len).sum();
        let mut labels = vec![usize::MAX; n];
        for (k, g) in groups.iter().enumerate() {
            for &a in g {
                assert!(a < n, "account {a} out of range for {n} accounts");
                assert!(
                    labels[a] == usize::MAX,
                    "account {a} appears in more than one group"
                );
                labels[a] = k;
            }
        }
        // All n slots filled <=> partition (counts already match).
        Self { groups, labels }
    }

    /// Builds a grouping from per-account labels (arbitrary values).
    pub fn from_labels(labels: &[usize]) -> Self {
        let mut seen: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (a, &l) in labels.iter().enumerate() {
            let next = groups.len();
            let k = *seen.entry(l).or_insert(next);
            if k == groups.len() {
                groups.push(Vec::new());
            }
            groups[k].push(a);
        }
        Self::new(groups)
    }

    /// The all-singletons partition over `n` accounts (no grouping —
    /// reduces the framework to plain account-level truth discovery).
    pub fn singletons(n: usize) -> Self {
        Self::new((0..n).map(|a| vec![a]).collect())
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Returns `true` when there are no accounts at all.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of accounts covered.
    pub fn num_accounts(&self) -> usize {
        self.labels.len()
    }

    /// The group member lists, sorted as documented on the type.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The group index of an account.
    ///
    /// # Panics
    ///
    /// Panics if `account` is out of range.
    pub fn group_of(&self, account: usize) -> usize {
        self.labels[account]
    }

    /// Per-account group labels (dense, `0..len()`).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }
}

/// An account grouping method (`AG(D, F)` in Algorithm 2).
///
/// Implementations receive the full report matrix and the per-account
/// device fingerprints; each method uses the part it needs (AG-FP only the
/// fingerprints, AG-TS/AG-TR only the reports).
pub trait AccountGrouping {
    /// Partitions the accounts of `data`.
    ///
    /// `fingerprints` holds one feature vector per account (may be empty
    /// for methods that do not use fingerprints). Implementations must
    /// return a partition of `0..data.num_accounts()`.
    fn group(&self, data: &SensingData, fingerprints: &[Vec<f64>]) -> Grouping;

    /// Short name for result tables (e.g. `"AG-FP"`).
    fn name(&self) -> &'static str;
}

/// A grouping method whose decision reduces to a set of pairwise
/// "same-owner" edges over the accounts, with each edge's validity
/// depending only on the two endpoint accounts' own data (and the
/// method's constants) — never on third accounts.
///
/// That locality is what makes incremental re-grouping sound: when an
/// epoch folds new reports into some accounts, every edge between two
/// *untouched* accounts is still exactly as valid as before, so
/// `srtd_platform::EpochEngine` can keep those edges and re-examine only
/// pairs touching a dirty account (see `decision_edges`' `dirty` mask),
/// merging the result through a persistent union-find instead of
/// rebuilding components from scratch.
///
/// Contract: for any `data`, [`AccountGrouping::group`] must equal the
/// connected components of `decision_edges(data, None)` over
/// `0..data.num_accounts()` (isolated accounts become singletons).
pub trait EdgeGrouping: AccountGrouping {
    /// The decision edges of this method on `data`.
    ///
    /// With `dirty: Some(mask)` (one flag per account) only edges touching
    /// at least one dirty account are returned; edges between two clean
    /// accounts are exactly the ones the caller may carry over from the
    /// previous epoch. `None` returns every decision edge.
    fn decision_edges(&self, data: &SensingData, dirty: Option<&[bool]>) -> Vec<(usize, usize)>;
}

/// The no-defense baseline: every account is its own group, reducing the
/// framework to plain account-level truth discovery. Unlike
/// [`PerfectGrouping`] it has no fixed label set, so it adapts as accounts
/// join a campaign mid-stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingletonGrouping;

impl AccountGrouping for SingletonGrouping {
    fn group(&self, data: &SensingData, _fingerprints: &[Vec<f64>]) -> Grouping {
        Grouping::singletons(data.num_accounts())
    }

    fn name(&self) -> &'static str {
        "Singletons"
    }
}

impl EdgeGrouping for SingletonGrouping {
    /// No edges, ever: the connected components of the empty edge set are
    /// exactly the singletons [`AccountGrouping::group`] returns, so the
    /// no-defense baseline rides the incremental epoch path for free.
    fn decision_edges(&self, _data: &SensingData, _dirty: Option<&[bool]>) -> Vec<(usize, usize)> {
        Vec::new()
    }
}

/// An oracle grouping that returns a fixed partition — used to evaluate
/// the framework's ceiling (perfect grouping) and as a test double.
#[derive(Debug, Clone)]
pub struct PerfectGrouping {
    labels: Vec<usize>,
}

impl PerfectGrouping {
    /// Creates the oracle from true owner labels.
    pub fn new(labels: Vec<usize>) -> Self {
        Self { labels }
    }
}

impl AccountGrouping for PerfectGrouping {
    fn group(&self, data: &SensingData, _fingerprints: &[Vec<f64>]) -> Grouping {
        assert_eq!(
            self.labels.len(),
            data.num_accounts(),
            "oracle labels must cover every account"
        );
        Grouping::from_labels(&self.labels)
    }

    fn name(&self) -> &'static str {
        "Oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_compacts_arbitrary_ids() {
        let g = Grouping::from_labels(&[7, 7, 3, 9]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.groups(), &[vec![0, 1], vec![2], vec![3]]);
        assert_eq!(g.group_of(1), 0);
    }

    #[test]
    fn singletons_cover_everyone() {
        let g = Grouping::singletons(4);
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_accounts(), 4);
    }

    #[test]
    fn groups_sorted_by_smallest_member() {
        let g = Grouping::new(vec![vec![3, 1], vec![2, 0]]);
        assert_eq!(g.groups(), &[vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn empty_grouping() {
        let g = Grouping::from_labels(&[]);
        assert!(g.is_empty());
        assert_eq!(g.num_accounts(), 0);
    }

    #[test]
    #[should_panic(expected = "more than one group")]
    fn overlapping_groups_rejected() {
        Grouping::new(vec![vec![0, 1], vec![1]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gap_in_partition_rejected() {
        // Accounts {0, 2}: 2 is out of range for n = 2.
        Grouping::new(vec![vec![0], vec![2]]);
    }

    #[test]
    fn oracle_returns_given_partition() {
        let mut data = SensingData::new(1);
        data.add_report(0, 0, 1.0, 0.0);
        data.add_report(1, 0, 2.0, 0.0);
        data.add_report(2, 0, 3.0, 0.0);
        let oracle = PerfectGrouping::new(vec![0, 0, 1]);
        let g = oracle.group(&data, &[]);
        assert_eq!(g.groups(), &[vec![0, 1], vec![2]]);
        assert_eq!(oracle.name(), "Oracle");
    }
}
