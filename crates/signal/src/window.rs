//! Window functions applied before spectral analysis.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The window applied to a signal frame before the FFT.
///
/// Fingerprint captures are short stationary recordings, so a [`Window::Hann`]
/// window (the default) suppresses the spectral leakage that would otherwise
/// swamp the subtle per-chip resonance differences AG-FP relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No windowing (all-ones).
    Rectangular,
    /// Hann (raised cosine) window.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
}

impl Window {
    /// Window coefficient at sample `i` of an `n`-sample frame.
    ///
    /// Returns `1.0` for frames shorter than 2 samples.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        if n < 2 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x).cos(),
        }
    }

    /// Applies the window to a signal, returning the windowed copy.
    ///
    /// Coefficient tables are cached per `(window, length)` — exactly like
    /// the FFT's per-size twiddle tables — so repeated same-length captures
    /// (the fingerprint pipeline's common case: every stream of a campaign
    /// shares one capture length) stop paying one cosine per sample per
    /// call. Each cached entry is computed by [`Window::coefficient`], so
    /// the windowed signal is bit-identical to the uncached path.
    pub fn apply(self, xs: &[f64]) -> Vec<f64> {
        let n = xs.len();
        if self == Window::Rectangular || n < 2 {
            // All coefficients are exactly 1.0; skip the table.
            return xs.to_vec();
        }
        let table = coefficient_table(self, n);
        xs.iter().zip(table.iter()).map(|(&x, &c)| x * c).collect()
    }

    /// The cached coefficient table for an `n`-sample frame, or `None`
    /// when every coefficient is exactly `1.0` (rectangular windows and
    /// frames shorter than 2 samples — the same cases [`Window::apply`]
    /// short-circuits without touching the cache).
    ///
    /// This is the zero-copy sibling of [`Window::apply`]: the fused FFT
    /// loaders read the table during their bit-reversal pass instead of
    /// materializing a windowed copy. One call records exactly one
    /// `signal.window.cache_{hits,misses}` counter tick for table-backed
    /// windows, exactly like `apply`, so the obs goldens hold on either
    /// path.
    pub fn table(self, n: usize) -> Option<Arc<Vec<f64>>> {
        if self == Window::Rectangular || n < 2 {
            return None;
        }
        Some(coefficient_table(self, n))
    }
}

/// Cached window coefficient tables, keyed by `(window, frame length)`.
///
/// A miss computes the table under the cache lock, so for any key exactly
/// one miss is ever recorded no matter how many threads race for it — the
/// `signal.window.cache_{hits,misses}` counters stay deterministic across
/// worker-thread counts.
fn coefficient_table(window: Window, n: usize) -> Arc<Vec<f64>> {
    type Cache = Mutex<HashMap<(Window, usize), Arc<Vec<f64>>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("window coefficient cache poisoned");
    if let Some(table) = map.get(&(window, n)) {
        srtd_runtime::obs::counter_add("signal.window.cache_hits", 1);
        return table.clone();
    }
    srtd_runtime::obs::counter_add("signal.window.cache_misses", 1);
    let table = Arc::new((0..n).map(|i| window.coefficient(i, n)).collect::<Vec<_>>());
    map.insert((window, n), table.clone());
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_identity() {
        let xs = [1.0, -2.0, 3.5];
        assert_eq!(Window::Rectangular.apply(&xs), xs.to_vec());
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let n = 101;
        assert!(Window::Hann.coefficient(0, n).abs() < 1e-12);
        assert!(Window::Hann.coefficient(n - 1, n).abs() < 1e-12);
        assert!((Window::Hann.coefficient(50, n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_are_small_but_nonzero() {
        let n = 64;
        let edge = Window::Hamming.coefficient(0, n);
        assert!((edge - 0.08).abs() < 1e-12);
    }

    #[test]
    fn coefficients_bounded_by_one() {
        for w in [Window::Rectangular, Window::Hann, Window::Hamming] {
            for i in 0..32 {
                let c = w.coefficient(i, 32);
                assert!((0.0..=1.0).contains(&c), "{w:?} at {i}: {c}");
            }
        }
    }

    /// The cached table path produces the same bits as multiplying by
    /// per-call coefficients, for every window and several lengths
    /// (including repeats, which exercise the hit path).
    #[test]
    fn cached_apply_matches_per_coefficient_apply() {
        for w in [Window::Rectangular, Window::Hann, Window::Hamming] {
            for n in [2usize, 3, 17, 64, 64, 601] {
                let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
                let cached = w.apply(&xs);
                let reference: Vec<f64> = xs
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| x * w.coefficient(i, n))
                    .collect();
                assert_eq!(cached.len(), reference.len());
                for (a, b) in cached.iter().zip(&reference) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{w:?} len {n}");
                }
            }
        }
    }

    #[test]
    fn tiny_frames_are_passed_through() {
        assert_eq!(Window::Hann.coefficient(0, 1), 1.0);
        assert_eq!(Window::Hann.apply(&[7.0]), vec![7.0]);
        assert_eq!(Window::Hann.apply(&[]), Vec::<f64>::new());
    }
}
