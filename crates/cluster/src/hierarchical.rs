//! Agglomerative hierarchical clustering with distance-threshold cutting.
//!
//! An alternative to k-means + elbow for fingerprint grouping: instead of
//! estimating the cluster *count*, merge the closest clusters until the
//! next merge would exceed a distance threshold. This sidesteps the elbow
//! method's over-estimation bias on smooth SSE curves at the cost of a
//! threshold parameter (which standardized fingerprint features make
//! fairly stable across campaigns). The `exp_ablation_clustering`
//! experiment compares both pipelines.

use crate::squared_distance;

/// Linkage criterion: how the distance between two clusters is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Smallest pairwise point distance (chains easily).
    Single,
    /// Largest pairwise point distance (compact clusters).
    Complete,
    /// Unweighted average of all pairwise distances (UPGMA).
    #[default]
    Average,
}

/// Result of an agglomerative clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalResult {
    /// Cluster index per input point (dense, `0..num_clusters`).
    pub assignments: Vec<usize>,
    /// Number of clusters after cutting.
    pub num_clusters: usize,
    /// Distances at which successive merges happened (sorted ascending by
    /// construction), useful for threshold diagnostics.
    pub merge_distances: Vec<f64>,
}

/// Agglomerative clustering cut at a Euclidean distance threshold.
///
/// Starts from singletons and repeatedly merges the closest pair of
/// clusters (under `linkage`) while that distance is `<= threshold`.
/// `O(n³)` worst case with the naive matrix implementation — fingerprint
/// sets are small (tens of accounts), so simplicity wins over a heap.
///
/// # Panics
///
/// Panics if `points` is empty, rows have inconsistent lengths, or the
/// threshold is negative/NaN.
///
/// # Examples
///
/// ```
/// use srtd_cluster::hierarchical::{agglomerative, Linkage};
///
/// let points = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
/// let result = agglomerative(&points, 1.0, Linkage::Average);
/// assert_eq!(result.num_clusters, 2);
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[2]);
/// ```
#[allow(clippy::needless_range_loop)] // live-pair scan over an index-stable arena
pub fn agglomerative(points: &[Vec<f64>], threshold: f64, linkage: Linkage) -> HierarchicalResult {
    assert!(!points.is_empty(), "cannot cluster an empty point set");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "points must share one dimensionality"
    );
    assert!(
        threshold >= 0.0 && !threshold.is_nan(),
        "threshold must be non-negative"
    );
    let n = points.len();
    // clusters[i] = Some(member indices); None once merged away.
    let mut clusters: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    // Pairwise point distances, precomputed.
    let mut point_dist = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let d = squared_distance(&points[i], &points[j]).sqrt();
            point_dist[i][j] = d;
            point_dist[j][i] = d;
        }
    }
    let cluster_dist = |a: &[usize], b: &[usize], dist: &Vec<Vec<f64>>| -> f64 {
        let mut acc: f64 = match linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => 0.0,
            Linkage::Average => 0.0,
        };
        for &x in a {
            for &y in b {
                let d = dist[x][y];
                acc = match linkage {
                    Linkage::Single => acc.min(d),
                    Linkage::Complete => acc.max(d),
                    Linkage::Average => acc + d,
                };
            }
        }
        if linkage == Linkage::Average {
            acc / (a.len() * b.len()) as f64
        } else {
            acc
        }
    };
    let mut merge_distances = Vec::new();
    loop {
        // Find the closest live pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            let Some(a) = &clusters[i] else { continue };
            for j in i + 1..n {
                let Some(b) = &clusters[j] else { continue };
                let d = cluster_dist(a, b, &point_dist);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        match best {
            Some((i, j, d)) if d <= threshold => {
                let b = clusters[j].take().expect("checked live");
                clusters[i].as_mut().expect("checked live").extend(b);
                merge_distances.push(d);
            }
            _ => break,
        }
    }
    let mut assignments = vec![0usize; n];
    let mut num_clusters = 0;
    for members in clusters.iter().flatten() {
        for &m in members {
            assignments[m] = num_clusters;
        }
        num_clusters += 1;
    }
    HierarchicalResult {
        assignments,
        num_clusters,
        merge_distances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert, prop_assert_eq};

    fn blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, -0.1],
            vec![8.0, 8.0],
            vec![8.1, 7.9],
        ]
    }

    #[test]
    fn separates_two_blobs_at_moderate_threshold() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let r = agglomerative(&blobs(), 2.0, linkage);
            assert_eq!(r.num_clusters, 2, "{linkage:?}");
            assert_eq!(r.assignments[0], r.assignments[1]);
            assert_eq!(r.assignments[3], r.assignments[4]);
            assert_ne!(r.assignments[0], r.assignments[3]);
        }
    }

    #[test]
    fn zero_threshold_keeps_singletons() {
        let r = agglomerative(&blobs(), 0.0, Linkage::Average);
        assert_eq!(r.num_clusters, 5);
        assert!(r.merge_distances.is_empty());
    }

    #[test]
    fn huge_threshold_merges_everything() {
        let r = agglomerative(&blobs(), 1e9, Linkage::Complete);
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.merge_distances.len(), 4);
    }

    #[test]
    fn duplicate_points_merge_at_zero() {
        let pts = vec![vec![1.0], vec![1.0], vec![9.0]];
        let r = agglomerative(&pts, 0.0, Linkage::Single);
        assert_eq!(r.num_clusters, 2);
        assert_eq!(r.assignments[0], r.assignments[1]);
    }

    #[test]
    fn single_linkage_chains_where_complete_does_not() {
        // A chain of points 1 apart: single linkage at 1.1 merges all;
        // complete linkage stops early.
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let single = agglomerative(&pts, 1.1, Linkage::Single);
        let complete = agglomerative(&pts, 1.1, Linkage::Complete);
        assert_eq!(single.num_clusters, 1);
        assert!(complete.num_clusters > 1);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_points_panic() {
        agglomerative(&[], 1.0, Linkage::Average);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_panics() {
        agglomerative(&[vec![0.0]], -1.0, Linkage::Average);
    }

    /// Assignments are always a dense partition, and the cluster count
    /// decreases monotonically in the threshold.
    #[test]
    fn partition_and_monotonicity() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 2..15, |r| r.gen_range(-50f64..50.0)),
                    rng.gen_range(0.0f64..20.0),
                    rng.gen_range(0.0f64..20.0),
                )
            },
            |(xs, t1, t2)| {
                let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
                let (lo, hi) = if t1 <= t2 { (*t1, *t2) } else { (*t2, *t1) };
                let a = agglomerative(&pts, lo, Linkage::Average);
                let b = agglomerative(&pts, hi, Linkage::Average);
                prop_assert!(b.num_clusters <= a.num_clusters);
                for r in [&a, &b] {
                    let max = *r.assignments.iter().max().expect("non-empty");
                    prop_assert_eq!(max + 1, r.num_clusters);
                }
                Ok(())
            },
        );
    }

    /// Merge distances are reported in non-decreasing order for
    /// average and complete linkage (reducibility holds).
    #[test]
    fn merge_distances_sorted() {
        prop::check(
            |rng| prop::vec_with(rng, 2..12, |r| r.gen_range(-50f64..50.0)),
            |xs| {
                let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
                for linkage in [Linkage::Average, Linkage::Complete] {
                    let r = agglomerative(&pts, f64::MAX, linkage);
                    for w in r.merge_distances.windows(2) {
                        prop_assert!(
                            w[1] + 1e-9 >= w[0],
                            "{:?}: {:?}",
                            linkage,
                            r.merge_distances
                        );
                    }
                }
                Ok(())
            },
        );
    }
}
