//! Signal processing for MEMS device fingerprinting.
//!
//! The AG-FP grouping method characterizes each of the four sensor streams
//! (accelerometer magnitude and the three gyroscope axes) with the 20
//! features of Table II in the paper: 9 temporal and 11 spectral. The paper
//! extracts the spectral set with MIRtoolbox; this crate implements the same
//! feature definitions (Peeters 2004) from scratch on top of a radix-2 FFT,
//! so the whole pipeline is pure Rust:
//!
//! * [`fft`] — iterative Cooley–Tukey FFT and inverse,
//! * [`spectrum`] — magnitude spectra and peak picking,
//! * [`temporal`] — the 9 time-domain features,
//! * [`spectral`] — the 11 frequency-domain features,
//! * [`features`] — the combined 20-dimensional vector per stream and
//!   feature-matrix standardization for clustering.
//!
//! # Examples
//!
//! ```
//! use srtd_signal::features::{FeatureConfig, stream_features};
//!
//! let signal: Vec<f64> = (0..256)
//!     .map(|i| (i as f64 * 0.3).sin() + 0.1)
//!     .collect();
//! let f = stream_features(&signal, &FeatureConfig::new(100.0));
//! assert_eq!(f.to_vec().len(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod complex;
pub mod features;
pub mod fft;
pub mod psd;
pub mod spectral;
pub mod spectrum;
pub mod stats;
pub mod temporal;
pub mod window;

pub use complex::Complex;
pub use features::{stream_features, stream_features_batch, FeatureConfig, StreamFeatures};
pub use spectrum::Spectrum;
