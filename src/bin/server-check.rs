//! `server-check` — end-to-end smoke test of `srtd-server`, used by
//! `scripts/verify.sh`.
//!
//! ```text
//! server-check <path-to-srtd-server>
//! ```
//!
//! Spawns the server on an ephemeral loopback port and drives the whole
//! epoch lifecycle over real HTTP: health check, a mixed ingest batch
//! (valid reports plus a deliberate duplicate), two epochs — asserting
//! the second, steady-state epoch warm-starts and converges in ≤2
//! iterations — then truths/groups/metrics reads (every response must be
//! well-formed JSON), the telemetry timeline (`/metrics/history?n=2`
//! returns two windows whose epoch-counter deltas sum to the cumulative
//! `/metrics` values; `/trace` names the fold/discover/swap stages;
//! `?format=prom` exposes the counter families), and a clean shutdown
//! with exit status 0.
//!
//! A second phase spawns an AG-TR server and mirrors the same ingest
//! schedule into an in-process batch `EpochEngine::run_epoch`: the
//! server's incremental re-grouping path must publish snapshots whose
//! truths, labels, and group weights are identical (the JSON renderer is
//! shortest-roundtrip, so the comparison is bitwise) across a
//! multi-epoch drive with a Sybil ring, a mid-stream account, and an
//! empty steady-state epoch.
//!
//! A third phase spawns a server with `--epoch-interval-ms 20` and
//! checks the timer contract: an ingested batch is folded into a
//! published snapshot without any `POST /epoch`, idle ticks do not run
//! empty epochs, and shutdown joins the ticker cleanly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, ExitCode, Stdio};

use sybil_td::core::{AgTr, SybilResistantTd};
use sybil_td::platform::{EpochConfig, EpochEngine};
use sybil_td::runtime::json::{parse, Json, ToJson};

fn main() -> ExitCode {
    let Some(server_path) = std::env::args().nth(1) else {
        eprintln!("usage: server-check <path-to-srtd-server>");
        return ExitCode::FAILURE;
    };
    match run(&server_path) {
        Ok(()) => {
            println!("server-check: ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server-check: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(server_path: &str) -> Result<(), String> {
    with_server(
        server_path,
        &["--port", "0", "--tasks", "4", "--method", "singletons"],
        drive,
    )?;
    with_server(
        server_path,
        &["--port", "0", "--tasks", "6", "--method", "ag-tr"],
        drive_incremental_equivalence,
    )?;
    with_server(
        server_path,
        &[
            "--port",
            "0",
            "--tasks",
            "4",
            "--method",
            "singletons",
            "--epoch-interval-ms",
            "20",
        ],
        drive_timer_epochs,
    )
}

/// Spawns the server with `args`, hands its announced address to `f`,
/// and insists on a clean exit.
fn with_server(
    server_path: &str,
    args: &[&str],
    f: fn(&str) -> Result<(), String>,
) -> Result<(), String> {
    let mut child = Command::new(server_path)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn {server_path}: {e}"))?;
    let result = announced_addr(&mut child).and_then(|addr| f(&addr));
    if result.is_err() {
        let _ = child.kill();
    }
    let status = child
        .wait()
        .map_err(|e| format!("waiting for server: {e}"))?;
    result?;
    if !status.success() {
        return Err(format!("server exited with {status}"));
    }
    Ok(())
}

/// The server announces its ephemeral port on stdout before accepting.
fn announced_addr(child: &mut Child) -> Result<String, String> {
    let stdout = child.stdout.take().ok_or("no stdout pipe")?;
    let mut first_line = String::new();
    BufReader::new(stdout)
        .read_line(&mut first_line)
        .map_err(|e| e.to_string())?;
    Ok(first_line
        .trim()
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected announcement {first_line:?}"))?
        .to_string())
}

fn drive(addr: &str) -> Result<(), String> {
    // Liveness — and not yet ready: nothing published before epoch 1.
    let health = request(addr, "GET", "/healthz", None)?;
    expect_num(&health, "epoch", 0.0)?;
    if field(&health, "ready") != Some(&Json::Bool(false)) {
        return Err("healthz must report ready=false before the first epoch".into());
    }

    // A mixed batch: four valid reports, one duplicate to be rejected.
    let batch = r#"{"reports":[
        {"account":0,"task":0,"value":-70.0,"timestamp":1.0},
        {"account":1,"task":0,"value":-74.0,"timestamp":2.0},
        {"account":1,"task":1,"value":-61.0,"timestamp":3.0},
        {"account":2,"task":0,"value":-71.0,"timestamp":4.0},
        {"account":0,"task":0,"value":-99.0,"timestamp":5.0}
    ]}"#;
    let ingest = request(addr, "POST", "/ingest", Some(batch))?;
    expect_num(&ingest, "accepted", 4.0)?;
    expect_num(&ingest, "rejected", 1.0)?;

    // Epoch 1: cold.
    let first = request(addr, "POST", "/epoch", None)?;
    expect_num(&first, "epoch", 1.0)?;
    expect_num(&first, "folded", 4.0)?;
    if field(&first, "warm_started") != Some(&Json::Bool(false)) {
        return Err("epoch 1 must run cold".into());
    }

    // Epoch 2: unchanged reports — the steady-state warm-start contract.
    let second = request(addr, "POST", "/epoch", None)?;
    expect_num(&second, "epoch", 2.0)?;
    expect_num(&second, "folded", 0.0)?;
    if field(&second, "warm_started") != Some(&Json::Bool(true)) {
        return Err("epoch 2 must warm-start".into());
    }
    match field(&second, "iterations") {
        Some(Json::Num(n)) if *n <= 2.0 => {}
        other => return Err(format!("warm epoch took {other:?} iterations, want ≤2")),
    }

    // Published snapshot: well-formed, the right shape.
    let truths = request(addr, "GET", "/truths", None)?;
    expect_num(&truths, "num_reports", 4.0)?;
    match field(&truths, "truths") {
        Some(Json::Arr(ts)) if ts.len() == 4 => {
            if !matches!(ts[0], Json::Num(v) if (-75.0..=-70.0).contains(&v)) {
                return Err(format!("task 0 truth {:?} outside the report hull", ts[0]));
            }
        }
        other => return Err(format!("bad truths array: {other:?}")),
    }

    let groups = request(addr, "GET", "/groups", None)?;
    expect_num(&groups, "num_groups", 3.0)?;

    // Readiness after two epochs: published snapshot, measured duration.
    let health = request(addr, "GET", "/healthz", None)?;
    expect_num(&health, "epoch", 2.0)?;
    if field(&health, "ready") != Some(&Json::Bool(true)) {
        return Err("healthz must report ready=true after an epoch".into());
    }
    match field(&health, "last_epoch_duration_ns") {
        Some(Json::Num(ns)) if *ns > 0.0 => {}
        other => return Err(format!("bad last_epoch_duration_ns: {other:?}")),
    }

    // Metrics: the obs export must carry the epoch-loop counters.
    let metrics_raw = request_raw(addr, "GET", "/metrics", None)?;
    for name in [
        "server.epoch.ingested",
        "server.epoch.folded",
        "server.epoch.iterations",
        "server.epoch.snapshot_swaps",
        "server.http.requests",
        "server.http.status.2xx",
    ] {
        if !metrics_raw.contains(name) {
            return Err(format!("metrics export is missing `{name}`"));
        }
    }
    let metrics = parse(&metrics_raw).map_err(|e| format!("metrics is not valid JSON: {e}"))?;

    // Timeline: two epochs → two retained windows whose epoch-counter
    // deltas sum to the cumulative /metrics values (the HTTP counters
    // keep moving between windows, so only the epoch family tiles).
    let history = request(addr, "GET", "/metrics/history?n=2", None)?;
    expect_num(&history, "count", 2.0)?;
    let Some(Json::Arr(windows)) = field(&history, "windows") else {
        return Err("history response is missing `windows`".into());
    };
    if windows.len() != 2 {
        return Err(format!("want 2 history windows, got {}", windows.len()));
    }
    for name in [
        "server.epoch.ingested",
        "server.epoch.folded",
        "server.epoch.iterations",
        "server.epoch.snapshot_swaps",
    ] {
        let delta_sum: f64 = windows
            .iter()
            .map(|w| {
                field(w, "counters")
                    .and_then(|c| field(c, name))
                    .map_or(0.0, |v| if let Json::Num(x) = v { *x } else { 0.0 })
            })
            .sum();
        let cumulative = field(&metrics, "counters")
            .and_then(|c| field(c, name))
            .map_or(0.0, |v| if let Json::Num(x) = v { *x } else { 0.0 });
        if delta_sum != cumulative {
            return Err(format!(
                "`{name}`: window deltas sum to {delta_sum}, cumulative is {cumulative}"
            ));
        }
    }

    // Trace: the latest epoch's tree attributes the pipeline stages.
    let trace_raw = request_raw(addr, "GET", "/trace", None)?;
    let trace = parse(&trace_raw).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    if field(&trace, "trace").is_none() {
        return Err("trace response is missing `trace`".into());
    }
    for stage in ["server.epoch", "epoch.fold", "epoch.discover", "epoch.swap"] {
        if !trace_raw.contains(stage) {
            return Err(format!("trace is missing stage `{stage}`"));
        }
    }

    // Prometheus exposition: text format, counter families present.
    let prom = request_raw(addr, "GET", "/metrics?format=prom", None)?;
    for needle in [
        "# TYPE srtd_server_epoch_ingested_total counter",
        "srtd_server_epoch_ingested_total 4",
        "srtd_server_http_request_us_bucket{le=\"+Inf\"}",
    ] {
        if !prom.contains(needle) {
            return Err(format!("prom exposition is missing `{needle}`:\n{prom}"));
        }
    }

    let bye = request(addr, "POST", "/shutdown", None)?;
    if field(&bye, "status") != Some(&Json::str("shutting down")) {
        return Err("shutdown not acknowledged".into());
    }
    Ok(())
}

/// Phase 2: the server's incremental epoch path must publish snapshots
/// identical to the batch path. The same ingest schedule feeds the AG-TR
/// server over HTTP and an in-process batch engine; truths, labels, and
/// group weights must agree bitwise every epoch. The schedule exercises
/// all three incremental regimes: a cold first epoch with a Sybil ring
/// (accounts 0–2 replay one walk 30–65 s apart), a growth epoch adding
/// account 4 while account 3 folds new reports (forcing the rebuild
/// regime), and an empty steady-state epoch.
fn drive_incremental_equivalence(addr: &str) -> Result<(), String> {
    let mut mirror = EpochEngine::new(
        SybilResistantTd::new(AgTr::default()),
        6,
        EpochConfig::default(),
    );
    let epochs: [&[(usize, usize, f64, f64)]; 3] = [
        &[
            (0, 0, -70.0, 100.0),
            (0, 1, -69.0, 160.0),
            (0, 2, -71.0, 220.0),
            (1, 0, -70.5, 130.0),
            (1, 1, -69.5, 190.0),
            (1, 2, -70.8, 250.0),
            (2, 0, -70.2, 165.0),
            (2, 1, -69.2, 225.0),
            (2, 2, -71.2, 285.0),
            (3, 2, -64.0, 500.0),
            (3, 0, -75.0, 560.0),
        ],
        &[
            (3, 5, -66.0, 620.0),
            (4, 3, -80.0, 700.0),
            (4, 4, -58.0, 760.0),
        ],
        &[],
    ];
    for (i, batch) in epochs.iter().enumerate() {
        if !batch.is_empty() {
            let reports: Vec<String> = batch
                .iter()
                .map(|(a, t, v, ts)| {
                    format!(r#"{{"account":{a},"task":{t},"value":{v},"timestamp":{ts}}}"#)
                })
                .collect();
            let body = format!(r#"{{"reports":[{}]}}"#, reports.join(","));
            let ingest = request(addr, "POST", "/ingest", Some(&body))?;
            expect_num(&ingest, "accepted", batch.len() as f64)?;
            for &(a, t, v, ts) in batch.iter() {
                mirror
                    .ingest(a, t, v, ts)
                    .map_err(|e| format!("mirror rejected ({a},{t}): {e}"))?;
            }
        }
        let http_snap = request(addr, "POST", "/epoch", None)?;
        let batch_snap = mirror.run_epoch().to_json();
        for name in [
            "epoch",
            "generation",
            "num_accounts",
            "num_reports",
            "folded",
            "truths",
            "labels",
            "group_weights",
        ] {
            if field(&http_snap, name) != field(&batch_snap, name) {
                return Err(format!(
                    "epoch {}: incremental `{name}` {:?} != batch {:?}",
                    i + 1,
                    field(&http_snap, name),
                    field(&batch_snap, name)
                ));
            }
        }
    }
    // The equivalence is non-trivial: AG-TR groups the replayed ring.
    let groups = request(addr, "GET", "/groups", None)?;
    match field(&groups, "labels") {
        Some(Json::Arr(ls)) if ls.len() == 5 => {
            if ls[0] != ls[1] || ls[1] != ls[2] {
                return Err(format!("ring not grouped: {ls:?}"));
            }
            if ls[3] == ls[0] || ls[4] == ls[0] {
                return Err(format!("honest accounts joined the ring: {ls:?}"));
            }
        }
        other => return Err(format!("bad labels: {other:?}")),
    }
    let bye = request(addr, "POST", "/shutdown", None)?;
    if field(&bye, "status") != Some(&Json::str("shutting down")) {
        return Err("shutdown not acknowledged".into());
    }
    Ok(())
}

/// Phase 3: timer-driven epochs. With `--epoch-interval-ms 20` the
/// server must publish a snapshot on its own after an ingest (no
/// explicit `POST /epoch`), must *not* spin epoch numbers while idle
/// (timer epochs only run when reports are pending), and must still
/// shut down cleanly with the ticker thread joined.
fn drive_timer_epochs(addr: &str) -> Result<(), String> {
    let batch = r#"{"reports":[
        {"account":0,"task":0,"value":-70.0,"timestamp":1.0},
        {"account":1,"task":1,"value":-64.0,"timestamp":2.0}
    ]}"#;
    let ingest = request(addr, "POST", "/ingest", Some(batch))?;
    expect_num(&ingest, "accepted", 2.0)?;

    // Poll readiness: the ticker fires every 20 ms, so a snapshot must
    // appear well within the deadline without any POST /epoch.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let epoch = loop {
        let health = request(addr, "GET", "/healthz", None)?;
        if field(&health, "ready") == Some(&Json::Bool(true)) {
            match field(&health, "epoch") {
                Some(Json::Num(e)) => break *e,
                other => return Err(format!("bad epoch field: {other:?}")),
            }
        }
        if std::time::Instant::now() > deadline {
            return Err("timer never published an epoch".into());
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    if epoch != 1.0 {
        return Err(format!("want exactly one timer epoch, got {epoch}"));
    }

    // The published snapshot folded the ingested reports.
    let truths = request(addr, "GET", "/truths", None)?;
    expect_num(&truths, "num_reports", 2.0)?;

    // Idle ticks must not run epochs: after a few more intervals the
    // epoch counter is unchanged, while the tick counter kept moving.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let health = request(addr, "GET", "/healthz", None)?;
    expect_num(&health, "epoch", 1.0)?;
    let metrics = request_raw(addr, "GET", "/metrics", None)?;
    for name in ["server.epoch.timer_ticks", "server.epoch.timer_epochs"] {
        if !metrics.contains(name) {
            return Err(format!("metrics export is missing `{name}`"));
        }
    }

    let bye = request(addr, "POST", "/shutdown", None)?;
    if field(&bye, "status") != Some(&Json::str("shutting down")) {
        return Err("shutdown not acknowledged".into());
    }
    Ok(())
}

/// One HTTP request; the response body must parse as JSON.
fn request(addr: &str, verb: &str, path: &str, body: Option<&str>) -> Result<Json, String> {
    let raw = request_raw(addr, verb, path, body)?;
    parse(&raw).map_err(|e| format!("{verb} {path}: invalid JSON response: {e}"))
}

fn request_raw(addr: &str, verb: &str, path: &str, body: Option<&str>) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let body = body.unwrap_or("");
    let req = format!(
        "{verb} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{verb} {path}: malformed response"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(format!("{verb} {path}: status {status}, body {payload}"));
    }
    Ok(payload.to_string())
}

fn field<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    let Json::Obj(fields) = doc else { return None };
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn expect_num(doc: &Json, name: &str, want: f64) -> Result<(), String> {
    match field(doc, name) {
        Some(Json::Num(x)) if *x == want => Ok(()),
        other => Err(format!("field `{name}`: want {want}, got {other:?}")),
    }
}
