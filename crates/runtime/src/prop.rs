//! Minimal deterministic property-test harness.
//!
//! A property test here is two closures: a *generator* that draws an
//! arbitrary input from a seeded [`StdRng`], and a *property* that
//! returns `Err(reason)` when the input violates the invariant. The
//! harness runs a fixed number of cases, each from its own
//! SplitMix64-derived seed, and panics on the first failure with the
//! case index, the case seed and the `Debug` rendering of the offending
//! input — everything needed to replay the case under a debugger.
//!
//! Unlike `proptest`, there is no shrinking and no persistence file: the
//! suite is fully deterministic (same binary → same cases), so a failure
//! reproduces by just re-running the test, and the reported case seed
//! lets a regression be pinned as an ordinary unit test.
//!
//! The [`prop_assert!`](crate::prop_assert) and
//! [`prop_assert_eq!`](crate::prop_assert_eq) macros early-return
//! `Err(String)` so property bodies read like ordinary test bodies.
//!
//! # Examples
//!
//! ```
//! use srtd_runtime::prop;
//! use srtd_runtime::rng::Rng;
//!
//! prop::check(
//!     |rng| rng.gen_range(-1.0e6..1.0e6),
//!     |&x: &f64| {
//!         srtd_runtime::prop_assert!(x.abs() >= 0.0, "abs must be non-negative");
//!         Ok(())
//!     },
//! );
//! ```

use crate::rng::{SeedableRng, SplitMix64, StdRng};

/// Number of cases and base seed of a [`check_with`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropConfig {
    /// Cases to run; every case uses a fresh derived seed.
    pub cases: u32,
    /// Base seed the per-case seeds are derived from.
    pub seed: u64,
}

impl Default for PropConfig {
    /// 128 cases from a fixed base seed.
    fn default() -> Self {
        Self {
            cases: 128,
            seed: 0x5eed_0bad_cafe,
        }
    }
}

/// Runs a property under the default [`PropConfig`].
///
/// # Panics
///
/// Panics on the first case whose `property` returns `Err`, reporting
/// the case index, case seed and input.
pub fn check<T, G, P>(generator: G, property: P)
where
    T: std::fmt::Debug,
    G: FnMut(&mut StdRng) -> T,
    P: FnMut(&T) -> Result<(), String>,
{
    check_with(PropConfig::default(), generator, property);
}

/// Runs a property with an explicit case count and base seed.
///
/// # Panics
///
/// Panics on the first failing case (see [`check`]).
pub fn check_with<T, G, P>(config: PropConfig, mut generator: G, mut property: P)
where
    T: std::fmt::Debug,
    G: FnMut(&mut StdRng) -> T,
    P: FnMut(&T) -> Result<(), String>,
{
    let mut seeds = SplitMix64::new(config.seed);
    for case in 0..config.cases {
        let case_seed = seeds.next_u64();
        let mut rng = StdRng::seed_from_u64(case_seed);
        let input = generator(&mut rng);
        if let Err(reason) = property(&input) {
            panic!(
                "property failed on case {case}/{total} (case seed {case_seed:#018x}):\n  \
                 {reason}\n  input: {input:?}",
                total = config.cases,
            );
        }
    }
}

/// Draws a `Vec` whose length is uniform in `len` and whose elements come
/// from `element` — the workhorse for porting collection strategies.
pub fn vec_with<T, F>(rng: &mut StdRng, len: std::ops::Range<usize>, mut element: F) -> Vec<T>
where
    F: FnMut(&mut StdRng) -> T,
{
    use crate::rng::Rng;
    let n = if len.start + 1 == len.end {
        len.start
    } else {
        rng.gen_range(len)
    };
    (0..n).map(|_| element(rng)).collect()
}

/// Early-returns `Err(String)` from a property body when the condition
/// does not hold. With only a condition the message is the stringified
/// expression; extra arguments format the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Early-returns `Err(String)` when the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($arg)+),
                left,
                right
            ));
        }
    }};
}

/// Early-returns `Err(String)` when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!("{}\n  both: {:?}", format!($($arg)+), left));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        check(
            |rng| rng.gen_range(0..100u64),
            |_| {
                count += 1;
                Ok(())
            },
        );
        assert_eq!(count, PropConfig::default().cases);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut inputs = Vec::new();
            check(
                |rng| rng.next_u64(),
                |&x| {
                    inputs.push(x);
                    Ok(())
                },
            );
            inputs
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "property failed on case")]
    fn failing_property_reports_the_case() {
        check(
            |rng| rng.gen_range(0..10u64),
            |&x| {
                prop_assert!(x < 5, "drew {x}, expected < 5");
                Ok(())
            },
        );
    }

    #[test]
    fn prop_assert_eq_formats_both_sides() {
        fn inner() -> Result<(), String> {
            prop_assert_eq!(1 + 1, 3, "arithmetic is broken");
            Ok(())
        }
        let err = inner().expect_err("must fail");
        assert!(err.contains("arithmetic is broken"), "{err}");
        assert!(err.contains('2') && err.contains('3'), "{err}");
    }

    #[test]
    fn prop_assert_ne_fires_on_equality() {
        fn inner() -> Result<(), String> {
            prop_assert_ne!(7, 7);
            Ok(())
        }
        assert!(inner().is_err());
    }

    #[test]
    fn vec_with_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = vec_with(&mut rng, 2..9, |r| r.next_f64());
            assert!((2..9).contains(&v.len()));
        }
        let fixed = vec_with(&mut rng, 4..5, |r| r.next_u64());
        assert_eq!(fixed.len(), 4);
    }
}
