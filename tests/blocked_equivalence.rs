//! Blocked vs exhaustive grouping equivalence: candidate generation is a
//! pure superset filter, so turning blocking on must change *nothing*
//! observable — identical groups, identical labels, identical audit
//! reports — on paper-scale campaigns, on a 202-group Sybil-replay
//! campaign, and on random campaigns, at 1 and 4 worker threads.
//!
//! This is the contract that makes blocking safe to enable by default:
//! the prefix filter (AG-TS) and endpoint cells (AG-TR) provably cover
//! every above-/below-threshold pair, so the exhaustive scan can only add
//! pairs the decision stage rejects anyway.

use sybil_td::core::{AccountGrouping, AgTr, AgTs};
use sybil_td::platform::{Platform, PlatformConfig};
use sybil_td::runtime::parallel::set_max_threads;
use sybil_td::runtime::rng::{Rng, SeedableRng, StdRng};
use sybil_td::runtime::{prop, prop_assert_eq};
use sybil_td::sensing::{Scenario, ScenarioConfig};
use sybil_td::truth::SensingData;

/// Same shape as `ag_tr_equivalence.rs`: 200 legitimate accounts with
/// random trajectories plus 2 Sybil attackers whose 10 accounts each
/// replay one walk — 202 true groups, so blocking has genuine merges to
/// preserve.
fn campaign_202_groups(seed: u64) -> SensingData {
    const LEGIT: usize = 200;
    const ATTACKERS: usize = 2;
    const SYBILS: usize = 10;
    const TASKS: usize = 100;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = SensingData::new(TASKS);
    for a in 0..LEGIT {
        for t in 0..TASKS {
            if rng.gen_range(0f64..1.0) < 0.25 {
                data.add_report(a, t, -70.0 + rng.gen_range(-5f64..5.0), t as f64 * 30.0);
            }
        }
    }
    for attacker in 0..ATTACKERS {
        let mut walk: Vec<(usize, f64)> = Vec::new();
        for t in 0..TASKS {
            if rng.gen_range(0f64..1.0) < 0.25 {
                walk.push((t, t as f64 * 30.0 + rng.gen_range(0f64..5.0)));
            }
        }
        for s in 0..SYBILS {
            let account = LEGIT + attacker * SYBILS + s;
            for &(t, ts) in &walk {
                data.add_report(account, t, -50.0, ts + s as f64 * 2.0);
            }
        }
    }
    data
}

/// Asserts blocked ≡ exhaustive for both pairwise signals on `data`, at 1
/// and 4 worker threads. For AG-TR the exhaustive reference is run both
/// with and without pruning — blocking must be transparent against either.
fn assert_blocked_equivalent(data: &SensingData, rho: f64) {
    let ts_blocked = AgTs::new(rho);
    let ts_exhaustive = ts_blocked.with_blocking(false);
    let tr_blocked = AgTr::default();
    let tr_exhaustive = tr_blocked.with_blocking(false);
    let tr_unpruned = tr_blocked.with_pruning(false);
    for threads in [1usize, 4] {
        set_max_threads(threads);
        let gb = ts_blocked.group(data, &[]);
        let ge = ts_exhaustive.group(data, &[]);
        assert_eq!(
            gb.groups(),
            ge.groups(),
            "AG-TS diverged at {threads} thread(s), rho {rho}"
        );
        assert_eq!(gb.labels(), ge.labels());

        let gb = tr_blocked.group(data, &[]);
        let ge = tr_exhaustive.group(data, &[]);
        let gu = tr_unpruned.group(data, &[]);
        assert_eq!(
            gb.groups(),
            ge.groups(),
            "AG-TR blocked vs exhaustive diverged at {threads} thread(s)"
        );
        assert_eq!(gb.labels(), ge.labels());
        assert_eq!(
            gb.groups(),
            gu.groups(),
            "AG-TR blocked vs unpruned diverged at {threads} thread(s)"
        );
    }
    set_max_threads(0);
}

#[test]
fn paper_scale_campaigns_group_identically() {
    for seed in [0, 3, 17] {
        let scenario = Scenario::generate(&ScenarioConfig::paper_default().with_seed(seed));
        assert_blocked_equivalent(&scenario.data, 1.0);
    }
}

#[test]
fn paper_scale_sparse_activeness_groups_identically() {
    let scenario = Scenario::generate(
        &ScenarioConfig::paper_default()
            .with_activeness(0.4, 0.7)
            .with_seed(11),
    );
    // ρ = 0 exercises the blocked path's tightest admissible threshold.
    assert_blocked_equivalent(&scenario.data, 0.0);
}

#[test]
fn synthetic_202_group_campaign_groups_identically() {
    let data = campaign_202_groups(42);
    // Sanity: the blocked signals really merge the Sybil accounts.
    let g_tr = AgTr::default().group(&data, &[]);
    assert!(
        g_tr.groups().iter().any(|g| g.len() >= 10),
        "each attacker's accounts should form one AG-TR component"
    );
    let g_ts = AgTs::new(0.5).group(&data, &[]);
    assert!(
        g_ts.len() < data.num_accounts(),
        "AG-TS should merge the shared-walk accounts"
    );
    assert_blocked_equivalent(&data, 0.5);
}

#[test]
fn random_campaigns_group_identically() {
    // Random small campaigns: arbitrary task sets and timestamps, with a
    // planted duplicated walk so merges exist. Deterministic 128-case
    // sweep; each case checks both signals across several thresholds.
    prop::check(
        |rng: &mut StdRng| {
            let num_tasks = rng.gen_range(3usize..20);
            let accounts = rng.gen_range(2usize..14);
            let mut data = SensingData::new(num_tasks);
            for a in 0..accounts {
                let k = rng.gen_range(0usize..num_tasks.min(6) + 1);
                let mut tasks: Vec<usize> = (0..num_tasks).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..num_tasks);
                    tasks.swap(i, j);
                    data.add_report(
                        a,
                        tasks[i],
                        rng.gen_range(-90f64..-40.0),
                        rng.gen_range(0f64..7200.0),
                    );
                }
            }
            // Plant one replayed pair: the last account clones account 0's
            // trajectory with second-scale offsets.
            let clone_of: Vec<_> = data.trajectory_of(0);
            let cloned = accounts;
            for r in &clone_of {
                data.add_report(cloned, r.task, r.value, r.timestamp + 3.0);
            }
            data
        },
        |data: &SensingData| {
            for rho in [1.0, 0.1, 0.0, -1.0] {
                let blocked = AgTs::new(rho);
                let a = blocked.group(data, &[]);
                let b = blocked.with_blocking(false).group(data, &[]);
                prop_assert_eq!(a.groups(), b.groups(), "AG-TS rho {}", rho);
            }
            let blocked = AgTr::default();
            let a = blocked.group(data, &[]);
            let b = blocked.with_blocking(false).group(data, &[]);
            prop_assert_eq!(a.groups(), b.groups(), "AG-TR");
            let c = blocked.with_pruning(false).group(data, &[]);
            prop_assert_eq!(a.groups(), c.groups(), "AG-TR vs unpruned");
            Ok(())
        },
    );
}

/// The blocking second key on its motivating workload: a scaled campaign
/// where *every* account reports exactly `tasks_per_account` tasks, so
/// set-size keys alone prune nothing. The pair key must (a) keep AG-TS
/// groups identical to the exhaustive path and (b) visit well under a
/// tenth of the `n(n−1)/2` pairs the exhaustive scan would score.
#[test]
fn scaled_fixed_size_campaign_groups_identically_with_sparse_candidates() {
    use sybil_td::core::grouping::blocking::ts_candidates;
    use sybil_td::sensing::{ScaledCampaign, ScaledCampaignConfig};

    let campaign = ScaledCampaign::generate(&ScaledCampaignConfig::new(3_000).with_seed(9));
    let data = &campaign.data;
    assert_blocked_equivalent(data, 0.0);

    let n = data.num_accounts();
    let task_sets: Vec<Vec<usize>> = (0..n).map(|a| data.tasks_of(a)).collect();
    let c = ts_candidates(&task_sets, data.num_tasks(), None);
    assert!(
        c.pairs.len() as u64 * 10 <= c.total_pairs,
        "{} candidates out of {} pairs — expected ≥10× reduction",
        c.pairs.len(),
        c.total_pairs
    );
}

#[test]
fn audit_reports_match_between_blocked_and_exhaustive_paths() {
    let scenario = Scenario::generate(&ScenarioConfig::paper_default().with_seed(5));
    let mut platform = Platform::new(PlatformConfig::default());
    platform.publish_tasks(scenario.data.num_tasks());
    let max_ts = scenario
        .data
        .reports()
        .iter()
        .map(|r| r.timestamp)
        .fold(0.0, f64::max);
    platform.advance_clock(max_ts + 1.0);
    let mut ids = Vec::new();
    for fp in &scenario.fingerprints {
        ids.push(platform.enroll(fp.clone(), 0.0).expect("enroll"));
    }
    for (account, &id) in ids.iter().enumerate() {
        for r in scenario.data.trajectory_of(account) {
            platform
                .submit(id, r.task, r.value, r.timestamp)
                .expect("submit");
        }
    }
    let tr_blocked = platform.audit(&AgTr::default(), 2);
    let tr_exhaustive = platform.audit(&AgTr::default().with_blocking(false), 2);
    assert_eq!(tr_blocked, tr_exhaustive);
    let ts_blocked = platform.audit(&AgTs::default(), 2);
    let ts_exhaustive = platform.audit(&AgTs::default().with_blocking(false), 2);
    assert_eq!(ts_blocked, ts_exhaustive);
}
