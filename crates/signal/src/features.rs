//! Combined feature vectors and feature-matrix standardization.

use crate::arena::with_scratch;
use crate::fft::{
    fft_windowed_real_into, fft_windowed_real_pair_into, next_power_of_two,
    real_pair_magnitudes_into,
};
use crate::spectral::SpectralFeatures;
use crate::spectrum::Spectrum;
use crate::temporal::TemporalFeatures;
use crate::window::Window;
use srtd_runtime::parallel::parallel_map_min;
use std::collections::BTreeMap;

/// Number of features per sensor stream (9 temporal + 11 spectral).
pub const FEATURES_PER_STREAM: usize = 20;

/// Configuration for per-stream feature extraction.
///
/// # Examples
///
/// ```
/// use srtd_signal::FeatureConfig;
///
/// let cfg = FeatureConfig::new(100.0);
/// assert_eq!(cfg.sample_rate, 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureConfig {
    /// Sensor sampling rate in Hz.
    pub sample_rate: f64,
    /// Window applied before the FFT.
    pub window: Window,
    /// Brightness cut-off in Hz.
    ///
    /// MIRtoolbox defaults to 1500 Hz for audio; motion sensors sample at
    /// ~100 Hz, so the default scales the cut-off to 30% of Nyquist.
    pub brightness_cutoff_hz: f64,
}

impl FeatureConfig {
    /// Default configuration for a sensor sampled at `sample_rate` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not finite and positive.
    pub fn new(sample_rate: f64) -> Self {
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample rate must be positive, got {sample_rate}"
        );
        Self {
            sample_rate,
            window: Window::Hann,
            brightness_cutoff_hz: 0.3 * sample_rate / 2.0,
        }
    }

    /// Replaces the window function.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Replaces the brightness cut-off.
    pub fn with_brightness_cutoff(mut self, cutoff_hz: f64) -> Self {
        self.brightness_cutoff_hz = cutoff_hz;
        self
    }
}

/// The full 20-feature description of one sensor stream (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamFeatures {
    /// Features 1–9 (time domain).
    pub temporal: TemporalFeatures,
    /// Features 10–20 (frequency domain).
    pub spectral: SpectralFeatures,
}

impl StreamFeatures {
    /// Concatenated feature vector in Table-II order (length 20).
    pub fn to_vec(self) -> Vec<f64> {
        let mut v = Vec::with_capacity(FEATURES_PER_STREAM);
        self.extend_into(&mut v);
        v
    }

    /// Appends the 20 features to `out` in Table-II order, without the
    /// intermediate allocations of [`StreamFeatures::to_vec`] — campaign
    /// fingerprinting concatenates one of these per axis stream.
    pub fn extend_into(self, out: &mut Vec<f64>) {
        let t = self.temporal;
        let s = self.spectral;
        out.extend_from_slice(&[
            t.mean,
            t.std_dev,
            t.skewness,
            t.kurtosis,
            t.rms,
            t.max,
            t.min,
            t.zcr,
            t.non_negative_fraction,
            s.centroid,
            s.spread,
            s.skewness,
            s.kurtosis,
            s.flatness,
            s.irregularity,
            s.entropy,
            s.rolloff,
            s.brightness,
            s.rms,
            s.roughness,
        ]);
    }
}

/// Fused per-stream extraction from a precomputed spectrum: the temporal
/// half in two [`crate::stats::Moments`] passes over the signal, the
/// spectral half in two passes over the magnitude body plus one shared
/// peak scan. Both entry points ([`stream_features`] and the batch jobs)
/// funnel through here, so the `signal.features.fused_calls` counter
/// counts every Table-II extraction in the process.
fn extract_from_spectrum(
    signal: &[f64],
    spectrum: &Spectrum,
    config: &FeatureConfig,
) -> StreamFeatures {
    srtd_runtime::obs::counter_add("signal.features.fused_calls", 1);
    StreamFeatures {
        temporal: TemporalFeatures::extract(signal),
        spectral: SpectralFeatures::extract(spectrum, config.brightness_cutoff_hz),
    }
}

/// Extracts the 20 Table-II features from one sensor stream.
///
/// # Examples
///
/// ```
/// use srtd_signal::{stream_features, FeatureConfig};
///
/// let xs: Vec<f64> = (0..128).map(|i| (i as f64).sin()).collect();
/// let f = stream_features(&xs, &FeatureConfig::new(100.0));
/// assert_eq!(f.to_vec().len(), 20);
/// ```
pub fn stream_features(signal: &[f64], config: &FeatureConfig) -> StreamFeatures {
    let _span = srtd_runtime::obs::span("signal.stream_features");
    srtd_runtime::obs::counter_add("signal.stream_features.calls", 1);
    srtd_runtime::obs::observe("signal.stream_features.len", signal.len() as f64);
    with_scratch(|scratch| {
        let table = config.window.table(signal.len());
        fft_windowed_real_into(
            &mut scratch.buf,
            signal,
            table.as_ref().map(|t| t.as_slice()),
        );
        let spectrum = Spectrum::from_fft_into(
            &scratch.buf,
            config.sample_rate,
            std::mem::take(&mut scratch.mag_a),
        );
        let features = extract_from_spectrum(signal, &spectrum, config);
        scratch.mag_a = spectrum.into_magnitudes();
        features
    })
}

/// Extracts Table-II features for a batch of sensor streams.
///
/// Streams whose zero-padded FFT lengths match are packed two at a time
/// through [`fft_windowed_real_pair_into`] — one complex transform per
/// pair instead of one per stream — and each job runs the *whole*
/// per-stream pipeline inside the deterministic parallel map: windowing
/// fused into the FFT's bit-reversal load (reading the raw streams and
/// the cached coefficient tables directly, no windowed copies), then the
/// packed spectrum split straight into per-thread arena magnitude
/// buffers, then fused temporal + spectral extraction. The only
/// sequential work left is job assembly; the only steady-state
/// allocations are the outputs. Output order matches input order.
///
/// Results are byte-identical regardless of worker-thread count (job
/// order and chunking depend only on the batch itself, and each stream's
/// features are computed entirely within its own job). Relative to
/// per-stream [`stream_features`] the spectral features agree to ~1e-9:
/// the pair split re-associates a handful of additions, so bits may
/// differ in the last ulps. The temporal features never pass through the
/// FFT, so their bits match the per-stream path exactly.
pub fn stream_features_batch<S: AsRef<[f64]> + Sync>(
    streams: &[S],
    config: &FeatureConfig,
) -> Vec<StreamFeatures> {
    let _span = srtd_runtime::obs::span("signal.stream_features_batch");
    srtd_runtime::obs::counter_add("signal.stream_features_batch.calls", 1);
    srtd_runtime::obs::observe("signal.stream_features_batch.streams", streams.len() as f64);
    // Pair up streams with equal padded FFT length; a leftover stream in
    // any length class takes the plain single-stream transform.
    let mut by_len: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, s) in streams.iter().enumerate() {
        by_len
            .entry(next_power_of_two(s.as_ref().len()))
            .or_default()
            .push(i);
    }
    let jobs: Vec<(usize, Option<usize>)> = by_len
        .values()
        .flat_map(|indices| {
            indices
                .chunks(2)
                .map(|pair| (pair[0], pair.get(1).copied()))
        })
        .collect();
    let extracted = parallel_map_min(&jobs, 2, |&(i, j)| {
        with_scratch(|scratch| {
            let xi = streams[i].as_ref();
            let ti = config.window.table(xi.len());
            match j {
                Some(j) => {
                    let xj = streams[j].as_ref();
                    let tj = config.window.table(xj.len());
                    fft_windowed_real_pair_into(
                        &mut scratch.buf,
                        xi,
                        ti.as_ref().map(|t| t.as_slice()),
                        xj,
                        tj.as_ref().map(|t| t.as_slice()),
                    );
                    real_pair_magnitudes_into(&scratch.buf, &mut scratch.mag_a, &mut scratch.mag_b);
                    // Same division `from_fft` performs: rate over the
                    // padded transform length.
                    let bin_width = config.sample_rate / scratch.buf.len() as f64;
                    let spec_i =
                        Spectrum::from_magnitudes(std::mem::take(&mut scratch.mag_a), bin_width);
                    let fi = (i, extract_from_spectrum(xi, &spec_i, config));
                    scratch.mag_a = spec_i.into_magnitudes();
                    let spec_j =
                        Spectrum::from_magnitudes(std::mem::take(&mut scratch.mag_b), bin_width);
                    let fj = (j, extract_from_spectrum(xj, &spec_j, config));
                    scratch.mag_b = spec_j.into_magnitudes();
                    (fi, Some(fj))
                }
                None => {
                    fft_windowed_real_into(&mut scratch.buf, xi, ti.as_ref().map(|t| t.as_slice()));
                    let spectrum = Spectrum::from_fft_into(
                        &scratch.buf,
                        config.sample_rate,
                        std::mem::take(&mut scratch.mag_a),
                    );
                    let fi = (i, extract_from_spectrum(xi, &spectrum, config));
                    scratch.mag_a = spectrum.into_magnitudes();
                    (fi, None)
                }
            }
        })
    });
    let mut features: Vec<Option<StreamFeatures>> = vec![None; streams.len()];
    for ((i, fi), rest) in extracted {
        features[i] = Some(fi);
        if let Some((j, fj)) = rest {
            features[j] = Some(fj);
        }
    }
    features
        .into_iter()
        .map(|f| f.expect("every stream got features"))
        .collect()
}

/// Z-score standardization of a feature matrix, column by column.
///
/// k-means and PCA are scale-sensitive; raw Table-II features span wildly
/// different ranges (fractions vs. Hz vs. m/s²), so AG-FP standardizes each
/// column to zero mean and unit variance before clustering. Constant
/// columns (zero variance) are mapped to all-zeros rather than dividing by
/// zero.
///
/// Returns the standardized matrix together with per-column `(mean, std)`
/// so new vectors can be projected consistently.
///
/// Statistics are accumulated row-major — one cache-friendly sweep over
/// the matrix per statistic instead of `dim` strided column walks. Each
/// column's additions still happen in row order from `Iterator::sum`'s
/// `-0.0` identity, so the output is bit-identical to the
/// column-at-a-time formulation.
///
/// # Panics
///
/// Panics if rows have inconsistent lengths.
pub fn standardize(rows: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<(f64, f64)>) {
    let Some(first) = rows.first() else {
        return (Vec::new(), Vec::new());
    };
    let dim = first.len();
    assert!(
        rows.iter().all(|r| r.len() == dim),
        "feature rows must have equal lengths"
    );
    let n = rows.len() as f64;
    let mut sums = vec![-0.0f64; dim];
    for r in rows {
        for (s, &x) in sums.iter_mut().zip(r) {
            *s += x;
        }
    }
    let means: Vec<f64> = sums.iter().map(|s| s / n).collect();
    let mut vars = vec![-0.0f64; dim];
    for r in rows {
        for ((v, &x), &m) in vars.iter_mut().zip(r).zip(&means) {
            *v += (x - m).powi(2);
        }
    }
    let params: Vec<(f64, f64)> = means
        .iter()
        .zip(&vars)
        .map(|(&m, &v)| (m, (v / n).sqrt()))
        .collect();
    let standardized = rows
        .iter()
        .map(|r| {
            r.iter()
                .zip(&params)
                .map(|(&x, &(m, s))| if s > 0.0 { (x - m) / s } else { 0.0 })
                .collect()
        })
        .collect();
    (standardized, params)
}

/// Applies previously computed standardization parameters to a new vector.
///
/// # Panics
///
/// Panics if `v.len() != params.len()`.
pub fn apply_standardization(v: &[f64], params: &[(f64, f64)]) -> Vec<f64> {
    assert_eq!(v.len(), params.len(), "dimension mismatch");
    v.iter()
        .zip(params)
        .map(|(&x, &(m, s))| if s > 0.0 { (x - m) / s } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    fn noisy_signal(seed: u64, n: usize) -> Vec<f64> {
        // Small deterministic LCG so the test has no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
                9.81 + 0.05 * (i as f64 * 0.8).sin() + 0.01 * noise
            })
            .collect()
    }

    #[test]
    fn feature_vector_has_twenty_entries() {
        let f = stream_features(&noisy_signal(1, 600), &FeatureConfig::new(100.0));
        let v = f.to_vec();
        assert_eq!(v.len(), FEATURES_PER_STREAM);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn different_signals_have_different_features() {
        let cfg = FeatureConfig::new(100.0);
        let a = stream_features(&noisy_signal(1, 600), &cfg).to_vec();
        let b = stream_features(&noisy_signal(999, 600), &cfg).to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn standardize_produces_zero_mean_unit_variance() {
        let rows = vec![
            vec![1.0, 10.0, 5.0],
            vec![2.0, 20.0, 5.0],
            vec![3.0, 30.0, 5.0],
        ];
        let (std_rows, params) = standardize(&rows);
        for j in 0..3 {
            let col: Vec<f64> = std_rows.iter().map(|r| r[j]).collect();
            let mean: f64 = col.iter().sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
        }
        // Constant column is zeroed, not NaN.
        assert!(std_rows.iter().all(|r| r[2] == 0.0));
        assert_eq!(params.len(), 3);
    }

    #[test]
    fn apply_standardization_is_consistent() {
        let rows = vec![vec![1.0, 4.0], vec![3.0, 8.0]];
        let (std_rows, params) = standardize(&rows);
        let reapplied = apply_standardization(&rows[0], &params);
        assert_eq!(std_rows[0], reapplied);
    }

    #[test]
    fn standardize_empty_input() {
        let (rows, params) = standardize(&[]);
        assert!(rows.is_empty());
        assert!(params.is_empty());
    }

    #[test]
    fn config_builder_methods() {
        let cfg = FeatureConfig::new(200.0)
            .with_window(Window::Hamming)
            .with_brightness_cutoff(42.0);
        assert_eq!(cfg.window, Window::Hamming);
        assert_eq!(cfg.brightness_cutoff_hz, 42.0);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn negative_sample_rate_panics() {
        FeatureConfig::new(-1.0);
    }

    #[test]
    fn extend_into_matches_to_vec() {
        let f = stream_features(&noisy_signal(3, 400), &FeatureConfig::new(100.0));
        let mut buf = vec![-1.0];
        f.extend_into(&mut buf);
        assert_eq!(buf.len(), 1 + FEATURES_PER_STREAM);
        assert_eq!(&buf[1..], f.to_vec().as_slice());
    }

    /// The column-at-a-time standardize the row-major version replaced,
    /// kept verbatim so the bit-identity test below pins the rewrite.
    fn reference_standardize(rows: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<(f64, f64)>) {
        let Some(first) = rows.first() else {
            return (Vec::new(), Vec::new());
        };
        let dim = first.len();
        let n = rows.len() as f64;
        let mut params = Vec::with_capacity(dim);
        for j in 0..dim {
            let mean = rows.iter().map(|r| r[j]).sum::<f64>() / n;
            let var = rows.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
            params.push((mean, var.sqrt()));
        }
        let standardized = rows
            .iter()
            .map(|r| {
                r.iter()
                    .zip(&params)
                    .map(|(&x, &(m, s))| if s > 0.0 { (x - m) / s } else { 0.0 })
                    .collect()
            })
            .collect();
        (standardized, params)
    }

    /// Row-major standardization is bit-identical to the column-major
    /// shape it replaced, including constant and single-row matrices.
    #[test]
    fn row_major_standardize_is_bit_identical_to_column_major() {
        let degenerate: [&[&[f64]]; 3] = [
            &[&[5.0, -2.0, 0.0]],
            &[&[1.0, 7.0], &[1.0, 7.0], &[1.0, 7.0]],
            &[&[0.0], &[-0.0]],
        ];
        for rows in degenerate {
            let rows: Vec<Vec<f64>> = rows.iter().map(|r| r.to_vec()).collect();
            assert_eq!(standardize(&rows), reference_standardize(&rows));
        }
        prop::check(
            |rng| {
                let dim = rng.gen_range(1usize..8);
                prop::vec_with(rng, 1..40, |r| {
                    (0..dim)
                        .map(|_| r.gen_range(-1e3f64..1e3))
                        .collect::<Vec<f64>>()
                })
            },
            |rows| {
                let (got_rows, got_params) = standardize(rows);
                let (want_rows, want_params) = reference_standardize(rows);
                for (g, w) in got_rows.iter().flatten().zip(want_rows.iter().flatten()) {
                    prop_assert!(g.to_bits() == w.to_bits(), "{g} vs {w}");
                }
                for ((gm, gs), (wm, ws)) in got_params.iter().zip(&want_params) {
                    prop_assert!(gm.to_bits() == wm.to_bits(), "{gm} vs {wm}");
                    prop_assert!(gs.to_bits() == ws.to_bits(), "{gs} vs {ws}");
                }
                Ok(())
            },
        );
    }

    #[test]
    fn standardized_columns_are_centered() {
        prop::check(
            |rng| {
                prop::vec_with(rng, 2..30, |r| {
                    (0..4)
                        .map(|_| r.gen_range(-1e3f64..1e3))
                        .collect::<Vec<f64>>()
                })
            },
            |rows| {
                let (std_rows, _) = standardize(rows);
                for j in 0..4 {
                    let mean: f64 =
                        std_rows.iter().map(|r| r[j]).sum::<f64>() / std_rows.len() as f64;
                    prop_assert!(mean.abs() < 1e-8);
                }
                Ok(())
            },
        );
    }

    /// Batched extraction agrees with the per-stream path to high
    /// precision (the pair split re-associates additions, so exact bits
    /// may differ in the spectral half) and preserves stream order, for
    /// even and odd batch sizes and mixed lengths. The temporal half
    /// never passes through the FFT, so its bits must match exactly.
    #[test]
    fn batch_matches_per_stream_extraction() {
        let cfg = FeatureConfig::new(100.0);
        for count in [1usize, 2, 3, 4, 5] {
            let streams: Vec<Vec<f64>> = (0..count)
                .map(|s| noisy_signal(s as u64 + 1, 300 + 100 * s))
                .collect();
            let batched = stream_features_batch(&streams, &cfg);
            assert_eq!(batched.len(), count);
            for (s, f) in streams.iter().zip(&batched) {
                let single = stream_features(s, &cfg);
                assert_eq!(f.temporal, single.temporal, "batch {count}");
                let got = f.to_vec();
                for (a, b) in got.iter().zip(&single.to_vec()) {
                    assert!(
                        (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                        "batch {count}: {a} vs {b}"
                    );
                }
            }
        }
    }

    /// Batched extraction is byte-identical across worker-thread counts,
    /// including an odd batch of mixed-length streams (exercising both
    /// the paired and leftover single-FFT job shapes).
    #[test]
    fn batch_is_thread_count_invariant() {
        let cfg = FeatureConfig::new(100.0);
        let batches: [Vec<Vec<f64>>; 2] = [
            (0..4).map(|s| noisy_signal(s as u64 + 9, 512)).collect(),
            (0..5)
                .map(|s| noisy_signal(s as u64 + 17, 300 + 100 * s))
                .collect(),
        ];
        for streams in &batches {
            let run = |threads: usize| -> Vec<u64> {
                srtd_runtime::parallel::set_max_threads(threads);
                let bits = stream_features_batch(streams, &cfg)
                    .into_iter()
                    .flat_map(|f| f.to_vec())
                    .map(f64::to_bits)
                    .collect();
                srtd_runtime::parallel::set_max_threads(0);
                bits
            };
            let single = run(1);
            assert_eq!(single, run(3));
            assert_eq!(single, run(4));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = stream_features_batch::<Vec<f64>>(&[], &FeatureConfig::new(100.0));
        assert!(out.is_empty());
    }

    #[test]
    fn features_never_nan() {
        prop::check(
            |rng| prop::vec_with(rng, 0..400, |r| r.gen_range(-1e3f64..1e3)),
            |xs| {
                let f = stream_features(xs, &FeatureConfig::new(100.0));
                prop_assert!(f.to_vec().iter().all(|v| v.is_finite()));
                Ok(())
            },
        );
    }
}
