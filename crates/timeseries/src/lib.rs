//! Time-series comparison primitives for trajectory-based account grouping.
//!
//! AG-TR regards each account's submissions as two time series — the task
//! index series `X_i` and the timestamp series `Y_i` — and groups accounts
//! whose combined DTW dissimilarity (Eq. 8) falls below a threshold. This
//! crate implements the Dynamic Time Warping distance of Eq. 7,
//!
//! ```text
//! DTW(A, B) = min over warping paths W of sqrt( Σ_k ω_k / K )
//! ```
//!
//! where `ω_k` are squared point distances along the path, via the standard
//! cumulative-distance dynamic program. A Sakoe–Chiba band variant bounds
//! the warping window for long series, and utilities for z-normalization
//! and series construction round out the crate.
//!
//! # Examples
//!
//! ```
//! use srtd_timeseries::{dtw, Dtw};
//!
//! assert_eq!(dtw(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
//! // Time-shifted copies are close under DTW even though they differ
//! // point-wise.
//! let a = [0.0, 0.0, 1.0, 2.0, 3.0];
//! let b = [0.0, 1.0, 2.0, 3.0, 3.0];
//! assert!(dtw(&a, &b) < 0.5);
//! let banded = Dtw::new().with_band(1).distance(&a, &b);
//! assert!(banded >= dtw(&a, &b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod dtw;
mod pruned;
mod series;

pub use bounds::{lb_keogh, lb_keogh_env, lb_kim, pruned_raw_dtw_matrix, Envelope};
pub use dtw::{dtw, Dtw};
pub use pruned::{BandPolicy, PruneStats, PrunedPairwise};
pub use series::{z_normalize, TimeSeriesPair};
