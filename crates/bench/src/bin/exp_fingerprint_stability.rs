//! Ablation: how much session-to-session bias drift AG-FP tolerates.
//!
//! §III-D's premise is that a device's MEMS imperfections are a *stable*
//! signature. Real MEMS bias drifts with temperature, so a deployed AG-FP
//! has to survive some drift. This ablation sweeps the per-session bias
//! drift σ and measures AG-FP's device-grouping ARI on the Fig. 2 setup
//! (3 phones × 5 captures, known k) — locating where the paper's
//! assumption breaks.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_fingerprint_stability [seeds]`

use srtd_bench::table::Table;
use srtd_cluster::{KMeans, KMeansConfig};
use srtd_fingerprint::{catalog, fingerprint_features, CaptureConfig};
use srtd_metrics::adjusted_rand_index;
use srtd_runtime::rng::SeedableRng;
use srtd_runtime::rng::StdRng;
use srtd_signal::features::standardize;

fn run(seed: u64, drift: f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let models = catalog::standard_catalog();
    let phones = [
        models[2].model.manufacture(&mut rng),
        models[5].model.manufacture(&mut rng),
        models[7].model.manufacture(&mut rng),
    ];
    let cfg = CaptureConfig::paper_default().with_bias_drift(drift);
    let mut features = Vec::new();
    let mut truth = Vec::new();
    for (d, phone) in phones.iter().enumerate() {
        for _ in 0..5 {
            features.push(fingerprint_features(&phone.capture(&cfg, &mut rng)));
            truth.push(d);
        }
    }
    let (standardized, _) = standardize(&features);
    let clusters = KMeans::new(KMeansConfig::new(3)).fit(&standardized);
    adjusted_rand_index(&clusters.assignments, &truth)
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    println!("Ablation — AG-FP vs. session bias drift ({seeds} seeds, 3 phones x 5 captures)\n");
    // Context: per-chip bias spread in the catalog is 0.012 m/s² — drift
    // at that scale makes two sessions of one chip look like two chips.
    let mut t = Table::new(
        ["drift sigma (m/s^2)", "device ARI"]
            .map(String::from)
            .to_vec(),
    );
    let mut curve = Vec::new();
    for drift in [0.0, 0.003, 0.006, 0.012, 0.024, 0.05] {
        let ari: f64 = (0..seeds).map(|s| run(s, drift)).sum::<f64>() / seeds as f64;
        curve.push((drift, ari));
        t.add_row(vec![format!("{drift:.3}"), format!("{ari:.3}")]);
    }
    println!("{}", t.render());
    println!("expected shape: cross-model separation (~0.05-0.15 m/s^2 of");
    println!("bias center distance) keeps the grouping intact until drift");
    println!("approaches that scale, then the signature washes out. Same-model");
    println!("units, separated only by the 0.012 chip spread, would break an");
    println!("order of magnitude earlier — quantifying the stability");
    println!("assumption behind §III-D and why Fig. 8's same-model centers");
    println!("are already 'hard to differentiate' with zero drift.");
    let clean = curve[0].1;
    let worst = curve.last().expect("rows").1;
    assert!(clean > 0.75, "drift-free ARI too low: {clean}");
    assert!(
        worst < clean - 0.2,
        "heavy drift should hurt: {clean} -> {worst}"
    );
    // Monotone-ish: the last point is the worst or near-worst.
    let min = curve.iter().map(|c| c.1).fold(f64::INFINITY, f64::min);
    assert!(worst <= min + 0.1);
    println!("\n[shape checks passed]");
}
